"""EnTracked on PerPos (paper §3.3, Fig. 7).

Fig. 7's processing graph: ``GPS -> Sensor Wrapper`` on the mobile device,
``Parser -> Interpreter -> Application`` on a server, the mobile-to-server
edge crossing the network.  Two adaptations recreate EnTracked's
behaviour using only the extension mechanisms of §2:

* :class:`PowerStrategyFeature` -- a Component Feature on the Sensor
  Wrapper "provid[ing] methods for controlling the operation mode of the
  updating scheme": motion-gated duty cycling of the GPS, with sleep
  intervals derived from speed and the error threshold;
* :class:`EnTrackedChannelFeature` -- a Channel Feature that "continuously
  monitors the output of the Interpreter component and calls the
  appropriate methods on the Power Strategy feature" -- through a remote
  proxy, since strategy and monitor live on different hosts.

:class:`EnTrackedSystem` assembles the whole figure over two simulated
hosts and runs it against a trajectory, reporting energy and error; the
``"periodic"`` mode is the always-on baseline EnTracked is compared to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.channel import ChannelFeature
from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.core.datatree import DataTree
from repro.core.features import ComponentFeature
from repro.core.middleware import PerPos
from repro.energy.power import DeviceEnergyModel
from repro.geo.wgs84 import Wgs84Position
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.parser import NmeaParserComponent
from repro.sensors.gps import GpsReceiver, OPEN_SKY, constant_environment
from repro.sensors.nmea import RmcSentence
from repro.sensors.inertial import Accelerometer, AccelerometerReading
from repro.sensors.trajectory import Trajectory
from repro.services.remote import Host, Network


class PowerStrategyFeature(ComponentFeature):
    """The client-side updating scheme as a Component Feature.

    Modes:

    * ``"continuous"`` -- GPS always on (the periodic baseline);
    * ``"entracked"`` -- motion-gated duty cycling: GPS off while the
      accelerometer reports stillness; while moving, after each reported
      fix the GPS sleeps for as long as the error threshold cannot be
      exceeded at the current speed estimate, minus re-acquisition time.
    """

    name = "PowerStrategy"

    def __init__(
        self,
        threshold_m: float = 50.0,
        mode: str = "entracked",
        acquisition_time_s: float = 6.0,
        min_sleep_s: float = 5.0,
        max_sleep_s: float = 300.0,
        fallback_speed_mps: float = 1.4,
    ) -> None:
        super().__init__()
        if threshold_m <= 0:
            raise ValueError("threshold_m must be positive")
        self._threshold_m = threshold_m
        self._mode = mode
        self._acquisition_time_s = acquisition_time_s
        self._min_sleep_s = min_sleep_s
        self._max_sleep_s = max_sleep_s
        self._speed_mps = fallback_speed_mps
        self._moving = True
        self._next_fix_time = 0.0
        self._had_fix = False

    # -- control surface (callable locally or through a remote proxy) --------

    def set_mode(self, mode: str) -> None:
        if mode not in ("continuous", "entracked"):
            raise ValueError(f"unknown mode {mode!r}")
        self._mode = mode

    def get_mode(self) -> str:
        return self._mode

    def set_threshold(self, threshold_m: float) -> None:
        if threshold_m <= 0:
            raise ValueError("threshold_m must be positive")
        self._threshold_m = threshold_m

    def get_threshold(self) -> float:
        return self._threshold_m

    def update_speed(self, speed_mps: float) -> None:
        """Server-side speed estimate push (the EnTracked feature calls it)."""
        self._speed_mps = max(0.05, speed_mps)

    def set_moving(self, moving: bool, now: float) -> None:
        """Accelerometer verdict from the Sensor Wrapper."""
        if moving and not self._moving:
            # Waking from stillness: fix as soon as the GPS re-acquires.
            self._next_fix_time = now
        self._moving = moving

    def sleep_interval_s(self, speed_mps: Optional[float] = None) -> float:
        """How long the GPS may sleep after a fix at the given speed.

        The EnTracked power/accuracy tradeoff in one number: the time
        in which the error threshold cannot be exceeded at ``speed_mps``
        (default: the current speed estimate), clamped to the
        configured sleep bounds.  Exposed publicly so closed-loop
        controllers and workload generators can reason about (and
        test) the duty cycle a threshold change buys.
        """
        speed = self._speed_mps if speed_mps is None else max(0.05, speed_mps)
        travel_time = self._threshold_m / speed
        return min(self._max_sleep_s, max(self._min_sleep_s, travel_time))

    def notify_fix_sent(self, now: float) -> None:
        """A fix was reported; schedule the next one and sleep the GPS."""
        self._had_fix = True
        if self._mode != "entracked":
            return
        self._next_fix_time = now + self.sleep_interval_s()

    # -- duty-cycle decision --------------------------------------------------

    def gps_should_be_on(self, now: float) -> bool:
        if self._mode == "continuous":
            return True
        if not self._had_fix:
            return True  # initial fix always required
        if not self._moving:
            return False
        # Wake early enough to finish acquisition by the scheduled time.
        return now >= self._next_fix_time - self._acquisition_time_s


class SensorWrapperComponent(ProcessingComponent):
    """The mobile-side component of Fig. 7.

    Receives raw GPS output and accelerometer readings; forwards GPS data
    to the server side only when the Power Strategy (if attached) has the
    GPS on and acquired, and informs the strategy about detected motion
    and reported fixes.
    """

    def __init__(
        self,
        energy_model: Optional[DeviceEnergyModel] = None,
        name: str = "sensor-wrapper",
        motion_variance_threshold: float = 0.3,
    ) -> None:
        super().__init__(
            name,
            inputs=(
                InputPort("gps", (Kind.NMEA_RAW,)),
                InputPort("accel", (Kind.ACCEL_VARIANCE,)),
            ),
            output=OutputPort((Kind.NMEA_RAW,)),
        )
        self.energy_model = energy_model
        self.motion_variance_threshold = motion_variance_threshold
        self.forwarded = 0
        self.suppressed = 0
        self._last_forward_epoch: Optional[float] = None
        # The duty-cycle decision is made once per sensor epoch and cached:
        # all serial fragments of one epoch share its fate, otherwise the
        # fix-sent notification would truncate the epoch mid-sentence.
        self._epoch_decision: Optional[Tuple[float, bool]] = None

    def _strategy(self) -> Optional[PowerStrategyFeature]:
        feature = self.get_feature("PowerStrategy")
        return feature if isinstance(feature, PowerStrategyFeature) else None

    def process(self, port_name: str, datum: Datum) -> None:
        strategy = self._strategy()
        if port_name == "accel":
            reading = datum.payload
            if isinstance(reading, AccelerometerReading) and strategy:
                strategy.set_moving(
                    reading.variance > self.motion_variance_threshold,
                    datum.timestamp,
                )
            return
        # GPS path: apply the duty cycle.
        now = datum.timestamp
        if strategy is not None:
            if (
                self._epoch_decision is None
                or self._epoch_decision[0] != now
            ):
                on = strategy.gps_should_be_on(now)
                if self.energy_model is not None:
                    if on:
                        self.energy_model.gps_on(now)
                    else:
                        self.energy_model.gps_off(now)
                ready = (
                    self.energy_model.gps_ready(now)
                    if self.energy_model is not None
                    else on
                )
                self._epoch_decision = (now, on and ready)
            if not self._epoch_decision[1]:
                self.suppressed += 1
                return
        self.forwarded += 1
        is_new_epoch = self._last_forward_epoch != now
        self._last_forward_epoch = now
        self.produce(
            datum.from_producer(self.name).annotated(new_epoch=is_new_epoch)
        )
        if strategy is not None and is_new_epoch:
            strategy.notify_fix_sent(now)

    # -- inspection -------------------------------------------------------------

    def forward_rate(self) -> float:
        total = self.forwarded + self.suppressed
        return self.forwarded / total if total else 0.0


class NetworkLinkComponent(ProcessingComponent):
    """A graph edge that crosses the (simulated) network.

    Plays D-OSGi's role in Fig. 7: the processing graph spans hosts, and
    every datum forwarded here is recorded as traffic on the network and
    charged to the mobile energy model (one radio burst per sensor
    epoch, plus size-proportional energy).
    """

    def __init__(
        self,
        network: Network,
        source_host: str,
        target_host: str,
        kinds: Tuple[str, ...] = (Kind.NMEA_RAW,),
        energy_model: Optional[DeviceEnergyModel] = None,
        name: str = "uplink",
    ) -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", kinds),),
            output=OutputPort(kinds),
        )
        self.network = network
        self.source_host = source_host
        self.target_host = target_host
        self.energy_model = energy_model
        self._burst_epoch: Optional[float] = None
        self._burst_bytes = 0

    def process(self, port_name: str, datum: Datum) -> None:
        size = len(repr(datum.payload))
        self.network.record(
            self.source_host,
            self.target_host,
            datum.payload,
            f"{self.name}:{datum.kind}",
        )
        if self.energy_model is not None:
            if datum.timestamp != self._burst_epoch:
                # New epoch: new radio burst.
                self._burst_epoch = datum.timestamp
                self.energy_model.record_transmission(size)
            else:
                # Same burst: charge only the marginal bytes.
                self.energy_model._joules["radio"] += (
                    self.energy_model.constants.radio_j_per_kb
                    * size
                    / 1024.0
                )
        self.produce(datum.from_producer(self.name))


class EnTrackedChannelFeature(ChannelFeature):
    """The server-side controller as a Channel Feature.

    Monitors the positions the channel delivers, estimates target speed
    from consecutive updates, and drives the mobile Power Strategy --
    pushing speed estimates and, when the observed inter-update distance
    exceeds the configured threshold, re-arming an immediate fix.
    """

    name = "EnTracked"

    def __init__(self, strategy, threshold_m: float = 50.0) -> None:
        """``strategy`` is the PowerStrategy feature or a remote proxy."""
        super().__init__()
        self.strategy = strategy
        self.threshold_m = threshold_m
        self._last: Optional[Wgs84Position] = None
        self._last_time: Optional[float] = None
        self.threshold_violations = 0

    def apply(self, data_tree: DataTree) -> None:
        position = data_tree.root.datum.payload
        if not isinstance(position, Wgs84Position):
            return
        now = data_tree.root.datum.timestamp
        # Translucency at work: the data tree carries the low-level NMEA
        # sentences behind this position, and RMC reports *instantaneous*
        # ground speed -- far better for sleep scheduling than dividing
        # displacement by the (sleep-inflated) inter-report interval.
        speed = self._instantaneous_speed(data_tree)
        if (
            speed is None
            and self._last is not None
            and self._last_time is not None
            and now > self._last_time
        ):
            speed = self._last.distance_to(position) / (
                now - self._last_time
            )
        if speed is not None:
            self.strategy.update_speed(speed)
        if self._last is not None:
            if self._last.distance_to(position) > self.threshold_m:
                self.threshold_violations += 1
        self._last = position
        self._last_time = now

    @staticmethod
    def _instantaneous_speed(data_tree: DataTree) -> Optional[float]:
        """Ground speed in m/s from the tree's RMC sentences, if any."""
        speeds = [
            sentence.speed_knots * 0.514444
            for _producer, sentence in data_tree.get_data(
                Kind.NMEA_SENTENCE
            )
            if isinstance(sentence, RmcSentence)
        ]
        return max(speeds) if speeds else None


@dataclass
class EnTrackedResult:
    """Outcome of one tracking run."""

    mode: str
    threshold_m: float
    duration_s: float
    energy_j: float
    energy_breakdown: Dict[str, float]
    average_power_w: float
    gps_on_fraction: float
    transmissions: int
    positions_reported: int
    mean_error_m: float
    p95_error_m: float
    max_error_m: float


class EnTrackedSystem:
    """Builds and runs the Fig. 7 configuration over two hosts."""

    def __init__(
        self,
        trajectory: Trajectory,
        threshold_m: float = 50.0,
        mode: str = "entracked",
        seed: int = 0,
    ) -> None:
        if mode not in ("entracked", "periodic"):
            raise ValueError(f"unknown mode {mode!r}")
        self.trajectory = trajectory
        self.threshold_m = threshold_m
        self.mode = mode

        self.middleware = PerPos()
        self.network = Network(clock=self.middleware.clock)
        self.mobile = Host("mobile", self.network)
        self.server = Host("server", self.network)
        self.energy = DeviceEnergyModel()

        gps = GpsReceiver(
            "gps-device",
            trajectory,
            constant_environment(OPEN_SKY),
            seed=seed,
        )
        accel = Accelerometer("accel-device", trajectory, seed=seed + 1)
        self.middleware.attach_sensor(
            gps, (Kind.NMEA_RAW,), source_name="gps"
        )
        self.middleware.attach_sensor(
            accel, (Kind.ACCEL_VARIANCE,), source_name="accel"
        )

        self.wrapper = SensorWrapperComponent(energy_model=self.energy)
        self.strategy = PowerStrategyFeature(
            threshold_m=threshold_m,
            mode="continuous" if mode == "periodic" else "entracked",
        )
        self.wrapper.attach_feature(self.strategy)
        self.uplink = NetworkLinkComponent(
            self.network, "mobile", "server", energy_model=self.energy
        )
        parser = NmeaParserComponent(name="parser")
        interpreter = NmeaInterpreterComponent(name="interpreter")

        graph = self.middleware.graph
        for component in (self.wrapper, self.uplink, parser, interpreter):
            graph.add(component)
        graph.connect("gps", self.wrapper.name, "gps")
        graph.connect("accel", self.wrapper.name, "accel")
        graph.connect(self.wrapper.name, self.uplink.name)
        graph.connect(self.uplink.name, parser.name)
        graph.connect(parser.name, interpreter.name)
        self.provider = self.middleware.create_provider(
            "tracking-app", accepts=(Kind.POSITION_WGS84,)
        )
        graph.connect(interpreter.name, self.provider.sink.name)

        # Export the strategy on the mobile host; the server-side channel
        # feature controls it through the counted remote proxy (D-OSGi).
        self.mobile.export("perpos.PowerStrategy", self.strategy)
        strategy_proxy = self.server.import_service(
            self.mobile, "perpos.PowerStrategy"
        )
        self.entracked_feature = EnTrackedChannelFeature(
            strategy_proxy, threshold_m=threshold_m
        )
        channel = self.middleware.pcl.channel_delivering(
            self.provider.sink.name, interpreter.name
        )
        channel.attach_feature(self.entracked_feature)

    def run(self, duration_s: float, step_s: float = 1.0) -> EnTrackedResult:
        """Run the scenario and collect energy/error statistics."""
        errors: List[float] = []
        position_count = [0]
        self.provider.add_listener(
            lambda _d: position_count.__setitem__(0, position_count[0] + 1),
            kind=Kind.POSITION_WGS84,
        )
        clock = self.middleware.clock
        while clock.now < duration_s:
            target = min(clock.now + step_s, duration_s)
            clock.run_until(target)
            self.middleware.pump()
            self.energy.advance(clock.now)
            truth = self.trajectory.position_at(clock.now)
            reported = self.provider.last_position()
            if reported is not None:
                errors.append(truth.distance_to(reported))
        errors.sort()
        positions = position_count[0]
        mean_error = sum(errors) / len(errors) if errors else float("nan")
        p95 = errors[int(0.95 * (len(errors) - 1))] if errors else float("nan")
        return EnTrackedResult(
            mode=self.mode,
            threshold_m=self.threshold_m,
            duration_s=duration_s,
            energy_j=self.energy.total_joules(),
            energy_breakdown=self.energy.breakdown(),
            average_power_w=self.energy.average_power_w(),
            gps_on_fraction=self.energy.gps_on_seconds / duration_s,
            transmissions=self.energy.transmissions,
            positions_reported=positions,
            mean_error_m=mean_error,
            p95_error_m=p95,
            max_error_m=errors[-1] if errors else float("nan"),
        )
