"""Energy-aware tracking (system S12): the EnTracked re-implementation.

Paper §3.3 reimplements "key parts of the EnTracked system using the
processing graph abstractions": a client-side updating scheme exposed as
the **Power Strategy** Component Feature on the mobile Sensor Wrapper,
and a server-side controller implemented as the **EnTracked** Channel
Feature monitoring the Interpreter's output.  The device energy model
(:mod:`repro.energy.power`) substitutes for the paper's phone
measurements (DESIGN.md §4).
"""

from repro.energy.entracked import (
    EnTrackedChannelFeature,
    EnTrackedResult,
    EnTrackedSystem,
    NetworkLinkComponent,
    PowerStrategyFeature,
    SensorWrapperComponent,
)
from repro.energy.power import DeviceEnergyModel

__all__ = [
    "DeviceEnergyModel",
    "PowerStrategyFeature",
    "SensorWrapperComponent",
    "NetworkLinkComponent",
    "EnTrackedChannelFeature",
    "EnTrackedSystem",
    "EnTrackedResult",
]
