"""A parametric mobile-device energy model.

Substitution (DESIGN.md §4) for EnTracked's physical phone measurements:
a state-machine integrator with power constants in the range published
for the Nokia N95 class of devices EnTracked targeted.  What the
experiments depend on is the *structure* -- GPS tracking is expensive,
re-acquisition after sleep costs time and energy, the accelerometer is
cheap, every radio report costs a burst -- not the absolute milliwatts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PowerConstants:
    """Power draw and event costs of the modelled device."""

    gps_tracking_w: float = 0.35
    gps_acquiring_w: float = 0.55
    gps_acquisition_time_s: float = 6.0
    accelerometer_w: float = 0.05
    radio_burst_j: float = 1.5
    radio_j_per_kb: float = 0.3


class DeviceEnergyModel:
    """Integrates device energy over simulation time.

    Drive it with :meth:`gps_on` / :meth:`gps_off` state changes,
    :meth:`record_transmission` radio events, and :meth:`advance` to
    integrate elapsed time.  All figures in joules.
    """

    GPS_OFF = "off"
    GPS_ACQUIRING = "acquiring"
    GPS_TRACKING = "tracking"

    def __init__(
        self,
        constants: PowerConstants = PowerConstants(),
        accelerometer_on: bool = True,
        start_time: float = 0.0,
    ) -> None:
        self.constants = constants
        self.accelerometer_on = accelerometer_on
        self._now = start_time
        self._gps_state = self.GPS_OFF
        self._acquire_started = 0.0
        self._joules: Dict[str, float] = {
            "gps": 0.0,
            "accelerometer": 0.0,
            "radio": 0.0,
        }
        self.gps_on_seconds = 0.0
        self.acquisitions = 0
        self.transmissions = 0

    # -- state transitions ---------------------------------------------------

    @property
    def gps_state(self) -> str:
        return self._gps_state

    def gps_on(self, now: float) -> None:
        """Power the GPS up; it acquires before it can fix."""
        self.advance(now)
        if self._gps_state == self.GPS_OFF:
            self._gps_state = self.GPS_ACQUIRING
            self._acquire_started = now
            self.acquisitions += 1

    def gps_off(self, now: float) -> None:
        self.advance(now)
        self._gps_state = self.GPS_OFF

    def gps_ready(self, now: float) -> bool:
        """Whether the GPS has finished acquiring and can deliver fixes."""
        if self._gps_state == self.GPS_TRACKING:
            return True
        if self._gps_state == self.GPS_ACQUIRING:
            return (
                now - self._acquire_started
                >= self.constants.gps_acquisition_time_s
            )
        return False

    def record_transmission(self, size_bytes: int) -> None:
        """One radio report: burst cost plus size-proportional energy."""
        self._joules["radio"] += (
            self.constants.radio_burst_j
            + self.constants.radio_j_per_kb * size_bytes / 1024.0
        )
        self.transmissions += 1

    # -- integration ------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Integrate power draw from the last advance up to ``now``."""
        dt = now - self._now
        if dt < 0:
            raise ValueError("energy model cannot move backwards in time")
        if dt == 0:
            return
        if self._gps_state == self.GPS_ACQUIRING:
            # Split the interval at the acquisition -> tracking boundary.
            boundary = (
                self._acquire_started
                + self.constants.gps_acquisition_time_s
            )
            acquiring_dt = min(dt, max(0.0, boundary - self._now))
            tracking_dt = dt - acquiring_dt
            self._joules["gps"] += (
                acquiring_dt * self.constants.gps_acquiring_w
                + tracking_dt * self.constants.gps_tracking_w
            )
            self.gps_on_seconds += dt
            if now >= boundary:
                self._gps_state = self.GPS_TRACKING
        elif self._gps_state == self.GPS_TRACKING:
            self._joules["gps"] += dt * self.constants.gps_tracking_w
            self.gps_on_seconds += dt
        if self.accelerometer_on:
            self._joules["accelerometer"] += (
                dt * self.constants.accelerometer_w
            )
        self._now = now

    # -- reporting ----------------------------------------------------------------

    def total_joules(self) -> float:
        return sum(self._joules.values())

    def breakdown(self) -> Dict[str, float]:
        return dict(self._joules)

    def average_power_w(self) -> float:
        if self._now <= 0:
            return 0.0
        return self.total_joules() / self._now
