"""The particle filter Processing Component (paper §3.2, Fig. 5/6).

The filter is a *fusion* component: it consumes positions (from GPS,
WiFi, or both) and produces refined positions, so it plugs into the graph
without changing the application-facing API -- the paper's requirement R1
and its answer to the Location Stack's layering problem.

Measurement weighting follows Fig. 5 snippet 1: on each arriving
position the filter resolves the delivering channel, fetches its
``Likelihood`` Channel Feature, and scores every particle with
``get_likelihood(particle)``.  Without the feature it falls back to the
position's own accuracy estimate -- the filter degrades, it does not
break, when the adaptation is absent.

The building model supplies the movement constraint: particle moves that
cross a wall are vetoed (weight zero), which is what pins the trace to
the corridor in Fig. 6.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.core.pcl import ProcessChannelLayer
from repro.geo.grid import GridPosition
from repro.geo.wgs84 import Wgs84Position
from repro.model.building import Building
from repro.tracking.motion import PedestrianMotionModel


@dataclass
class Particle:
    """One hypothesis: grid position, heading, normalised weight."""

    position: GridPosition
    heading_deg: float
    weight: float


class ParticleFilterComponent(ProcessingComponent):
    """Wall-constrained SIR particle filter over incoming positions."""

    # The filter is a fusion component by role: channels end at it even
    # when a single sensor currently feeds it (Fig. 2's channel view).
    pcl_node = True

    def __init__(
        self,
        building: Building,
        pcl: Optional[ProcessChannelLayer] = None,
        name: str = "particle-filter",
        num_particles: int = 500,
        seed: int = 0,
        motion_model: Optional[PedestrianMotionModel] = None,
        resample_threshold: float = 0.5,
        fallback_sigma_m: float = 10.0,
    ) -> None:
        if num_particles <= 0:
            raise ValueError("num_particles must be positive")
        super().__init__(
            name,
            inputs=(
                InputPort("in", (Kind.POSITION_WGS84,), multiple=True),
            ),
            output=OutputPort((Kind.POSITION_WGS84,)),
        )
        self.building = building
        self.pcl = pcl
        self.num_particles = num_particles
        self.motion_model = motion_model or PedestrianMotionModel()
        self.resample_threshold = resample_threshold
        self.fallback_sigma_m = fallback_sigma_m
        self._rng = random.Random(seed)
        self._particles: List[Particle] = []
        self._last_update_time: Optional[float] = None
        self.updates = 0
        self.resamples = 0
        self.wall_vetoes = 0

    # -- particle access (Fig. 6's red dots) --------------------------------

    @property
    def particles(self) -> List[Particle]:
        return list(self._particles)

    def initialised(self) -> bool:
        return bool(self._particles)

    # -- processing -----------------------------------------------------------

    def process(self, port_name: str, datum: Datum) -> None:
        position = datum.payload
        if not isinstance(position, Wgs84Position):
            return
        observed = self.building.grid.to_grid(position)
        if not self._particles:
            self._initialise(observed)
            self._last_update_time = datum.timestamp
            self._produce_estimate(datum)
            return
        dt = (
            datum.timestamp - self._last_update_time
            if self._last_update_time is not None
            else 1.0
        )
        dt = max(0.1, min(dt, 30.0))
        self._last_update_time = datum.timestamp
        self._propagate(dt)
        self._weight(datum, position)
        self._maybe_resample(observed)
        self._produce_estimate(datum)
        self.updates += 1

    def _initialise(self, around: GridPosition) -> None:
        spread = 5.0
        self._particles = []
        for _ in range(self.num_particles):
            candidate = GridPosition(
                around.x_m + self._rng.gauss(0.0, spread),
                around.y_m + self._rng.gauss(0.0, spread),
                around.floor,
            )
            self._particles.append(
                Particle(
                    position=candidate,
                    heading_deg=self._rng.uniform(0.0, 360.0),
                    weight=1.0 / self.num_particles,
                )
            )

    def _propagate(self, dt: float) -> None:
        for particle in self._particles:
            proposed, heading = self.motion_model.step(
                self._rng, particle.position, particle.heading_deg, dt
            )
            if self.building.crosses_wall(particle.position, proposed):
                # The location-model constraint: walls veto the move.
                self.wall_vetoes += 1
                particle.weight *= 0.1
                particle.heading_deg = (heading + 180.0) % 360.0
            else:
                particle.position = proposed
                particle.heading_deg = heading

    def _weight(self, datum: Datum, observed: Wgs84Position) -> None:
        likelihood_feature = self._likelihood_feature(datum)
        sigma = None
        if likelihood_feature is None:
            sigma = (
                observed.accuracy_m
                if observed.accuracy_m
                else self.fallback_sigma_m
            )
        total = 0.0
        for particle in self._particles:
            particle_wgs84 = self.building.grid.to_wgs84(particle.position)
            if likelihood_feature is not None:
                likelihood = likelihood_feature.get_likelihood(
                    particle_wgs84
                )
            else:
                distance = observed.distance_to(particle_wgs84)
                likelihood = math.exp(-0.5 * (distance / sigma) ** 2)
            particle.weight *= max(likelihood, 1e-12)
            total += particle.weight
        if total <= 0:
            uniform = 1.0 / len(self._particles)
            for particle in self._particles:
                particle.weight = uniform
        else:
            for particle in self._particles:
                particle.weight /= total

    def _likelihood_feature(self, datum: Datum):
        """Resolve the Likelihood feature of the delivering channel.

        This is ``inputChannel.getFeature(position, Likelihood.class)``
        from Fig. 5: the channel is identified by the producer of the
        incoming datum.
        """
        if self.pcl is None:
            return None
        producer = datum.producer.split("#", 1)[0]
        channel = self.pcl.channel_delivering(self.name, producer)
        if channel is None:
            return None
        return channel.get_feature("Likelihood")

    def _effective_sample_size(self) -> float:
        return 1.0 / sum(p.weight**2 for p in self._particles)

    def _maybe_resample(self, observed: GridPosition) -> None:
        ess = self._effective_sample_size()
        if ess >= self.resample_threshold * len(self._particles):
            return
        self.resamples += 1
        # Systematic resampling.
        n = len(self._particles)
        positions = [(i + self._rng.random()) / n for i in range(n)]
        cumulative = []
        acc = 0.0
        for particle in self._particles:
            acc += particle.weight
            cumulative.append(acc)
        new_particles: List[Particle] = []
        index = 0
        for point in positions:
            while index < n - 1 and cumulative[index] < point:
                index += 1
            source = self._particles[index]
            new_particles.append(
                Particle(
                    position=source.position,
                    heading_deg=source.heading_deg,
                    weight=1.0 / n,
                )
            )
        self._particles = new_particles

    def _produce_estimate(self, datum: Datum) -> None:
        estimate, spread = self.estimate()
        wgs84 = self.building.grid.to_wgs84(estimate)
        refined = Wgs84Position(
            wgs84.latitude_deg,
            wgs84.longitude_deg,
            wgs84.altitude_m,
            accuracy_m=spread,
            timestamp=datum.timestamp,
        )
        self.produce(
            Datum(
                kind=Kind.POSITION_WGS84,
                payload=refined,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )

    def estimate(self) -> Tuple[GridPosition, float]:
        """Weighted-mean position and weighted RMS spread (accuracy)."""
        if not self._particles:
            raise RuntimeError("filter not initialised")
        x = sum(p.weight * p.position.x_m for p in self._particles)
        y = sum(p.weight * p.position.y_m for p in self._particles)
        floor = self._particles[0].position.floor
        mean = GridPosition(x, y, floor)
        variance = sum(
            p.weight * mean.distance_to(p.position) ** 2
            for p in self._particles
        )
        return mean, math.sqrt(variance)

    # -- inspection -------------------------------------------------------------

    def effective_sample_size(self) -> float:
        if not self._particles:
            return 0.0
        return self._effective_sample_size()

    def statistics(self) -> dict:
        return {
            "updates": self.updates,
            "resamples": self.resamples,
            "wall_vetoes": self.wall_vetoes,
            "particles": len(self._particles),
        }
