"""Motion models for particle propagation.

The paper's filter "takes into account the likely user movement specific
for the application" (§1); the pedestrian model here is the standard
choice for indoor tracking: per-second displacement drawn from a speed
distribution with heading persistence.
"""

from __future__ import annotations

import math
import random
from typing import Tuple

from repro.geo.grid import GridPosition


class PedestrianMotionModel:
    """Random-heading pedestrian displacement in grid coordinates.

    Each particle keeps a heading; per step the heading drifts by a
    Gaussian turn and the particle advances with a speed drawn between 0
    and ``max_speed_mps`` (people stop, start and wander indoors).
    """

    def __init__(
        self,
        max_speed_mps: float = 2.0,
        turn_sigma_deg: float = 45.0,
        position_jitter_m: float = 0.3,
    ) -> None:
        if max_speed_mps <= 0:
            raise ValueError("max_speed_mps must be positive")
        self.max_speed_mps = max_speed_mps
        self.turn_sigma_deg = turn_sigma_deg
        self.position_jitter_m = position_jitter_m

    def step(
        self,
        rng: random.Random,
        position: GridPosition,
        heading_deg: float,
        dt: float,
    ) -> Tuple[GridPosition, float]:
        """Propose the particle's next position and heading after ``dt``."""
        heading = (heading_deg + rng.gauss(0.0, self.turn_sigma_deg)) % 360.0
        speed = rng.uniform(0.0, self.max_speed_mps)
        distance = speed * dt
        theta = math.radians(heading)
        jitter = self.position_jitter_m
        new = GridPosition(
            position.x_m + distance * math.sin(theta) + rng.gauss(0, jitter),
            position.y_m + distance * math.cos(theta) + rng.gauss(0, jitter),
            position.floor,
        )
        return new, heading
