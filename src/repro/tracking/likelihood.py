"""The Likelihood Channel Feature (paper §3.2, Fig. 5 snippet 2).

"Using the PerPos middleware we have implemented this likelihood
functionality as a Channel Feature that calculates the probability based
on HDOP values associated with the raw GPS reading.  The HDOP values are
extracted by a Component Feature from an intermediate parsing component
in the positioning tree."

``apply(data_tree)`` mirrors the paper's pseudo-code: walk the tree's
NMEA-sentence elements, locate the producing component, fetch its HDOP
Component Feature, and accumulate the HDOP values that back the current
output.  ``get_likelihood`` then scores a particle against the position
this tree delivered.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.channel import ChannelFeature
from repro.core.data import Kind
from repro.core.datatree import DataTree
from repro.geo.wgs84 import Wgs84Position


class LikelihoodFeature(ChannelFeature):
    """Position likelihood driven by the HDOP behind each channel output.

    ``uere_m`` converts HDOP into a 1-sigma error radius.  When the data
    tree carries no HDOP information (a structure the feature "must
    implement strategies to cope with", §2.2) the fallback sigma applies.
    """

    name = "Likelihood"
    requires_component_features = ("HDOP",)

    def __init__(
        self, uere_m: float = 5.0, fallback_sigma_m: float = 15.0
    ) -> None:
        super().__init__()
        self._uere_m = uere_m
        self._fallback_sigma_m = fallback_sigma_m
        self._hdops: List[float] = []
        self._observed: Optional[Wgs84Position] = None
        self.applications = 0

    # -- Channel Feature contract ------------------------------------------

    def apply(self, data_tree: DataTree) -> None:
        """Collect the HDOP values that contributed to this output.

        Mirrors Fig. 5: iterate NMEA sentences in the tree, resolve the
        producing component, read its HDOP feature.  The in-band
        feature-added HDOP elements in the tree are used directly when
        present, keeping the value paired with its own logical time.
        """
        self.applications += 1
        hdops: List[float] = []
        # Preferred: the HDOP data elements recorded in the tree itself.
        for _producer, value in data_tree.get_data(Kind.HDOP):
            hdops.append(value)
        if not hdops:
            # Fallback path exactly as in the paper's snippet: component
            # lookup plus feature state access.
            members = {m.name: m for m in self.channel.members}
            for producer, _sentence in data_tree.get_data(
                Kind.NMEA_SENTENCE
            ):
                component = members.get(producer.split("#", 1)[0])
                if component is None:
                    continue
                feature = component.get_feature("HDOP")
                if feature is None:
                    continue
                value = feature.get_hdop()
                if value is not None:
                    hdops.append(value)
        self._hdops = hdops
        root_payload = data_tree.root.datum.payload
        if isinstance(root_payload, Wgs84Position):
            self._observed = root_payload

    # -- API used by the particle filter (Fig. 5 snippet 1) ------------------

    def current_sigma_m(self) -> float:
        """1-sigma error radius implied by the collected HDOP values."""
        if not self._hdops:
            return self._fallback_sigma_m
        mean_hdop = sum(self._hdops) / len(self._hdops)
        return max(1.0, self._uere_m * mean_hdop)

    def get_likelihood(self, particle_position: Wgs84Position) -> float:
        """Likelihood of the particle given the latest channel output."""
        if self._observed is None:
            return 1.0
        sigma = self.current_sigma_m()
        distance = self._observed.distance_to(particle_position)
        return math.exp(-0.5 * (distance / sigma) ** 2)

    def last_observed(self) -> Optional[Wgs84Position]:
        return self._observed

    def collected_hdops(self) -> List[float]:
        return list(self._hdops)
