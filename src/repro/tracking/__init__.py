"""Probabilistic tracking (system S11): the particle filter of paper §3.2.

The filter plugs into the processing graph as a new kind of fusion
component (requirement R1), consumes low-level quality information through
the Likelihood Channel Feature (requirement R2/R3), and constrains
particle motion with the building model -- "location models to impose
restrictions on possible movements in the environment" (§1).
"""

from repro.tracking.likelihood import LikelihoodFeature
from repro.tracking.motion import PedestrianMotionModel
from repro.tracking.particle_filter import Particle, ParticleFilterComponent

__all__ = [
    "LikelihoodFeature",
    "PedestrianMotionModel",
    "Particle",
    "ParticleFilterComponent",
]
