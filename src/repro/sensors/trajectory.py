"""Ground-truth trajectories that drive the sensor simulators.

Every experiment in the paper follows a moving target: the Room Number
Application walks indoors and out (Fig. 1), the particle filter replays a
recorded walk (Fig. 6), EnTracked tracks a pedestrian (§3.3).  A
:class:`Trajectory` maps simulation time to the target's true WGS84
position; simulators sample it and corrupt it with their own error models.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.geo.wgs84 import Wgs84Position, destination_point


class Trajectory(abc.ABC):
    """A time-parameterised ground-truth path."""

    @abc.abstractmethod
    def position_at(self, t: float) -> Wgs84Position:
        """True position at simulation time ``t`` seconds."""

    @abc.abstractmethod
    def duration(self) -> float:
        """Length of the trajectory in seconds."""

    def speed_at(self, t: float, dt: float = 0.5) -> float:
        """Ground speed in m/s, estimated by central differences."""
        t0 = max(0.0, t - dt)
        t1 = min(self.duration(), t + dt)
        if t1 <= t0:
            return 0.0
        a = self.position_at(t0)
        b = self.position_at(t1)
        return a.distance_to(b) / (t1 - t0)


@dataclass(frozen=True)
class Waypoint:
    """A point on a path, visited at ``time`` seconds."""

    time: float
    position: Wgs84Position


class WaypointTrajectory(Trajectory):
    """Piecewise great-circle interpolation through timed waypoints.

    Between consecutive waypoints the target moves at constant speed along
    the initial bearing; holding the same position in two consecutive
    waypoints models standing still.
    """

    def __init__(self, waypoints: Sequence[Waypoint]) -> None:
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        times = [w.time for w in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("waypoint times must be strictly increasing")
        self._waypoints = list(waypoints)

    @classmethod
    def from_legs(
        cls,
        start: Wgs84Position,
        legs: Sequence[Tuple[float, float, float]],
        start_time: float = 0.0,
    ) -> "WaypointTrajectory":
        """Build from ``(bearing_deg, distance_m, speed_mps)`` legs.

        A leg with zero distance and positive speed is interpreted as a
        pause of ``distance_m / speed_mps`` seconds... which would be zero;
        instead use :meth:`with_pause` style legs: speed <= 0 raises.
        """
        waypoints = [Waypoint(start_time, start)]
        here, now = start, start_time
        for bearing, distance, speed in legs:
            if speed <= 0:
                raise ValueError("leg speed must be positive")
            lat, lon = destination_point(
                here.latitude_deg, here.longitude_deg, bearing, distance
            )
            here = Wgs84Position(lat, lon, here.altitude_m)
            now += distance / speed if distance > 0 else 1.0
            waypoints.append(Waypoint(now, here))
        return cls(waypoints)

    def duration(self) -> float:
        return self._waypoints[-1].time - self._waypoints[0].time

    def position_at(self, t: float) -> Wgs84Position:
        pts = self._waypoints
        if t <= pts[0].time:
            return pts[0].position
        if t >= pts[-1].time:
            return pts[-1].position
        # Linear scan is fine: trajectories have tens of waypoints and the
        # simulators sweep t monotonically.
        for a, b in zip(pts, pts[1:]):
            if a.time <= t <= b.time:
                frac = (t - a.time) / (b.time - a.time)
                dist = a.position.distance_to(b.position)
                if dist < 1e-9:
                    return a.position
                bearing = a.position.bearing_to(b.position)
                lat, lon = destination_point(
                    a.position.latitude_deg,
                    a.position.longitude_deg,
                    bearing,
                    dist * frac,
                )
                alt = a.position.altitude_m + frac * (
                    b.position.altitude_m - a.position.altitude_m
                )
                return Wgs84Position(lat, lon, alt)
        raise AssertionError("unreachable: t inside waypoint span")


class StationaryTrajectory(Trajectory):
    """A target that never moves; useful for EnTracked's idle case."""

    def __init__(self, position: Wgs84Position, duration_s: float) -> None:
        self._position = position
        self._duration = duration_s

    def duration(self) -> float:
        return self._duration

    def position_at(self, t: float) -> Wgs84Position:
        return self._position


class RandomWalkTrajectory(Trajectory):
    """A seeded pedestrian random walk with pause phases.

    Generates a waypoint path at construction and delegates to it, so the
    walk is fully determined by the seed.
    """

    def __init__(
        self,
        start: Wgs84Position,
        duration_s: float,
        seed: int,
        speed_mps: float = 1.4,
        turn_sigma_deg: float = 35.0,
        pause_probability: float = 0.15,
        pause_s: float = 20.0,
        step_s: float = 10.0,
    ) -> None:
        rng = random.Random(seed)
        waypoints = [Waypoint(0.0, start)]
        here, now = start, 0.0
        bearing = rng.uniform(0.0, 360.0)
        while now < duration_s:
            if rng.random() < pause_probability:
                now += pause_s
                waypoints.append(Waypoint(now, here))
                continue
            bearing = (bearing + rng.gauss(0.0, turn_sigma_deg)) % 360.0
            distance = speed_mps * step_s
            lat, lon = destination_point(
                here.latitude_deg, here.longitude_deg, bearing, distance
            )
            here = Wgs84Position(lat, lon, here.altitude_m)
            now += step_s
            waypoints.append(Waypoint(now, here))
        self._inner = WaypointTrajectory(waypoints)

    def duration(self) -> float:
        return self._inner.duration()

    def position_at(self, t: float) -> Wgs84Position:
        return self._inner.position_at(t)
