"""WiFi sensing substrate (system S4).

Substitution note (DESIGN.md §4): the paper's indoor fixes come from a
campus WiFi positioning deployment.  We rebuild the physical layer it sits
on: access points at known building-grid positions and a log-distance
path-loss radio model with per-wall attenuation and log-normal shadowing.
The scanner emits :class:`WifiScan` readings; the fingerprinting engine in
:mod:`repro.processing.wifi_positioning` turns scans into positions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.geo.grid import GridPosition, LocalGrid
from repro.sensors.base import SensorReading, SimulatedSensor
from repro.sensors.trajectory import Trajectory


@dataclass(frozen=True)
class AccessPoint:
    """A WiFi access point at a known building-grid position."""

    bssid: str
    position: GridPosition
    tx_power_dbm: float = -40.0  # received power at 1 m


@dataclass(frozen=True)
class WifiObservation:
    """One AP observed in a scan."""

    bssid: str
    rssi_dbm: float


@dataclass(frozen=True)
class WifiScan:
    """The result of one scan cycle: every AP heard above the floor."""

    timestamp: float
    observations: Tuple[WifiObservation, ...]

    def rssi_of(self, bssid: str) -> Optional[float]:
        for obs in self.observations:
            if obs.bssid == bssid:
                return obs.rssi_dbm
        return None

    def as_dict(self) -> Mapping[str, float]:
        return {o.bssid: o.rssi_dbm for o in self.observations}


#: Counts walls on the straight line between two grid positions.
WallCounter = Callable[[GridPosition, GridPosition], int]


class RadioEnvironment:
    """Log-distance path loss with wall attenuation and shadowing.

    ``rssi = tx_power - 10 * n * log10(d) - walls * wall_loss + shadowing``
    with path-loss exponent ``n`` and per-sample log-normal shadowing.
    The expected (noise-free) RSSI is exposed separately so that radio maps
    can be built from the model itself, as site surveys effectively do.
    """

    def __init__(
        self,
        access_points: Sequence[AccessPoint],
        path_loss_exponent: float = 3.0,
        wall_loss_db: float = 6.0,
        shadowing_sigma_db: float = 3.5,
        noise_floor_dbm: float = -95.0,
        wall_counter: Optional[WallCounter] = None,
    ) -> None:
        if not access_points:
            raise ValueError("need at least one access point")
        self.access_points = list(access_points)
        self.path_loss_exponent = path_loss_exponent
        self.wall_loss_db = wall_loss_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self.noise_floor_dbm = noise_floor_dbm
        self._wall_counter = wall_counter

    def expected_rssi(
        self, ap: AccessPoint, position: GridPosition
    ) -> float:
        """Noise-free RSSI of ``ap`` heard at ``position``."""
        distance = max(1.0, ap.position.distance_to(position))
        loss = 10.0 * self.path_loss_exponent * math.log10(distance)
        walls = 0
        if self._wall_counter is not None:
            walls = self._wall_counter(ap.position, position)
        return ap.tx_power_dbm - loss - walls * self.wall_loss_db

    def observe(
        self, position: GridPosition, rng: random.Random
    ) -> List[WifiObservation]:
        """One noisy scan at ``position``: APs above the noise floor."""
        observations = []
        for ap in self.access_points:
            rssi = self.expected_rssi(ap, position) + rng.gauss(
                0.0, self.shadowing_sigma_db
            )
            if rssi >= self.noise_floor_dbm:
                observations.append(WifiObservation(ap.bssid, rssi))
        observations.sort(key=lambda o: o.rssi_dbm, reverse=True)
        return observations


class WifiScanner(SimulatedSensor):
    """A device scanning the radio environment along a trajectory.

    Emits one :class:`WifiScan` per scan period.  Positions are projected
    into the building grid through ``grid``; scanning outside radio range
    yields empty scans, which downstream components must tolerate (that is
    one of the "seams" the paper is about).
    """

    def __init__(
        self,
        sensor_id: str,
        trajectory: Trajectory,
        environment: RadioEnvironment,
        grid: LocalGrid,
        seed: int = 0,
        scan_period_s: float = 2.0,
    ) -> None:
        super().__init__(sensor_id)
        if scan_period_s <= 0:
            raise ValueError("scan_period_s must be positive")
        self.trajectory = trajectory
        self.environment = environment
        self.grid = grid
        self._rng = random.Random(seed)
        self._period = scan_period_s
        self._next_scan = 0.0

    def describe(self) -> dict:
        return {
            "sensor_id": self.sensor_id,
            "type": "WifiScanner",
            "technology": "wifi",
            "output": "wifi-scan",
            "rate_hz": 1.0 / self._period,
        }

    def sample(self, now: float) -> List[SensorReading]:
        readings: List[SensorReading] = []
        while self._next_scan <= now:
            t = self._next_scan
            truth = self.trajectory.position_at(t)
            grid_pos = self.grid.to_grid(truth)
            scan = WifiScan(
                timestamp=t,
                observations=tuple(
                    self.environment.observe(grid_pos, self._rng)
                ),
            )
            readings.append(
                SensorReading(self.sensor_id, t, scan, {"format": "wifi-scan"})
            )
            self._next_scan += self._period
        return readings


def build_radio_map(
    environment: RadioEnvironment,
    positions: Sequence[GridPosition],
) -> "List[Tuple[GridPosition, Mapping[str, float]]]":
    """A survey radio map: expected RSSI vector at each survey position.

    This plays the role of the offline calibration phase of a fingerprint
    positioning system; the online phase is in
    :mod:`repro.processing.wifi_positioning`.
    """
    radio_map = []
    for pos in positions:
        vector = {
            ap.bssid: environment.expected_rssi(ap, pos)
            for ap in environment.access_points
        }
        vector = {
            bssid: rssi
            for bssid, rssi in vector.items()
            if rssi >= environment.noise_floor_dbm
        }
        radio_map.append((pos, vector))
    return radio_map
