"""NMEA 0183 sentence codec (system S2).

The paper's GPS pipeline is ``GPS sensor -> Parser -> Interpreter`` where
the sensor emits raw strings, the Parser assembles NMEA sentences and the
Interpreter produces WGS84 positions (Fig. 1, Fig. 4).  This module is the
codec both ends share: sentence value types, encoding with checksums for
the simulator, and tolerant parsing for the Parser component.

Supported sentence types are the ones positioning stacks actually consume:
``GGA`` (fix), ``RMC`` (recommended minimum), ``GSA`` (DOP and active
satellites), ``GSV`` (satellites in view) and ``VTG`` (track and speed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union


class NmeaError(ValueError):
    """Raised when a line cannot be decoded as an NMEA sentence."""


def checksum(body: str) -> str:
    """Two-digit hex XOR checksum over the sentence body (between $ and *)."""
    acc = 0
    for ch in body:
        acc ^= ord(ch)
    return f"{acc:02X}"


def _frame(body: str) -> str:
    """Wrap a sentence body in $...*hh framing."""
    return f"${body}*{checksum(body)}"


def _deg_to_dm(value: float, width: int) -> Tuple[str, float]:
    """Degrees to the NMEA ddmm.mmmm field (absolute value)."""
    value = abs(value)
    degrees = int(value)
    minutes = (value - degrees) * 60.0
    return f"{degrees:0{width}d}", minutes


def _format_lat(lat: float) -> Tuple[str, str]:
    deg, minutes = _deg_to_dm(lat, 2)
    return f"{deg}{minutes:07.4f}", "N" if lat >= 0 else "S"


def _format_lon(lon: float) -> Tuple[str, str]:
    deg, minutes = _deg_to_dm(lon, 3)
    return f"{deg}{minutes:07.4f}", "E" if lon >= 0 else "W"


def _parse_coord(field_: str, hemisphere: str, deg_digits: int) -> float:
    if not field_:
        raise NmeaError("empty coordinate field")
    degrees = float(field_[:deg_digits])
    minutes = float(field_[deg_digits:])
    value = degrees + minutes / 60.0
    if hemisphere in ("S", "W"):
        value = -value
    elif hemisphere not in ("N", "E"):
        raise NmeaError(f"bad hemisphere {hemisphere!r}")
    return value


def _format_time(t: float) -> str:
    """Simulation seconds to hhmmss.ss (wrapping at 24h)."""
    t = t % 86400.0
    h = int(t // 3600)
    m = int((t % 3600) // 60)
    s = t % 60.0
    return f"{h:02d}{m:02d}{s:05.2f}"


def _parse_time(field_: str) -> float:
    if len(field_) < 6:
        raise NmeaError(f"bad time field {field_!r}")
    h = int(field_[0:2])
    m = int(field_[2:4])
    s = float(field_[4:])
    return h * 3600.0 + m * 60.0 + s


@dataclass(frozen=True)
class GgaSentence:
    """GGA -- global positioning system fix data.

    ``fix_quality`` follows the standard: 0 = invalid, 1 = GPS fix,
    2 = DGPS.  ``num_satellites`` and ``hdop`` are the fields the paper's
    NumberOfSatellites and HDOP component features extract (§3.1, §3.2).
    """

    time_s: float
    latitude_deg: Optional[float]
    longitude_deg: Optional[float]
    fix_quality: int
    num_satellites: int
    hdop: Optional[float]
    altitude_m: Optional[float]

    sentence_type: str = field(default="GGA", init=False)

    def encode(self) -> str:
        if self.latitude_deg is None or self.longitude_deg is None:
            lat = lat_h = lon = lon_h = ""
        else:
            lat, lat_h = _format_lat(self.latitude_deg)
            lon, lon_h = _format_lon(self.longitude_deg)
        hdop = "" if self.hdop is None else f"{self.hdop:.1f}"
        alt = "" if self.altitude_m is None else f"{self.altitude_m:.1f}"
        body = (
            f"GPGGA,{_format_time(self.time_s)},{lat},{lat_h},{lon},{lon_h},"
            f"{self.fix_quality},{self.num_satellites:02d},{hdop},{alt},M,,M,,"
        )
        return _frame(body)

    @property
    def has_fix(self) -> bool:
        return self.fix_quality > 0 and self.latitude_deg is not None


@dataclass(frozen=True)
class RmcSentence:
    """RMC -- recommended minimum navigation information."""

    time_s: float
    valid: bool
    latitude_deg: Optional[float]
    longitude_deg: Optional[float]
    speed_knots: float
    course_deg: float

    sentence_type: str = field(default="RMC", init=False)

    def encode(self) -> str:
        status = "A" if self.valid else "V"
        if self.latitude_deg is None or self.longitude_deg is None:
            lat = lat_h = lon = lon_h = ""
        else:
            lat, lat_h = _format_lat(self.latitude_deg)
            lon, lon_h = _format_lon(self.longitude_deg)
        body = (
            f"GPRMC,{_format_time(self.time_s)},{status},{lat},{lat_h},"
            f"{lon},{lon_h},{self.speed_knots:.2f},{self.course_deg:.1f},"
            f"010120,,,"
        )
        return _frame(body)


@dataclass(frozen=True)
class GsaSentence:
    """GSA -- DOP values and IDs of satellites used in the fix."""

    fix_type: int  # 1 = none, 2 = 2D, 3 = 3D
    satellite_ids: Tuple[int, ...]
    pdop: Optional[float]
    hdop: Optional[float]
    vdop: Optional[float]

    sentence_type: str = field(default="GSA", init=False)

    def encode(self) -> str:
        ids = list(self.satellite_ids)[:12]
        ids += [None] * (12 - len(ids))
        id_fields = ",".join("" if i is None else f"{i:02d}" for i in ids)
        fmt = lambda v: "" if v is None else f"{v:.1f}"  # noqa: E731
        body = (
            f"GPGSA,A,{self.fix_type},{id_fields},"
            f"{fmt(self.pdop)},{fmt(self.hdop)},{fmt(self.vdop)}"
        )
        return _frame(body)


@dataclass(frozen=True)
class GsvSatelliteInfo:
    """One satellite's entry in a GSV sentence."""

    satellite_id: int
    elevation_deg: int
    azimuth_deg: int
    snr_db: Optional[int]


@dataclass(frozen=True)
class GsvSentence:
    """GSV -- satellites in view (one page of up to four)."""

    total_sentences: int
    sentence_number: int
    satellites_in_view: int
    satellites: Tuple[GsvSatelliteInfo, ...]

    sentence_type: str = field(default="GSV", init=False)

    def encode(self) -> str:
        parts = [
            "GPGSV",
            str(self.total_sentences),
            str(self.sentence_number),
            f"{self.satellites_in_view:02d}",
        ]
        for sat in self.satellites[:4]:
            snr = "" if sat.snr_db is None else f"{sat.snr_db:02d}"
            parts += [
                f"{sat.satellite_id:02d}",
                f"{sat.elevation_deg:02d}",
                f"{sat.azimuth_deg:03d}",
                snr,
            ]
        return _frame(",".join(parts))


@dataclass(frozen=True)
class VtgSentence:
    """VTG -- track made good and ground speed."""

    course_deg: float
    speed_knots: float

    sentence_type: str = field(default="VTG", init=False)

    def encode(self) -> str:
        kmh = self.speed_knots * 1.852
        body = (
            f"GPVTG,{self.course_deg:.1f},T,,M,"
            f"{self.speed_knots:.2f},N,{kmh:.2f},K"
        )
        return _frame(body)


NmeaSentence = Union[
    GgaSentence, RmcSentence, GsaSentence, GsvSentence, VtgSentence
]


def parse_sentence(line: str) -> NmeaSentence:
    """Decode one framed NMEA line into a sentence value.

    Raises :class:`NmeaError` on framing, checksum or field errors; the
    Parser component turns those into dropped lines, mimicking a real
    receiver pipeline's tolerance of serial corruption.
    """
    line = line.strip()
    if not line.startswith("$"):
        raise NmeaError(f"missing $ framing: {line!r}")
    if "*" not in line:
        raise NmeaError(f"missing checksum: {line!r}")
    body, _, given = line[1:].rpartition("*")
    if checksum(body) != given.upper():
        raise NmeaError(
            f"checksum mismatch: computed {checksum(body)}, got {given}"
        )
    fields = body.split(",")
    talker_type = fields[0]
    if len(talker_type) != 5:
        raise NmeaError(f"bad sentence id {talker_type!r}")
    stype = talker_type[2:]
    try:
        if stype == "GGA":
            return _parse_gga(fields)
        if stype == "RMC":
            return _parse_rmc(fields)
        if stype == "GSA":
            return _parse_gsa(fields)
        if stype == "GSV":
            return _parse_gsv(fields)
        if stype == "VTG":
            return _parse_vtg(fields)
    except (ValueError, IndexError) as exc:
        raise NmeaError(f"malformed {stype} sentence: {exc}") from exc
    raise NmeaError(f"unsupported sentence type {stype!r}")


def _parse_gga(fields: Sequence[str]) -> GgaSentence:
    lat = lon = None
    if fields[2] and fields[4]:
        lat = _parse_coord(fields[2], fields[3], 2)
        lon = _parse_coord(fields[4], fields[5], 3)
    return GgaSentence(
        time_s=_parse_time(fields[1]),
        latitude_deg=lat,
        longitude_deg=lon,
        fix_quality=int(fields[6] or 0),
        num_satellites=int(fields[7] or 0),
        hdop=float(fields[8]) if fields[8] else None,
        altitude_m=float(fields[9]) if fields[9] else None,
    )


def _parse_rmc(fields: Sequence[str]) -> RmcSentence:
    lat = lon = None
    if fields[3] and fields[5]:
        lat = _parse_coord(fields[3], fields[4], 2)
        lon = _parse_coord(fields[5], fields[6], 3)
    return RmcSentence(
        time_s=_parse_time(fields[1]),
        valid=fields[2] == "A",
        latitude_deg=lat,
        longitude_deg=lon,
        speed_knots=float(fields[7] or 0.0),
        course_deg=float(fields[8] or 0.0),
    )


def _parse_gsa(fields: Sequence[str]) -> GsaSentence:
    ids = tuple(int(f) for f in fields[3:15] if f)
    opt = lambda f: float(f) if f else None  # noqa: E731
    return GsaSentence(
        fix_type=int(fields[2] or 1),
        satellite_ids=ids,
        pdop=opt(fields[15]),
        hdop=opt(fields[16]),
        vdop=opt(fields[17]),
    )


def _parse_gsv(fields: Sequence[str]) -> GsvSentence:
    sats = []
    for i in range(4, len(fields) - 3, 4):
        chunk = fields[i : i + 4]
        if len(chunk) < 4 or not chunk[0]:
            continue
        sats.append(
            GsvSatelliteInfo(
                satellite_id=int(chunk[0]),
                elevation_deg=int(chunk[1] or 0),
                azimuth_deg=int(chunk[2] or 0),
                snr_db=int(chunk[3]) if chunk[3] else None,
            )
        )
    return GsvSentence(
        total_sentences=int(fields[1]),
        sentence_number=int(fields[2]),
        satellites_in_view=int(fields[3]),
        satellites=tuple(sats),
    )


def _parse_vtg(fields: Sequence[str]) -> VtgSentence:
    return VtgSentence(
        course_deg=float(fields[1] or 0.0),
        speed_knots=float(fields[5] or 0.0),
    )
