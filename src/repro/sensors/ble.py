"""Bluetooth Low Energy beacon sensing: a third positioning technology.

The paper's requirement R1 is "adding a new kind of positioning
mechanism and use this in the middleware, without changing the
interface".  BLE proximity beacons are the cleanest such addition: a
technology with completely different physics (short-range, room-scoped)
and a different output (beacon sightings, not coordinates), which the
BeaconPositioningComponent in :mod:`repro.processing.beacon_positioning`
turns into room-level positions that flow into the same fusion and
application machinery as GPS and WiFi.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geo.grid import GridPosition, LocalGrid
from repro.sensors.base import SensorReading, SimulatedSensor
from repro.sensors.trajectory import Trajectory


@dataclass(frozen=True)
class Beacon:
    """A fixed BLE beacon with a known deployment position."""

    beacon_id: str
    position: GridPosition
    tx_power_dbm: float = -59.0  # measured power at 1 m, iBeacon-style


@dataclass(frozen=True)
class BeaconSighting:
    """One beacon observed during a scan window."""

    beacon_id: str
    rssi_dbm: float


@dataclass(frozen=True)
class BeaconScan:
    """All beacons heard in one scan window."""

    timestamp: float
    sightings: Tuple[BeaconSighting, ...]

    def strongest(self) -> Optional[BeaconSighting]:
        if not self.sightings:
            return None
        return max(self.sightings, key=lambda s: s.rssi_dbm)


class BleScanner(SimulatedSensor):
    """Scans for beacons along a trajectory.

    BLE propagation is modelled as log-distance path loss with a short
    detection range and heavier shadowing than WiFi (body effects); the
    wall attenuation reuses the building model when provided.
    """

    def __init__(
        self,
        sensor_id: str,
        trajectory: Trajectory,
        beacons: Sequence[Beacon],
        grid: LocalGrid,
        seed: int = 0,
        scan_period_s: float = 1.0,
        path_loss_exponent: float = 2.2,
        shadowing_sigma_db: float = 5.0,
        detection_floor_dbm: float = -90.0,
        wall_counter=None,
        wall_loss_db: float = 8.0,
    ) -> None:
        super().__init__(sensor_id)
        if not beacons:
            raise ValueError("need at least one beacon")
        if scan_period_s <= 0:
            raise ValueError("scan_period_s must be positive")
        self.trajectory = trajectory
        self.beacons = list(beacons)
        self.grid = grid
        self._rng = random.Random(seed)
        self._period = scan_period_s
        self._n = path_loss_exponent
        self._sigma = shadowing_sigma_db
        self._floor = detection_floor_dbm
        self._wall_counter = wall_counter
        self._wall_loss = wall_loss_db
        self._next_scan = 0.0

    def describe(self) -> dict:
        return {
            "sensor_id": self.sensor_id,
            "type": "BleScanner",
            "technology": "ble",
            "output": "beacon-scan",
            "beacons": len(self.beacons),
        }

    def expected_rssi(self, beacon: Beacon, position: GridPosition) -> float:
        distance = max(0.5, beacon.position.distance_to(position))
        loss = 10.0 * self._n * math.log10(distance)
        walls = 0
        if self._wall_counter is not None:
            walls = self._wall_counter(beacon.position, position)
        return beacon.tx_power_dbm - loss - walls * self._wall_loss

    def sample(self, now: float) -> List[SensorReading]:
        readings: List[SensorReading] = []
        while self._next_scan <= now:
            t = self._next_scan
            here = self.grid.to_grid(self.trajectory.position_at(t))
            sightings = []
            for beacon in self.beacons:
                rssi = self.expected_rssi(beacon, here) + self._rng.gauss(
                    0.0, self._sigma
                )
                if rssi >= self._floor:
                    sightings.append(
                        BeaconSighting(beacon.beacon_id, rssi)
                    )
            sightings.sort(key=lambda s: s.rssi_dbm, reverse=True)
            readings.append(
                SensorReading(
                    self.sensor_id,
                    t,
                    BeaconScan(t, tuple(sightings)),
                    {"format": "beacon-scan"},
                )
            )
            self._next_scan += self._period
        return readings
