"""GPS receiver simulator (system S3).

Substitution note (DESIGN.md §4): the paper evaluates against a physical
receiver and recorded traces.  This simulator reproduces the properties
those experiments rely on:

* the error of each fix scales with the true geometry's HDOP and with the
  environment (open sky / urban canyon / indoor), so the HDOP likelihood
  feature of §3.2 sees honest values;
* the receiver **keeps emitting position sentences after losing the sky**,
  reporting its last fix with a low satellite count -- the exact behaviour
  the satellite-count filter of §3.1 exists to catch;
* output is raw serial-style string fragments, several of which make up
  one NMEA sentence, matching the data tree of Fig. 4.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geo.wgs84 import Wgs84Position
from repro.sensors.base import SensorReading, SimulatedSensor
from repro.sensors.nmea import (
    GgaSentence,
    GsaSentence,
    GsvSatelliteInfo,
    GsvSentence,
    RmcSentence,
    VtgSentence,
)
from repro.sensors.satellites import (
    Constellation,
    SatelliteView,
    compute_dops,
)
from repro.sensors.trajectory import Trajectory


@dataclass(frozen=True)
class SkyEnvironment:
    """How much of the sky an environment lets a receiver see.

    ``blockage_probability`` is the chance that a given satellite above the
    mask is still blocked (buildings, the roof); ``extra_mask_deg`` raises
    the effective elevation mask (street canyons); ``error_multiplier``
    scales the fix error beyond what HDOP explains (multipath).
    """

    name: str
    extra_mask_deg: float
    blockage_probability: float
    snr_loss_db: float
    error_multiplier: float


OPEN_SKY = SkyEnvironment("open_sky", 0.0, 0.0, 0.0, 1.0)
SUBURBAN = SkyEnvironment("suburban", 5.0, 0.1, 3.0, 1.3)
URBAN_CANYON = SkyEnvironment("urban_canyon", 20.0, 0.35, 8.0, 2.0)
INDOOR = SkyEnvironment("indoor", 45.0, 0.85, 18.0, 4.0)

#: Maps a (time, true position) to the sky environment at that point.
EnvironmentMap = Callable[[float, Wgs84Position], SkyEnvironment]


def constant_environment(env: SkyEnvironment) -> EnvironmentMap:
    """An environment map that ignores position."""

    def _map(_t: float, _position: Wgs84Position) -> SkyEnvironment:
        return env

    return _map


@dataclass(frozen=True)
class GpsEpoch:
    """Introspection record of one simulated receiver epoch.

    Benchmarks use these to compare what the receiver *reported* against
    the ground truth it was fed.
    """

    time_s: float
    true_position: Wgs84Position
    reported_position: Optional[Wgs84Position]
    satellites_used: int
    hdop: Optional[float]
    environment: str
    is_stale: bool


class GpsReceiver(SimulatedSensor):
    """A simulated GPS receiver emitting NMEA over a fragmenting serial link.

    Parameters
    ----------
    sensor_id:
        Identifier carried on every reading.
    trajectory:
        Ground-truth path of the device.
    environment_map:
        Sky environment as a function of time and true position.
    seed:
        Seed for all stochastic behaviour (blockage, noise, corruption).
    rate_hz:
        Fix rate; NMEA epochs are produced at this rate while sampled.
    chunk_size:
        Serial fragment size in characters; several fragments per sentence
        (Fig. 4).  ``None`` disables fragmentation (one reading per line).
    uere_m:
        User-equivalent range error; horizontal fix error is drawn with
        sigma ``uere_m * hdop * error_multiplier``.
    stale_hold_s:
        For how long after losing a fix the device keeps reporting its
        last known position (the §3.1 failure mode).
    corruption_probability:
        Chance that an emitted sentence is corrupted in transit, which the
        Parser must survive.
    error_correlation_time_s:
        Time constant of the first-order Gauss-Markov error process.  GPS
        error is strongly autocorrelated (atmosphere and multipath drift
        over tens of seconds rather than re-rolling each epoch); white
        noise would make a stationary receiver look like it is moving at
        several m/s.  Set to 0 for uncorrelated (white) errors.
    """

    def __init__(
        self,
        sensor_id: str,
        trajectory: Trajectory,
        environment_map: Optional[EnvironmentMap] = None,
        seed: int = 0,
        rate_hz: float = 1.0,
        chunk_size: Optional[int] = 48,
        uere_m: float = 5.0,
        min_satellites_for_fix: int = 4,
        max_hdop: float = 20.0,
        stale_hold_s: float = 30.0,
        corruption_probability: float = 0.0,
        elevation_mask_deg: float = 5.0,
        constellation: Optional[Constellation] = None,
        error_correlation_time_s: float = 120.0,
    ) -> None:
        super().__init__(sensor_id)
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        self.trajectory = trajectory
        self._env_map = environment_map or constant_environment(OPEN_SKY)
        self._rng = random.Random(seed)
        self._period = 1.0 / rate_hz
        self._chunk_size = chunk_size
        self._uere_m = uere_m
        self._min_sats = min_satellites_for_fix
        self._max_hdop = max_hdop
        self._stale_hold_s = stale_hold_s
        self._corruption_probability = corruption_probability
        self._mask_deg = elevation_mask_deg
        self._constellation = constellation or Constellation.nominal_gps()
        self._tau = error_correlation_time_s
        self._next_epoch = 0.0
        self._last_fix: Optional[Wgs84Position] = None
        self._last_fix_time: Optional[float] = None
        self._error_east = 0.0
        self._error_north = 0.0
        self._error_sigma = 0.0
        self._error_time: Optional[float] = None
        self.epochs: List[GpsEpoch] = []

    def describe(self) -> dict:
        return {
            "sensor_id": self.sensor_id,
            "type": "GpsReceiver",
            "technology": "gps",
            "output": "nmea-fragments",
            "rate_hz": 1.0 / self._period,
        }

    def sample(self, now: float) -> List[SensorReading]:
        """Emit readings for every epoch due at or before ``now``."""
        readings: List[SensorReading] = []
        while self._next_epoch <= now:
            readings.extend(self._emit_epoch(self._next_epoch))
            self._next_epoch += self._period
        return readings

    # -- internals ---------------------------------------------------------

    def _emit_epoch(self, t: float) -> List[SensorReading]:
        truth = self.trajectory.position_at(t)
        env = self._env_map(t, truth)
        views = self._visible_views(truth, t, env)
        used = views[:12]
        dops = compute_dops(used)

        # Receivers reject fixes whose geometry is degenerate; without the
        # DOP cutoff a 4-satellite near-coplanar fix reports absurd HDOP.
        if (
            len(used) >= self._min_sats
            and dops is not None
            and dops.hdop <= self._max_hdop
        ):
            reported = self._noisy_fix(truth, dops.hdop, env, t)
            self._last_fix = reported
            self._last_fix_time = t
            hdop: Optional[float] = dops.hdop
            quality = 1
            stale = False
        elif (
            self._last_fix is not None
            and self._last_fix_time is not None
            and t - self._last_fix_time <= self._stale_hold_s
        ):
            # The documented misbehaviour: keep reporting the old fix.
            reported = self._last_fix
            hdop = 25.0
            quality = 1
            stale = True
        else:
            reported = None
            hdop = None
            quality = 0
            stale = False

        self.epochs.append(
            GpsEpoch(
                time_s=t,
                true_position=truth,
                reported_position=reported,
                satellites_used=len(used),
                hdop=hdop,
                environment=env.name,
                is_stale=stale,
            )
        )
        sentences = self._sentences(t, reported, used, hdop, quality)
        stream = "".join(s + "\r\n" for s in sentences)
        return self._fragment(t, stream)

    def _visible_views(
        self, observer: Wgs84Position, t: float, env: SkyEnvironment
    ) -> List[SatelliteView]:
        mask = self._mask_deg + env.extra_mask_deg
        views = self._constellation.views_from(observer, t, mask)
        survivors = []
        for v in views:
            if self._rng.random() < env.blockage_probability:
                continue
            snr = max(0.0, v.snr_db - env.snr_loss_db)
            survivors.append(
                SatelliteView(v.prn, v.azimuth_deg, v.elevation_deg, snr)
            )
        # Strongest signals are tracked first, like a real receiver.
        survivors.sort(key=lambda v: v.snr_db, reverse=True)
        return survivors

    def _noisy_fix(
        self, truth: Wgs84Position, hdop: float, env: SkyEnvironment, t: float
    ) -> Wgs84Position:
        sigma = self._uere_m * hdop * env.error_multiplier
        east, north = self._advance_error(sigma, t)
        moved = truth.moved(90.0, east).moved(0.0, north)
        return Wgs84Position(
            moved.latitude_deg,
            moved.longitude_deg,
            truth.altitude_m,
            accuracy_m=sigma,
            timestamp=None,
        )

    def _advance_error(self, sigma: float, t: float) -> Tuple[float, float]:
        """First-order Gauss-Markov error per axis, stationary at sigma.

        e(t) = rho * e(t-dt) + N(0, sigma * sqrt(1 - rho^2)) with
        rho = exp(-dt / tau); errors decorrelate over ``tau`` seconds
        while staying sigma-sized in magnitude.
        """
        per_axis = sigma / math.sqrt(2.0)
        if self._tau <= 0 or self._error_time is None:
            rho = 0.0
        else:
            dt = max(0.0, t - self._error_time)
            rho = math.exp(-dt / self._tau)
        # Rescale the carried error if sigma changed between epochs
        # (environment transitions), so magnitude tracks current quality.
        if self._error_sigma > 0:
            scale = per_axis / self._error_sigma
        else:
            scale = 0.0
        innovation = per_axis * math.sqrt(max(0.0, 1.0 - rho * rho))
        self._error_east = rho * self._error_east * scale + self._rng.gauss(
            0.0, innovation
        )
        self._error_north = rho * self._error_north * scale + self._rng.gauss(
            0.0, innovation
        )
        self._error_sigma = per_axis
        self._error_time = t
        return self._error_east, self._error_north

    def _sentences(
        self,
        t: float,
        reported: Optional[Wgs84Position],
        used: Sequence[SatelliteView],
        hdop: Optional[float],
        quality: int,
    ) -> List[str]:
        lat = reported.latitude_deg if reported else None
        lon = reported.longitude_deg if reported else None
        alt = reported.altitude_m if reported else None
        speed_knots = self.trajectory.speed_at(t) * 1.943844
        course = 0.0
        gga = GgaSentence(
            time_s=t,
            latitude_deg=lat,
            longitude_deg=lon,
            fix_quality=quality,
            num_satellites=len(used),
            hdop=hdop,
            altitude_m=alt,
        )
        rmc = RmcSentence(
            time_s=t,
            valid=quality > 0,
            latitude_deg=lat,
            longitude_deg=lon,
            speed_knots=speed_knots,
            course_deg=course,
        )
        dops = compute_dops(used)
        gsa = GsaSentence(
            fix_type=3 if quality and len(used) >= 4 else 1,
            satellite_ids=tuple(v.prn for v in used[:12]),
            pdop=dops.pdop if dops else None,
            hdop=dops.hdop if dops else None,
            vdop=dops.vdop if dops else None,
        )
        sentences = [gga.encode(), rmc.encode(), gsa.encode()]
        sentences.extend(self._gsv_pages(used))
        sentences.append(VtgSentence(course, speed_knots).encode())
        return [self._maybe_corrupt(s) for s in sentences]

    def _gsv_pages(self, used: Sequence[SatelliteView]) -> List[str]:
        pages = []
        total = max(1, math.ceil(len(used) / 4)) if used else 1
        for page in range(total):
            chunk = used[page * 4 : page * 4 + 4]
            infos = tuple(
                GsvSatelliteInfo(
                    satellite_id=v.prn,
                    elevation_deg=int(v.elevation_deg),
                    azimuth_deg=int(v.azimuth_deg),
                    snr_db=int(v.snr_db),
                )
                for v in chunk
            )
            pages.append(
                GsvSentence(
                    total_sentences=total,
                    sentence_number=page + 1,
                    satellites_in_view=len(used),
                    satellites=infos,
                ).encode()
            )
        return pages

    def _maybe_corrupt(self, sentence: str) -> str:
        if (
            self._corruption_probability
            and self._rng.random() < self._corruption_probability
            and len(sentence) > 8
        ):
            idx = self._rng.randrange(1, len(sentence) - 4)
            flipped = chr((ord(sentence[idx]) ^ 0x01) & 0x7F)
            sentence = sentence[:idx] + flipped + sentence[idx + 1 :]
        return sentence

    def _fragment(self, t: float, stream: str) -> List[SensorReading]:
        if self._chunk_size is None:
            chunks = [line + "\r\n" for line in stream.splitlines()]
        else:
            chunks = [
                stream[i : i + self._chunk_size]
                for i in range(0, len(stream), self._chunk_size)
            ]
        return [
            SensorReading(self.sensor_id, t, chunk, {"format": "nmea-raw"})
            for chunk in chunks
        ]
