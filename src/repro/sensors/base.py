"""Common sensor value types and the simulated-sensor interface.

In the processing graph a sensor is a leaf :class:`ProcessingComponent`.
The classes here are the substrate below that: objects that produce
timestamped readings when sampled against a :class:`~repro.clock.
SimulationClock`.  Graph adapters in :mod:`repro.processing.sources` wrap
them as components.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, List, Mapping


@dataclass(frozen=True)
class SensorReading:
    """One timestamped sample from a sensor.

    ``payload`` is technology specific: raw NMEA string fragments for GPS,
    a :class:`~repro.sensors.wifi.WifiScan` for WiFi, acceleration
    magnitudes for the accelerometer.  Keeping the envelope uniform lets
    the emulator record and replay any sensor.
    """

    sensor_id: str
    timestamp: float
    payload: Any
    attributes: Mapping[str, Any] = field(default_factory=dict)


class SimulatedSensor(abc.ABC):
    """A device that yields readings when sampled at a point in time.

    Implementations must be deterministic given their seed: sampling the
    same sensor at the same times yields the same readings.
    """

    def __init__(self, sensor_id: str) -> None:
        self.sensor_id = sensor_id

    @abc.abstractmethod
    def sample(self, now: float) -> List[SensorReading]:
        """Produce zero or more readings for simulation time ``now``."""

    def describe(self) -> Mapping[str, Any]:
        """Static metadata: technology, output type, rate hints."""
        return {"sensor_id": self.sensor_id, "type": type(self).__name__}
