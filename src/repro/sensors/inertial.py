"""Accelerometer simulation (system S6).

EnTracked (paper §3.3) decides when the GPS may sleep by asking an
accelerometer whether the device is moving.  The simulated accelerometer
reports the magnitude of acceleration variance over a short window: near
zero at rest, clearly elevated while walking, with sensor noise in both
states so that movement detection needs an actual threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.sensors.base import SensorReading, SimulatedSensor
from repro.sensors.trajectory import Trajectory


@dataclass(frozen=True)
class AccelerometerReading:
    """Variance of acceleration magnitude over the sampling window."""

    timestamp: float
    variance: float


class Accelerometer(SimulatedSensor):
    """Reports motion energy derived from the ground-truth trajectory.

    The device is "moving" when the trajectory's speed exceeds
    ``speed_threshold_mps``; the emitted variance is drawn from a
    state-dependent distribution, overlapping slightly so that naive
    thresholds misclassify occasionally -- as real detectors do.
    """

    def __init__(
        self,
        sensor_id: str,
        trajectory: Trajectory,
        seed: int = 0,
        period_s: float = 1.0,
        speed_threshold_mps: float = 0.2,
        still_level: float = 0.02,
        moving_level: float = 1.2,
        noise_sigma: float = 0.08,
    ) -> None:
        super().__init__(sensor_id)
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.trajectory = trajectory
        self._rng = random.Random(seed)
        self._period = period_s
        self._speed_threshold = speed_threshold_mps
        self._still_level = still_level
        self._moving_level = moving_level
        self._noise_sigma = noise_sigma
        self._next_sample = 0.0

    def describe(self) -> dict:
        return {
            "sensor_id": self.sensor_id,
            "type": "Accelerometer",
            "technology": "inertial",
            "output": "accel-variance",
            "rate_hz": 1.0 / self._period,
        }

    def sample(self, now: float) -> List[SensorReading]:
        readings: List[SensorReading] = []
        while self._next_sample <= now:
            t = self._next_sample
            speed = self.trajectory.speed_at(t)
            level = (
                self._moving_level
                if speed > self._speed_threshold
                else self._still_level
            )
            variance = max(
                0.0, self._rng.gauss(level, self._noise_sigma)
            )
            readings.append(
                SensorReading(
                    self.sensor_id,
                    t,
                    AccelerometerReading(t, variance),
                    {"format": "accel-variance"},
                )
            )
            self._next_sample += self._period
        return readings
