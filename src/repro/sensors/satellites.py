"""GPS constellation geometry and dilution-of-precision (system S3a).

The satellite-count filter (paper §3.1) and the HDOP likelihood feature
(§3.2) only make sense if the simulated receiver's reported satellite
count and HDOP genuinely track fix quality.  We therefore simulate the
actual GPS geometry: a nominal 27-satellite constellation on circular
orbits, visibility from an observer through an environment sky model, and
DOP values computed from the real geometry matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geo.ellipsoid import EcefPosition
from repro.geo.enu import EnuFrame
from repro.geo.wgs84 import Wgs84Position

#: GPS orbital radius (semi-major axis) in metres.
GPS_ORBIT_RADIUS_M = 26_559_700.0
#: GPS orbital period in seconds (half a sidereal day).
GPS_ORBIT_PERIOD_S = 43_082.0
#: Earth rotation rate, rad/s.
EARTH_ROTATION_RAD_S = 7.292115e-5
#: Nominal GPS inclination in degrees.
GPS_INCLINATION_DEG = 55.0


@dataclass(frozen=True)
class Satellite:
    """One satellite on a circular orbit.

    ``raan_deg`` is the right ascension of the ascending node and
    ``anomaly_deg`` the argument of latitude at epoch t=0.
    """

    prn: int
    raan_deg: float
    anomaly_deg: float
    inclination_deg: float = GPS_INCLINATION_DEG

    def ecef_at(self, t: float) -> EcefPosition:
        """Satellite position in the rotating Earth frame at time ``t``."""
        u = math.radians(self.anomaly_deg) + (
            2.0 * math.pi * t / GPS_ORBIT_PERIOD_S
        )
        inc = math.radians(self.inclination_deg)
        # Position in the orbital plane, then rotate by RAAN corrected for
        # Earth rotation to land in ECEF.
        raan = math.radians(self.raan_deg) - EARTH_ROTATION_RAD_S * t
        x_orb = GPS_ORBIT_RADIUS_M * math.cos(u)
        y_orb = GPS_ORBIT_RADIUS_M * math.sin(u)
        x = x_orb * math.cos(raan) - y_orb * math.cos(inc) * math.sin(raan)
        y = x_orb * math.sin(raan) + y_orb * math.cos(inc) * math.cos(raan)
        z = y_orb * math.sin(inc)
        return EcefPosition(x, y, z)


@dataclass(frozen=True)
class SatelliteView:
    """A satellite as seen from the observer."""

    prn: int
    azimuth_deg: float
    elevation_deg: float
    snr_db: float


@dataclass(frozen=True)
class DopValues:
    """Dilution-of-precision summary computed from fix geometry."""

    gdop: float
    pdop: float
    hdop: float
    vdop: float


class Constellation:
    """A set of satellites plus visibility and DOP computation."""

    def __init__(self, satellites: Sequence[Satellite]) -> None:
        self.satellites = list(satellites)

    @classmethod
    def nominal_gps(cls, planes: int = 6, per_plane: int = 5) -> "Constellation":
        """The nominal GPS layout: slots spread over ``planes`` planes."""
        sats = []
        prn = 1
        for p in range(planes):
            raan = 360.0 * p / planes
            for s in range(per_plane):
                # Stagger anomalies between planes so satellites don't rise
                # and set in lockstep.
                anomaly = 360.0 * s / per_plane + 360.0 * p / (
                    planes * per_plane
                )
                sats.append(Satellite(prn, raan, anomaly))
                prn += 1
        return cls(sats)

    def views_from(
        self,
        observer: Wgs84Position,
        t: float,
        elevation_mask_deg: float = 5.0,
    ) -> List[SatelliteView]:
        """Satellites above the elevation mask, with open-sky SNR.

        SNR is modelled as rising with elevation (low satellites suffer
        more atmosphere and multipath), matching the statistics receivers
        report.
        """
        frame = EnuFrame(observer)
        obs_ecef = EcefPosition.from_geodetic(observer)
        views = []
        for sat in self.satellites:
            sat_ecef = sat.ecef_at(t)
            dx = sat_ecef.x_m - obs_ecef.x_m
            dy = sat_ecef.y_m - obs_ecef.y_m
            dz = sat_ecef.z_m - obs_ecef.z_m
            east, north, up = _rotate_to_enu(frame, dx, dy, dz)
            rng = math.sqrt(east * east + north * north + up * up)
            elevation = math.degrees(math.asin(up / rng))
            if elevation < elevation_mask_deg:
                continue
            azimuth = math.degrees(math.atan2(east, north)) % 360.0
            snr = 35.0 + 15.0 * math.sin(math.radians(max(elevation, 0.0)))
            views.append(SatelliteView(sat.prn, azimuth, elevation, snr))
        return views


def _rotate_to_enu(
    frame: EnuFrame, dx: float, dy: float, dz: float
) -> Tuple[float, float, float]:
    r = frame._rot  # EnuFrame exposes its rotation rows internally.
    return (
        r[0][0] * dx + r[0][1] * dy + r[0][2] * dz,
        r[1][0] * dx + r[1][1] * dy + r[1][2] * dz,
        r[2][0] * dx + r[2][1] * dy + r[2][2] * dz,
    )


def compute_dops(views: Sequence[SatelliteView]) -> Optional[DopValues]:
    """DOP values from the fix geometry matrix.

    Each used satellite contributes a unit line-of-sight row
    ``[-cos(el)sin(az), -cos(el)cos(az), -sin(el), 1]``; the DOPs are the
    usual square roots of the diagonal of ``(G^T G)^-1``.  Returns ``None``
    when fewer than four satellites are used or the geometry is singular.
    """
    if len(views) < 4:
        return None
    rows = []
    for v in views:
        el = math.radians(v.elevation_deg)
        az = math.radians(v.azimuth_deg)
        rows.append(
            (
                -math.cos(el) * math.sin(az),
                -math.cos(el) * math.cos(az),
                -math.sin(el),
                1.0,
            )
        )
    # Normal matrix N = G^T G (4x4, symmetric).
    n = [[0.0] * 4 for _ in range(4)]
    for row in rows:
        for i in range(4):
            for j in range(4):
                n[i][j] += row[i] * row[j]
    q = _invert_4x4(n)
    if q is None:
        return None
    diag = [q[i][i] for i in range(4)]
    if any(d < 0 for d in diag):
        return None
    hdop = math.sqrt(diag[0] + diag[1])
    vdop = math.sqrt(diag[2])
    pdop = math.sqrt(diag[0] + diag[1] + diag[2])
    gdop = math.sqrt(sum(diag))
    return DopValues(gdop=gdop, pdop=pdop, hdop=hdop, vdop=vdop)


def _invert_4x4(m: Sequence[Sequence[float]]) -> Optional[List[List[float]]]:
    """Gauss-Jordan inversion; returns None for singular matrices."""
    size = 4
    aug = [list(m[i]) + [1.0 if i == j else 0.0 for j in range(size)] for i in range(size)]
    for col in range(size):
        pivot_row = max(range(col, size), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot_row][col]) < 1e-12:
            return None
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [v / pivot for v in aug[col]]
        for r in range(size):
            if r == col:
                continue
            factor = aug[r][col]
            if factor:
                aug[r] = [v - factor * p for v, p in zip(aug[r], aug[col])]
    return [row[size:] for row in aug]
