"""Sensing substrate for the PerPos reproduction (S2-S6 in DESIGN.md).

The paper's evaluation runs against a physical GPS receiver, a campus WiFi
positioning deployment and recorded sensor traces.  This package rebuilds
those inputs as simulators with the properties the middleware adaptations
depend on:

* :mod:`repro.sensors.nmea` -- an NMEA 0183 codec (GGA/RMC/GSA/GSV/VTG);
* :mod:`repro.sensors.satellites` -- constellation geometry and DOP;
* :mod:`repro.sensors.gps` -- a GPS receiver simulator whose error
  statistics correlate with its reported satellite count and HDOP, and
  which keeps emitting stale fixes after losing the sky (paper §3.1);
* :mod:`repro.sensors.wifi` -- access points and a path-loss radio model;
* :mod:`repro.sensors.inertial` -- an accelerometer for EnTracked's
  movement detection (paper §3.3);
* :mod:`repro.sensors.emulator` -- the trace-playback sensor used by the
  paper to evaluate the particle filter (§3.2);
* :mod:`repro.sensors.trajectory` -- ground-truth trajectories that drive
  all of the above.
"""

from repro.sensors.base import SensorReading, SimulatedSensor
from repro.sensors.trajectory import Trajectory, WaypointTrajectory

__all__ = [
    "SensorReading",
    "SimulatedSensor",
    "Trajectory",
    "WaypointTrajectory",
]
