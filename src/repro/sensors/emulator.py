"""Trace recording and the emulator sensor (system S5).

Paper §3.2: *"we used some previously recorded sensor data and fed it into
our PerPos middleware ... using an emulator component that reads sensor
data from a file and presents itself as a sensor."*  This module is that
component's substrate: a serialisation format for sensor readings and an
:class:`EmulatorSensor` that replays them indistinguishably from the live
device -- same reading envelopes, same timing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, List, Optional, Sequence, Union

from repro.sensors.base import SensorReading, SimulatedSensor
from repro.sensors.inertial import AccelerometerReading
from repro.sensors.wifi import WifiObservation, WifiScan


def _encode_payload(payload: Any) -> dict:
    """Encode a reading payload to a JSON-safe tagged dict."""
    if isinstance(payload, str):
        return {"kind": "str", "value": payload}
    if isinstance(payload, WifiScan):
        return {
            "kind": "wifi-scan",
            "timestamp": payload.timestamp,
            "observations": [
                [o.bssid, o.rssi_dbm] for o in payload.observations
            ],
        }
    if isinstance(payload, AccelerometerReading):
        return {
            "kind": "accel",
            "timestamp": payload.timestamp,
            "variance": payload.variance,
        }
    if isinstance(payload, (int, float, bool)) or payload is None:
        return {"kind": "scalar", "value": payload}
    if isinstance(payload, (list, dict)):
        return {"kind": "json", "value": payload}
    raise TypeError(f"cannot serialise payload of type {type(payload)!r}")


def _decode_payload(blob: dict) -> Any:
    kind = blob.get("kind")
    if kind in ("str", "scalar", "json"):
        return blob["value"]
    if kind == "wifi-scan":
        return WifiScan(
            timestamp=blob["timestamp"],
            observations=tuple(
                WifiObservation(bssid, rssi)
                for bssid, rssi in blob["observations"]
            ),
        )
    if kind == "accel":
        return AccelerometerReading(blob["timestamp"], blob["variance"])
    raise ValueError(f"unknown payload kind {kind!r}")


def reading_to_json(reading: SensorReading) -> str:
    """One reading as a single JSON line."""
    return json.dumps(
        {
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp,
            "payload": _encode_payload(reading.payload),
            "attributes": dict(reading.attributes),
        },
        sort_keys=True,
    )


def reading_from_json(line: str) -> SensorReading:
    """Decode one JSON line back into a reading."""
    blob = json.loads(line)
    return SensorReading(
        sensor_id=blob["sensor_id"],
        timestamp=blob["timestamp"],
        payload=_decode_payload(blob["payload"]),
        attributes=blob.get("attributes", {}),
    )


def record_trace(
    readings: Iterable[SensorReading], path: Union[str, Path]
) -> int:
    """Write readings to a JSONL trace file; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for reading in readings:
            fh.write(reading_to_json(reading) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[SensorReading]:
    """Load a JSONL trace file into memory."""
    readings = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                readings.append(reading_from_json(line))
    return readings


class EmulatorSensor(SimulatedSensor):
    """Replays a recorded trace, presenting itself as the original sensor.

    The emulator is plugged into the processing graph *in the place of*
    the live sensor: it reports the recorded readings at their recorded
    timestamps (optionally shifted/speeded), under the recorded sensor id
    unless overridden.
    """

    def __init__(
        self,
        readings: Sequence[SensorReading],
        sensor_id: Optional[str] = None,
        time_offset: float = 0.0,
        speedup: float = 1.0,
    ) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        ordered = sorted(readings, key=lambda r: r.timestamp)
        inferred = (
            sensor_id
            if sensor_id is not None
            else (ordered[0].sensor_id if ordered else "emulator")
        )
        super().__init__(inferred)
        self._readings = ordered
        self._offset = time_offset
        self._speedup = speedup
        self._cursor = 0

    @classmethod
    def from_file(
        cls, path: Union[str, Path], **kwargs: Any
    ) -> "EmulatorSensor":
        return cls(load_trace(path), **kwargs)

    def describe(self) -> dict:
        return {
            "sensor_id": self.sensor_id,
            "type": "EmulatorSensor",
            "technology": "emulated",
            "readings": len(self._readings),
        }

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._readings)

    def sample(self, now: float) -> List[SensorReading]:
        """Emit every recorded reading due at or before ``now``."""
        due: List[SensorReading] = []
        while self._cursor < len(self._readings):
            original = self._readings[self._cursor]
            replay_time = self._offset + (
                original.timestamp / self._speedup
            )
            if replay_time > now:
                break
            due.append(
                SensorReading(
                    sensor_id=self.sensor_id,
                    timestamp=replay_time,
                    payload=original.payload,
                    attributes=original.attributes,
                )
            )
            self._cursor += 1
        return due

    def rewind(self) -> None:
        """Reset playback to the start of the trace."""
        self._cursor = 0
