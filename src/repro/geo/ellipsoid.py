"""The WGS84 reference ellipsoid and Earth-centred Earth-fixed coordinates.

ECEF is the hub frame for exact conversions: geodetic positions convert to
ECEF and from there into any local tangent-plane frame
(:mod:`repro.geo.enu`).  The closed-form geodetic->ECEF conversion and
Bowring's method for the inverse are implemented here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.wgs84 import Wgs84Position


@dataclass(frozen=True)
class Ellipsoid:
    """A reference ellipsoid defined by semi-major axis and flattening."""

    name: str
    semi_major_m: float
    inverse_flattening: float

    @property
    def flattening(self) -> float:
        return 1.0 / self.inverse_flattening

    @property
    def semi_minor_m(self) -> float:
        return self.semi_major_m * (1.0 - self.flattening)

    @property
    def eccentricity_sq(self) -> float:
        f = self.flattening
        return f * (2.0 - f)

    def prime_vertical_radius(self, latitude_rad: float) -> float:
        """Radius of curvature in the prime vertical, N(phi)."""
        s = math.sin(latitude_rad)
        return self.semi_major_m / math.sqrt(
            1.0 - self.eccentricity_sq * s * s
        )


#: The WGS84 ellipsoid (NIMA TR8350.2 defining parameters).
WGS84_ELLIPSOID = Ellipsoid(
    name="WGS84", semi_major_m=6_378_137.0, inverse_flattening=298.257223563
)


@dataclass(frozen=True)
class EcefPosition:
    """A position in the Earth-centred, Earth-fixed Cartesian frame."""

    x_m: float
    y_m: float
    z_m: float

    @classmethod
    def from_geodetic(
        cls, position: Wgs84Position, ellipsoid: Ellipsoid = WGS84_ELLIPSOID
    ) -> "EcefPosition":
        """Closed-form geodetic to ECEF conversion."""
        phi = math.radians(position.latitude_deg)
        lam = math.radians(position.longitude_deg)
        h = position.altitude_m
        n = ellipsoid.prime_vertical_radius(phi)
        x = (n + h) * math.cos(phi) * math.cos(lam)
        y = (n + h) * math.cos(phi) * math.sin(lam)
        z = (n * (1.0 - ellipsoid.eccentricity_sq) + h) * math.sin(phi)
        return cls(x, y, z)

    def to_geodetic(
        self, ellipsoid: Ellipsoid = WGS84_ELLIPSOID
    ) -> Wgs84Position:
        """ECEF to geodetic via Bowring's single-iteration method.

        Accurate to well below a millimetre for terrestrial altitudes,
        which is far beyond the needs of a positioning middleware.
        """
        a = ellipsoid.semi_major_m
        b = ellipsoid.semi_minor_m
        e2 = ellipsoid.eccentricity_sq
        ep2 = (a * a - b * b) / (b * b)
        p = math.hypot(self.x_m, self.y_m)
        if p < 1e-9:
            # On the polar axis: longitude is degenerate, pick 0.
            lat = math.copysign(math.pi / 2.0, self.z_m)
            alt = abs(self.z_m) - b
            return Wgs84Position(math.degrees(lat), 0.0, alt)
        theta = math.atan2(self.z_m * a, p * b)
        lat = math.atan2(
            self.z_m + ep2 * b * math.sin(theta) ** 3,
            p - e2 * a * math.cos(theta) ** 3,
        )
        lon = math.atan2(self.y_m, self.x_m)
        n = ellipsoid.prime_vertical_radius(lat)
        alt = p / math.cos(lat) - n
        return Wgs84Position(math.degrees(lat), math.degrees(lon), alt)

    def distance_to(self, other: "EcefPosition") -> float:
        """Straight-line (chord) distance in metres."""
        return math.sqrt(
            (self.x_m - other.x_m) ** 2
            + (self.y_m - other.y_m) ** 2
            + (self.z_m - other.z_m) ** 2
        )
