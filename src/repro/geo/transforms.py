"""A registry of named reference systems and conversions between them.

PerPos "encapsulates ... the conversion between various coordinate
systems" (paper §1).  Processing components declare the reference system
of the positions they produce; when an application requests positions in a
different system the middleware inserts a conversion.  The registry stores
direct conversion functions between named systems and composes them along
the shortest path when no direct conversion exists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple


class TransformError(Exception):
    """No conversion path exists between two reference systems."""


@dataclass(frozen=True)
class ReferenceSystem:
    """A named coordinate reference system.

    ``kind`` is a coarse category ("geodetic", "local", "symbolic") used by
    components to sanity-check their inputs; equality is by name only so
    that independently constructed descriptions of the same system match.
    """

    name: str
    kind: str = "geodetic"
    metadata: Tuple[Tuple[str, Any], ...] = field(default=(), compare=False)

    def __str__(self) -> str:
        return self.name


class TransformRegistry:
    """Registry of conversions between reference systems.

    Conversions are unary callables.  ``convert`` composes registered
    conversions along a breadth-first shortest path, so registering
    WGS84<->ENU and ENU<->grid is enough to convert WGS84->grid.
    """

    def __init__(self) -> None:
        self._edges: Dict[str, Dict[str, Callable[[Any], Any]]] = {}

    def register(
        self,
        source: ReferenceSystem,
        target: ReferenceSystem,
        forward: Callable[[Any], Any],
        inverse: Callable[[Any], Any] = None,
    ) -> None:
        """Register a conversion, and optionally its inverse."""
        self._edges.setdefault(source.name, {})[target.name] = forward
        if inverse is not None:
            self._edges.setdefault(target.name, {})[source.name] = inverse

    def systems(self) -> List[str]:
        """Names of all systems that appear in any registered conversion."""
        names = set(self._edges)
        for targets in self._edges.values():
            names.update(targets)
        return sorted(names)

    def path(self, source: str, target: str) -> List[str]:
        """Shortest conversion path as a list of system names.

        Raises :class:`TransformError` when the systems are not connected.
        """
        if source == target:
            return [source]
        visited = {source}
        queue = deque([[source]])
        while queue:
            route = queue.popleft()
            for nxt in self._edges.get(route[-1], {}):
                if nxt in visited:
                    continue
                if nxt == target:
                    return route + [nxt]
                visited.add(nxt)
                queue.append(route + [nxt])
        raise TransformError(f"no conversion path {source!r} -> {target!r}")

    def convert(self, value: Any, source: str, target: str) -> Any:
        """Convert ``value`` from ``source`` to ``target`` coordinates."""
        route = self.path(source, target)
        for here, there in zip(route, route[1:]):
            value = self._edges[here][there](value)
        return value

    def converter(self, source: str, target: str) -> Callable[[Any], Any]:
        """Return a composed conversion callable (path resolved eagerly)."""
        route = self.path(source, target)
        steps = [
            self._edges[here][there]
            for here, there in zip(route, route[1:])
        ]

        def _convert(value: Any) -> Any:
            for step in steps:
                value = step(value)
            return value

        return _convert
