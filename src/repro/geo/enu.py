"""Local tangent-plane (east/north/up) frames.

Indoor positioning components in the reproduction -- the building model,
the WiFi positioning engine, and the particle filter -- work in a metric
local frame anchored at a reference geodetic point.  :class:`EnuFrame`
provides exact conversions between WGS84 and that frame via ECEF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.ellipsoid import EcefPosition, WGS84_ELLIPSOID, Ellipsoid
from repro.geo.wgs84 import Wgs84Position


@dataclass(frozen=True)
class EnuPosition:
    """Cartesian coordinates in a local east/north/up frame, metres."""

    east_m: float
    north_m: float
    up_m: float = 0.0

    def distance_to(self, other: "EnuPosition") -> float:
        return math.sqrt(
            (self.east_m - other.east_m) ** 2
            + (self.north_m - other.north_m) ** 2
            + (self.up_m - other.up_m) ** 2
        )

    def horizontal_distance_to(self, other: "EnuPosition") -> float:
        return math.hypot(
            self.east_m - other.east_m, self.north_m - other.north_m
        )


class EnuFrame:
    """A local tangent plane anchored at a geodetic origin.

    The rotation matrix from ECEF deltas to ENU coordinates is computed
    once at construction; conversions are then two matrix products plus an
    ECEF conversion.
    """

    def __init__(
        self,
        origin: Wgs84Position,
        ellipsoid: Ellipsoid = WGS84_ELLIPSOID,
    ) -> None:
        self.origin = origin
        self._ellipsoid = ellipsoid
        self._origin_ecef = EcefPosition.from_geodetic(origin, ellipsoid)
        phi = math.radians(origin.latitude_deg)
        lam = math.radians(origin.longitude_deg)
        sp, cp = math.sin(phi), math.cos(phi)
        sl, cl = math.sin(lam), math.cos(lam)
        # Rows are the ENU basis vectors expressed in ECEF.
        self._rot = (
            (-sl, cl, 0.0),
            (-sp * cl, -sp * sl, cp),
            (cp * cl, cp * sl, sp),
        )

    def __repr__(self) -> str:
        return (
            f"EnuFrame(origin=({self.origin.latitude_deg:.6f}, "
            f"{self.origin.longitude_deg:.6f}))"
        )

    def to_enu(self, position: Wgs84Position) -> EnuPosition:
        """Convert a geodetic position into this frame."""
        ecef = EcefPosition.from_geodetic(position, self._ellipsoid)
        dx = ecef.x_m - self._origin_ecef.x_m
        dy = ecef.y_m - self._origin_ecef.y_m
        dz = ecef.z_m - self._origin_ecef.z_m
        r = self._rot
        return EnuPosition(
            east_m=r[0][0] * dx + r[0][1] * dy + r[0][2] * dz,
            north_m=r[1][0] * dx + r[1][1] * dy + r[1][2] * dz,
            up_m=r[2][0] * dx + r[2][1] * dy + r[2][2] * dz,
        )

    def to_wgs84(self, position: EnuPosition) -> Wgs84Position:
        """Convert local coordinates back to a geodetic position."""
        r = self._rot
        e, n, u = position.east_m, position.north_m, position.up_m
        # The rotation is orthonormal, so the inverse is the transpose.
        dx = r[0][0] * e + r[1][0] * n + r[2][0] * u
        dy = r[0][1] * e + r[1][1] * n + r[2][1] * u
        dz = r[0][2] * e + r[1][2] * n + r[2][2] * u
        ecef = EcefPosition(
            self._origin_ecef.x_m + dx,
            self._origin_ecef.y_m + dy,
            self._origin_ecef.z_m + dz,
        )
        return ecef.to_geodetic(self._ellipsoid)
