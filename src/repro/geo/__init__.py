"""Coordinate substrate for the PerPos reproduction (system S1 in DESIGN.md).

The PerPos middleware moves position data between several reference systems:
raw sensor output lives in device- or building-local frames, the Interpreter
component produces WGS84 geodetic positions (paper Fig. 1), and the Resolver
maps positions into symbolic building space.  This package provides those
reference systems and the conversions between them:

* :mod:`repro.geo.wgs84` -- geodetic positions, great-circle geometry;
* :mod:`repro.geo.ellipsoid` -- the WGS84 ellipsoid and ECEF conversion;
* :mod:`repro.geo.enu` -- local tangent-plane (east/north/up) frames;
* :mod:`repro.geo.grid` -- affine building-local grids;
* :mod:`repro.geo.transforms` -- a registry that finds conversion paths
  between named reference systems.
"""

from repro.geo.wgs84 import (
    EARTH_RADIUS_M,
    Wgs84Position,
    destination_point,
    haversine_m,
    initial_bearing_deg,
)
from repro.geo.ellipsoid import WGS84_ELLIPSOID, EcefPosition, Ellipsoid
from repro.geo.enu import EnuFrame, EnuPosition
from repro.geo.grid import GridPosition, LocalGrid
from repro.geo.transforms import (
    ReferenceSystem,
    TransformError,
    TransformRegistry,
)

__all__ = [
    "EARTH_RADIUS_M",
    "Wgs84Position",
    "haversine_m",
    "initial_bearing_deg",
    "destination_point",
    "Ellipsoid",
    "WGS84_ELLIPSOID",
    "EcefPosition",
    "EnuFrame",
    "EnuPosition",
    "LocalGrid",
    "GridPosition",
    "ReferenceSystem",
    "TransformRegistry",
    "TransformError",
]
