"""WGS84 geodetic positions and spherical geometry.

The Interpreter component of the paper's example pipeline (Fig. 1) turns
NMEA measurements into "Positions (WGS84)".  This module provides the
position value type and the great-circle geometry used throughout the
reproduction: distances for error metrics, bearings and destination points
for trace generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Mean Earth radius in metres (IUGG), used for spherical approximations.
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class Wgs84Position:
    """A geodetic position on the WGS84 datum.

    Parameters
    ----------
    latitude_deg:
        Geodetic latitude in decimal degrees, in ``[-90, 90]``.
    longitude_deg:
        Longitude in decimal degrees, normalised to ``(-180, 180]``.
    altitude_m:
        Height above the ellipsoid in metres.
    accuracy_m:
        Optional 1-sigma horizontal accuracy estimate in metres.  ``None``
        means the producing sensor offered no estimate.
    timestamp:
        Optional wall-clock time of the fix, in seconds.
    """

    latitude_deg: float
    longitude_deg: float
    altitude_m: float = 0.0
    accuracy_m: Optional[float] = None
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(
                f"latitude {self.latitude_deg} outside [-90, 90]"
            )
        if math.isnan(self.longitude_deg):
            raise ValueError("longitude is NaN")
        lon = _normalise_longitude(self.longitude_deg)
        object.__setattr__(self, "longitude_deg", lon)
        if self.accuracy_m is not None and self.accuracy_m < 0:
            raise ValueError(f"negative accuracy {self.accuracy_m}")

    def distance_to(self, other: "Wgs84Position") -> float:
        """Great-circle distance to ``other`` in metres."""
        return haversine_m(
            self.latitude_deg,
            self.longitude_deg,
            other.latitude_deg,
            other.longitude_deg,
        )

    def bearing_to(self, other: "Wgs84Position") -> float:
        """Initial great-circle bearing towards ``other`` in degrees."""
        return initial_bearing_deg(
            self.latitude_deg,
            self.longitude_deg,
            other.latitude_deg,
            other.longitude_deg,
        )

    def moved(self, bearing_deg: float, distance_m: float) -> "Wgs84Position":
        """Return the position ``distance_m`` along ``bearing_deg``."""
        lat, lon = destination_point(
            self.latitude_deg, self.longitude_deg, bearing_deg, distance_m
        )
        return Wgs84Position(
            lat, lon, self.altitude_m, self.accuracy_m, self.timestamp
        )


def _normalise_longitude(lon: float) -> float:
    """Fold a longitude into ``(-180, 180]``."""
    lon = math.fmod(lon, 360.0)
    if lon > 180.0:
        lon -= 360.0
    elif lon <= -180.0:
        lon += 360.0
    return lon


def haversine_m(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Great-circle distance between two points, in metres.

    Uses the haversine formulation, numerically stable for the short
    distances that dominate indoor positioning workloads.
    """
    phi1 = math.radians(lat1_deg)
    phi2 = math.radians(lat2_deg)
    dphi = math.radians(lat2_deg - lat1_deg)
    dlam = math.radians(lon2_deg - lon1_deg)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def initial_bearing_deg(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Initial bearing from point 1 to point 2, degrees in ``[0, 360)``."""
    phi1 = math.radians(lat1_deg)
    phi2 = math.radians(lat2_deg)
    dlam = math.radians(lon2_deg - lon1_deg)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(
        phi2
    ) * math.cos(dlam)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(
    lat_deg: float, lon_deg: float, bearing_deg: float, distance_m: float
) -> "tuple[float, float]":
    """Point reached travelling ``distance_m`` along ``bearing_deg``.

    Returns ``(latitude_deg, longitude_deg)`` on the spherical Earth model.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat_deg)
    lam1 = math.radians(lon_deg)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    return math.degrees(phi2), _normalise_longitude(math.degrees(lam2))
