"""Affine building-local grids.

The paper's Fig. 1 shows the WiFi positioning system delivering "raw data
(local coordinate system)".  Real deployments express indoor positions in
a building grid -- metres along the building's own axes, which are usually
rotated relative to true north.  :class:`LocalGrid` models such a grid as a
rotation + translation on top of an ENU frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.enu import EnuFrame, EnuPosition
from repro.geo.wgs84 import Wgs84Position


@dataclass(frozen=True)
class GridPosition:
    """Coordinates in a building-local grid, metres."""

    x_m: float
    y_m: float
    floor: int = 0

    def distance_to(self, other: "GridPosition") -> float:
        return math.hypot(self.x_m - other.x_m, self.y_m - other.y_m)


class LocalGrid:
    """A building grid: an ENU frame rotated by the building azimuth.

    Parameters
    ----------
    origin:
        WGS84 position of the grid origin (building corner).
    rotation_deg:
        Azimuth of the grid's y axis measured clockwise from true north.
        ``0`` means grid-y points north and grid-x points east.
    floor_height_m:
        Vertical distance between consecutive floors, used to map the ENU
        "up" coordinate onto integer floor numbers.
    """

    def __init__(
        self,
        origin: Wgs84Position,
        rotation_deg: float = 0.0,
        floor_height_m: float = 3.0,
    ) -> None:
        if floor_height_m <= 0:
            raise ValueError("floor_height_m must be positive")
        self.origin = origin
        self.rotation_deg = rotation_deg % 360.0
        self.floor_height_m = floor_height_m
        self._frame = EnuFrame(origin)
        theta = math.radians(self.rotation_deg)
        self._cos = math.cos(theta)
        self._sin = math.sin(theta)

    def to_grid(self, position: Wgs84Position) -> GridPosition:
        """Project a geodetic position into grid coordinates."""
        enu = self._frame.to_enu(position)
        x = self._cos * enu.east_m - self._sin * enu.north_m
        y = self._sin * enu.east_m + self._cos * enu.north_m
        floor = int(math.floor(enu.up_m / self.floor_height_m + 0.5))
        return GridPosition(x, y, floor)

    def to_wgs84(self, position: GridPosition) -> Wgs84Position:
        """Lift grid coordinates back to a geodetic position."""
        east = self._cos * position.x_m + self._sin * position.y_m
        north = -self._sin * position.x_m + self._cos * position.y_m
        up = position.floor * self.floor_height_m
        return self._frame.to_wgs84(EnuPosition(east, north, up))
