"""Placement policies: which shard owns which tracked target.

RAFDA's core argument (PAPERS.md) is that *distribution policy must be
separable from application logic*: how computation is spread over
workers is a deployment decision, not something baked into component
code.  The sharded runtime follows that rule -- the
:class:`~repro.runtime.sharding.ShardedEngine` never decides placement
itself; it asks a :class:`PlacementPolicy` object, which is swappable,
inspectable (``describe()``), and independent of every processing
component.

Three policies ship:

:class:`ConsistentHashPlacement`
    The default.  Shards are mapped onto a hash ring via ``replicas``
    virtual nodes each; a target goes to the first ring point at or
    after its own hash.  Growing N shards to N+1 relocates only the
    targets whose ring arc the new shard captures -- in expectation
    ``K / (N + 1)`` of K targets, never a full reshuffle.  The hash is
    :func:`hashlib.blake2b` (stable across processes and Python
    versions, unlike built-in ``hash``), so placement is reproducible
    and identical in every worker process.
:class:`ModuloPlacement`
    The naive contrast: ``hash(target) % shards``.  Cheapest possible
    lookup, but resizing relocates almost everything -- kept as the
    reference point the consistent-hash property test measures against.
:class:`PinnedPlacement`
    An explicit-pin override wrapping any base policy: operators pin
    specific targets to specific shards (a VIP on a reserved shard, a
    debug target on shard 0) and everything unpinned falls through to
    the base policy.  Pins are runtime-mutable -- placement adaptation
    through the same kind of reflective seam the PSL gives structure.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
from typing import Dict, List, Optional, Tuple


class PlacementError(Exception):
    """Raised on invalid placement configuration or use."""


def stable_hash(key: str) -> int:
    """A process- and version-stable 64-bit hash of ``key``.

    Built-in ``hash`` is randomised per interpreter (PYTHONHASHSEED),
    which would make placement differ between the coordinator and its
    worker processes; placement must be a pure function of the key.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class PlacementPolicy(abc.ABC):
    """Maps a target id to a shard index, given the shard count."""

    @abc.abstractmethod
    def place(self, target_id: str, shard_count: int) -> int:
        """Return the owning shard index in ``[0, shard_count)``."""

    def describe(self) -> Dict[str, object]:
        """Reflective summary for the coordinator snapshot / report."""
        return {"type": type(self).__name__}

    def _check_count(self, shard_count: int) -> None:
        if shard_count < 1:
            raise PlacementError("shard_count must be >= 1")


class ConsistentHashPlacement(PlacementPolicy):
    """Hash-ring placement with virtual nodes (the default policy).

    ``replicas`` virtual nodes per shard smooth the ring: more replicas
    mean a more even target spread and a relocation fraction closer to
    the ideal ``1 / (N + 1)`` on resize, at the cost of a larger (still
    tiny) ring.  Rings are built lazily per shard count and memoised --
    placement is read-heavy and resize-rare.
    """

    def __init__(self, replicas: int = 128) -> None:
        if replicas < 1:
            raise PlacementError("replicas must be >= 1")
        self.replicas = replicas
        self._rings: Dict[int, Tuple[List[int], List[int]]] = {}

    def _ring(self, shard_count: int) -> Tuple[List[int], List[int]]:
        ring = self._rings.get(shard_count)
        if ring is None:
            points: List[Tuple[int, int]] = []
            for shard in range(shard_count):
                for replica in range(self.replicas):
                    points.append(
                        (stable_hash(f"shard:{shard}:vnode:{replica}"), shard)
                    )
            points.sort()
            ring = ([h for h, _ in points], [s for _, s in points])
            self._rings[shard_count] = ring
        return ring

    def place(self, target_id: str, shard_count: int) -> int:
        self._check_count(shard_count)
        if shard_count == 1:
            return 0
        hashes, shards = self._ring(shard_count)
        index = bisect.bisect_right(hashes, stable_hash(target_id))
        if index == len(hashes):  # wrap past the last ring point
            index = 0
        return shards[index]

    def describe(self) -> Dict[str, object]:
        return {"type": type(self).__name__, "replicas": self.replicas}


class ModuloPlacement(PlacementPolicy):
    """``stable_hash(target) % shards`` -- cheap, resize-hostile."""

    def place(self, target_id: str, shard_count: int) -> int:
        self._check_count(shard_count)
        return stable_hash(target_id) % shard_count


class PinnedPlacement(PlacementPolicy):
    """Explicit pins over a base policy (consistent hashing by default).

    ``pins`` maps target ids to shard indexes; :meth:`pin` / :meth:`unpin`
    mutate the table at runtime.  A pin outside ``[0, shard_count)`` is a
    configuration error surfaced at :meth:`place` time, when the shard
    count is known.
    """

    def __init__(
        self,
        base: Optional[PlacementPolicy] = None,
        pins: Optional[Dict[str, int]] = None,
    ) -> None:
        self.base = base or ConsistentHashPlacement()
        self._pins: Dict[str, int] = dict(pins or {})

    def pin(self, target_id: str, shard: int) -> None:
        """Pin ``target_id`` to ``shard`` (overrides the base policy)."""
        if shard < 0:
            raise PlacementError("shard index must be >= 0")
        self._pins[target_id] = shard

    def unpin(self, target_id: str) -> int:
        """Drop a pin; the target falls back to the base policy."""
        try:
            return self._pins.pop(target_id)
        except KeyError:
            raise PlacementError(f"target {target_id!r} is not pinned") from None

    def pins(self) -> Dict[str, int]:
        """The current pin table (a copy)."""
        return dict(self._pins)

    def place(self, target_id: str, shard_count: int) -> int:
        self._check_count(shard_count)
        pinned = self._pins.get(target_id)
        if pinned is None:
            return self.base.place(target_id, shard_count)
        if pinned >= shard_count:
            raise PlacementError(
                f"target {target_id!r} pinned to shard {pinned}, but only"
                f" {shard_count} shards exist"
            )
        return pinned

    def describe(self) -> Dict[str, object]:
        return {
            "type": type(self).__name__,
            "pins": dict(self._pins),
            "base": self.base.describe(),
        }
