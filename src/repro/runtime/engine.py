"""The PositioningEngine: multi-target scale-out over shared graphs.

Paper §2.3 defines tracked targets; the seed tracked each
:class:`~repro.core.positioning.Target` with no notion of concurrent
load.  The engine closes that gap in middleware style (OpenHPS
multiplexes many tracked objects through one process network; RAFDA
separates scale policy from application logic): many targets share one
processing graph, each behind its own bounded ingestion lane, and a
deterministic fair scheduler drains those lanes into the graph through
the batched dispatch path.

One **lane** per tracked target (or per target x source): an
:class:`~repro.runtime.queues.IngestionQueue` plus the
:class:`~repro.core.component.SourceComponent` its datums enter through.
Producers call :meth:`PositioningEngine.submit`; nothing touches the
graph until the scheduler's next round, when each lane's pending batch
crosses ``source.inject_batch`` -- route resolution amortised per batch,
per-route FIFO order preserved, supervision/observability semantics
intact (see :meth:`~repro.core.graph.ProcessingGraph.route_batch`).

The engine is itself translucent: ``graph.set_engine`` makes lane
policies, depths, and drop counters reachable from
``psl.describe()`` / ``psl.ingestion_lanes()``, adaptable via
``psl.set_backpressure()``, visible in the infrastructure report, and
exported as hub gauges (``queue_depth{target=...}``) while
observability is enabled.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Union,
)

from repro.core.component import SourceComponent
from repro.core.data import Datum
from repro.runtime.queues import DROP_OLDEST, IngestionQueue
from repro.runtime.scheduler import FairScheduler, RoundRobinScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.clock import SimulationClock
    from repro.core.graph import ProcessingGraph
    from repro.durability.journal import DurabilityJournal
    from repro.durability.store import StateStore


class EngineError(Exception):
    """Raised on invalid engine configuration or use."""


class TargetLane:
    """One tracked target's ingestion lane into the shared graph."""

    __slots__ = ("target_id", "source", "queue", "weight", "submitted", "batches")

    def __init__(
        self,
        target_id: str,
        source: SourceComponent,
        queue: IngestionQueue,
        weight: int = 1,
    ) -> None:
        self.target_id = target_id
        self.source = source
        self.queue = queue
        self.weight = weight
        self.submitted = 0
        self.batches = 0

    def stats(self) -> Dict[str, Any]:
        """Reflective summary: queue state plus lane throughput."""
        stats = self.queue.stats()
        stats.update(
            target=self.target_id,
            source=self.source.name,
            weight=self.weight,
            submitted=self.submitted,
            batches=self.batches,
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"TargetLane(target={self.target_id!r},"
            f" source={self.source.name!r}, depth={self.queue.depth})"
        )


class PositioningEngine:
    """Multiplexes tracked targets over one graph via batched dispatch.

    Parameters
    ----------
    graph:
        The shared processing graph; the engine registers itself via
        ``graph.set_engine`` so the PSL and report can reach it.
    clock:
        Simulation clock for :meth:`start`'s periodic drain rounds.
        Optional -- :meth:`drain_round` / :meth:`drain_all` work
        without one.
    scheduler:
        Fairness policy; :class:`RoundRobinScheduler` by default.
    stamp_targets:
        Whether :meth:`submit` annotates each datum with its lane's
        ``target`` id, so applications can demultiplex at shared sinks.
    """

    def __init__(
        self,
        graph: "ProcessingGraph",
        clock: Optional["SimulationClock"] = None,
        scheduler: Optional[FairScheduler] = None,
        *,
        stamp_targets: bool = True,
    ) -> None:
        self.graph = graph
        self.clock = clock
        self.scheduler = scheduler or RoundRobinScheduler()
        self.stamp_targets = stamp_targets
        self._lanes: Dict[str, TargetLane] = {}
        self._lane_list: List[TargetLane] = []
        self._cancel: Optional[Callable[[], None]] = None
        self.rounds = 0
        self.drained_total = 0
        #: Times :meth:`drain_all` exhausted ``max_rounds`` with datums
        #: still pending; ``last_drain_truncated`` latches until the
        #: next *successful* drain.  Surfaced by :meth:`snapshot` so a
        #: coordinator never mistakes truncation for quiescence.
        self.truncations = 0
        self.last_drain_truncated = False
        #: Durability journal; attached by
        #: :class:`repro.durability.DurabilityManager`, None otherwise.
        #: While attached, every mutation (track/untrack/submit/drain/
        #: policy change) appends one store entry for crash replay.
        self.journal: Optional["DurabilityJournal"] = None
        graph.set_engine(self)

    # -- lane management -----------------------------------------------------

    def track(
        self,
        target: Union[str, Any],
        source: Union[str, SourceComponent],
        *,
        capacity: int = 64,
        policy: str = DROP_OLDEST,
        weight: int = 1,
    ) -> TargetLane:
        """Create an ingestion lane for ``target`` entering at ``source``.

        ``target`` is a target id or a
        :class:`~repro.core.positioning.Target` (whose lane binding is
        set, so ``target.queue_stats()`` works); ``source`` is a source
        component (or its name) already in the graph -- lanes may share
        one source or use one each.
        """
        target_id = getattr(target, "target_id", target)
        if not isinstance(target_id, str):
            raise EngineError(f"invalid target {target!r}")
        if target_id in self._lanes:
            raise EngineError(f"target {target_id!r} already tracked")
        if weight < 1:
            raise EngineError("weight must be >= 1")
        if isinstance(source, str):
            source = self.graph.component(source)  # type: ignore[assignment]
        if not isinstance(source, SourceComponent):
            raise EngineError(
                f"lane source must be a SourceComponent,"
                f" got {type(source).__name__}"
            )
        queue = IngestionQueue(f"lane:{target_id}", capacity=capacity, policy=policy)
        lane = TargetLane(target_id, source, queue, weight=weight)
        self._lanes[target_id] = lane
        self._lane_list.append(lane)
        attach = getattr(target, "attach_lane", None)
        if callable(attach):
            attach(lane)
        if self.journal is not None:
            self.journal.record_track(
                target_id, source.name, capacity, policy, weight
            )
        return lane

    def untrack(self, target_id: str) -> TargetLane:
        """Remove a lane; pending datums are discarded with it."""
        lane = self.lane(target_id)
        del self._lanes[target_id]
        self._lane_list.remove(lane)
        if self.journal is not None:
            self.journal.record_untrack(target_id)
        return lane

    def lane(self, target_id: str) -> TargetLane:
        """Look a lane up by target id."""
        try:
            return self._lanes[target_id]
        except KeyError:
            raise EngineError(f"no tracked target {target_id!r}") from None

    def is_tracked(self, target_id: str) -> bool:
        """Whether a lane exists for ``target_id`` (no-raise probe).

        The gateway's device-admission check: producers that must not
        fail on unknown targets probe here instead of catching
        :class:`EngineError` from :meth:`lane`.
        """
        return target_id in self._lanes

    def lanes(self) -> List[TargetLane]:
        """All lanes, in registration order (the scheduler's order)."""
        return list(self._lane_list)

    def lanes_for_source(self, source_name: str) -> List[TargetLane]:
        """Lanes whose datums enter the graph at ``source_name``."""
        return [lane for lane in self._lane_list if lane.source.name == source_name]

    # -- ingestion (producer side) -------------------------------------------

    def submit(self, target_id: str, datum: Datum) -> str:
        """Queue one datum for a tracked target; returns the verdict.

        The datum does *not* enter the graph here -- it waits in the
        lane's bounded queue for the scheduler's next round.  The
        verdict is the queue's backpressure decision
        (``accepted`` / ``coalesced`` / ``dropped`` / ``rejected``);
        a ``rejected`` verdict (``block`` policy) means the caller
        still owns the datum.
        """
        lane = self.lane(target_id)
        if self.stamp_targets and datum.attributes.get("target") != target_id:
            datum = datum.annotated(target=target_id)
        verdict = lane.queue.offer(datum)
        lane.submitted += 1
        # Journal *after* applying, so an auto-snapshot fired by this
        # append captures the post-offer state and the entry correctly
        # falls before it (replay would double-apply otherwise).
        if self.journal is not None:
            self.journal.record_submit(target_id, datum)
        hub = self.graph.instrumentation
        if hub is not None:
            hub.ingestion_event(target_id, verdict)
            hub.ingestion_depth(target_id, lane.queue.depth, lane.queue.dropped)
        return verdict

    # -- scheduling (consumer side) ------------------------------------------

    def drain_round(self) -> int:
        """Run one scheduler round; returns the number of datums routed.

        Each planned lane drains up to its quantum and the batch crosses
        the graph through ``source.inject_batch`` -- the batched
        dispatch path -- before the next lane runs, so per-lane FIFO
        order holds and fairness is exactly the scheduler's plan.
        """
        total = 0
        journal = self.journal
        lane_counts: List[Any] = []
        for lane, quantum in self.scheduler.plan(self._lane_list):
            batch = lane.queue.drain(quantum)
            if not batch:
                continue
            if journal is not None:
                lane_counts.append((lane.target_id, len(batch)))
            lane.source.inject_batch(batch)
            lane.batches += 1
            total += len(batch)
        self.rounds += 1
        self.drained_total += total
        if journal is not None and lane_counts:
            journal.record_drain(lane_counts)
        hub = self.graph.instrumentation
        if hub is not None:
            hub.scheduler_round(total)
            for lane in self._lane_list:
                hub.ingestion_depth(
                    lane.target_id, lane.queue.depth, lane.queue.dropped
                )
        return total

    def replay_round(self, lane_counts: List[Any]) -> int:
        """Re-execute one journaled drain round during crash recovery.

        ``lane_counts`` is the ``[(target_id, count), ...]`` list a
        previous run's :meth:`drain_round` journaled: exactly ``count``
        datums are popped from each named lane in the recorded order
        and injected through the batched dispatch path.  This
        reproduces the original routing independent of the *current*
        scheduler cursor, so restore does not have to reconstruct
        scheduler internals.
        """
        total = 0
        for target_id, count in lane_counts:
            lane = self._lanes.get(target_id)
            if lane is None:
                # The lane was untracked later in the journal; the
                # original round's effects on it are unreproducible
                # and irrelevant (its sink history died with it).
                continue
            batch = lane.queue.drain(count)
            if not batch:
                continue
            lane.source.inject_batch(batch)
            lane.batches += 1
            total += len(batch)
        self.rounds += 1
        self.drained_total += total
        hub = self.graph.instrumentation
        if hub is not None:
            hub.scheduler_round(total)
            for lane in self._lane_list:
                hub.ingestion_depth(
                    lane.target_id, lane.queue.depth, lane.queue.dropped
                )
        return total

    def drain_all(self, max_rounds: int = 1000) -> int:
        """Run rounds until every queue is empty; returns datums routed.

        ``max_rounds`` bounds the loop against a pathological scheduler
        (or a producer submitting from inside the graph).  Exhausting it
        with datums still pending is *truncation*, not quiescence: the
        ``truncations`` counter and the ``last_drain_truncated`` latch
        are set (both surfaced by :meth:`snapshot`), then
        :class:`EngineError` is raised carrying the pending depth -- a
        caller that swallows the exception still cannot mistake the
        engine for drained.
        """
        total = 0
        for _ in range(max_rounds):
            drained = self.drain_round()
            total += drained
            if not drained and not any(lane.queue.depth for lane in self._lane_list):
                self.last_drain_truncated = False
                return total
        if self.depth_total() == 0:
            # The queues emptied exactly on the last round: quiescence,
            # not truncation, even though the loop was exhausted.
            self.last_drain_truncated = False
            return total
        self.truncations += 1
        self.last_drain_truncated = True
        raise EngineError(
            f"queues not drained after {max_rounds} rounds:"
            f" {self.depth_total()} datums still pending"
            f" ({total} routed this call)"
        )

    def start(self, interval_s: float) -> Callable[[], None]:
        """Drain one round every ``interval_s`` simulated seconds.

        Returns the cancel callable (also wired to :meth:`stop`).
        Requires a clock; re-starting cancels the previous schedule.
        """
        if self.clock is None:
            raise EngineError("engine has no clock; pass one to start()")
        if interval_s <= 0:
            raise EngineError("interval must be positive")
        self.stop()
        self._cancel = self.clock.call_every(
            interval_s, lambda _now: self.drain_round()
        )
        return self._cancel

    def stop(self) -> None:
        """Cancel the periodic drain schedule, if one is running."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # -- adaptation (the PSL-facing seam) --------------------------------------

    def set_policy(
        self,
        target_id: str,
        *,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
        weight: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Adapt a lane's backpressure/fairness knobs at runtime.

        Any subset of ``policy`` / ``capacity`` / ``weight`` may be
        given; returns the lane's post-change stats.  This is what
        ``psl.set_backpressure`` calls -- scale policy manipulated
        through reflection, not redeployment.
        """
        lane = self.lane(target_id)
        if policy is not None:
            lane.queue.set_policy(policy)
        if capacity is not None:
            lane.queue.set_capacity(capacity)
        if weight is not None:
            if weight < 1:
                raise EngineError("weight must be >= 1")
            lane.weight = weight
        if self.journal is not None:
            self.journal.record_policy(target_id, policy, capacity, weight)
        return lane.stats()

    # -- durability (snapshot/restore + warm handoff) ---------------------------

    def export_lane(self, target_id: str) -> Dict[str, Any]:
        """Detach a lane for migration; returns its portable state.

        The lane is *removed* from this engine — that removal is the
        handoff barrier: no further submits or drains can touch it
        here, and every pending datum travels inside the payload, so
        :meth:`install_lane` on the destination loses nothing.
        """
        lane = self.lane(target_id)
        payload = {
            "target": target_id,
            "source": lane.source.name,
            "weight": lane.weight,
            "submitted": lane.submitted,
            "batches": lane.batches,
            "queue": lane.queue.state_snapshot(),
        }
        self.untrack(target_id)
        return payload

    def install_lane(self, payload: Dict[str, Any]) -> TargetLane:
        """Install a lane exported from another engine, state intact."""
        queue_state = payload["queue"]
        lane = self.track(
            payload["target"],
            payload["source"],
            capacity=queue_state["capacity"],
            policy=queue_state["policy"],
            weight=payload["weight"],
        )
        lane.queue.state_restore(queue_state)
        lane.submitted = payload["submitted"]
        lane.batches = payload["batches"]
        return lane

    def restore(self, store: "StateStore") -> int:
        """Rebuild this engine from ``store``'s latest snapshot + journal.

        Crash recovery in one call: lanes are re-tracked with their
        queue contents and counters, component/supervision/hub state is
        reinstated, and every journal entry appended after the snapshot
        is replayed deterministically.  Returns the number of replayed
        entries.  Raises :class:`EngineError` when the store is empty.
        """
        from repro.durability.manager import restore_from_store

        return restore_from_store(
            self.graph, self, store, gateway=self.graph.gateway
        )

    # -- inspection ------------------------------------------------------------

    def depth_total(self) -> int:
        """Datums currently pending across all lanes."""
        return sum(lane.queue.depth for lane in self._lane_list)

    def snapshot(self) -> Dict[str, Any]:
        """Full reflective summary for the infrastructure report."""
        return {
            "scheduler": self.scheduler.describe(),
            "rounds": self.rounds,
            "drained_total": self.drained_total,
            "pending": self.depth_total(),
            "running": self._cancel is not None,
            "truncations": self.truncations,
            "last_drain_truncated": self.last_drain_truncated,
            "lanes": {
                lane.target_id: lane.stats() for lane in self._lane_list
            },
            # The compiled dispatch plan the drains execute against --
            # carried here so shard snapshots (which serialise this
            # dict across the executor boundary) surface each shard's
            # private plan in the merged report.
            "plan": self.graph.plan_snapshot(),
        }
