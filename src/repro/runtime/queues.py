"""Bounded ingestion queues with pluggable backpressure policies.

The paper's middleware is push-synchronous: every sensor reading crosses
the whole processing graph before the next is admitted.  At "millions of
users" scale (ROADMAP north star) ingestion must instead absorb bursts
and shed load *by policy* -- and, in PerPos style, the policy must be an
inspectable, adaptable seam rather than a hard-coded behaviour (the
RAFDA argument: distribution/scale policy separable from application
logic).

An :class:`IngestionQueue` is a bounded FIFO of
:class:`~repro.core.data.Datum` with one of four backpressure policies:

``block``
    A full queue refuses new datums (:meth:`IngestionQueue.offer`
    returns ``REJECTED``); the producer keeps the datum and decides --
    the deterministic single-threaded analogue of blocking the caller.
``drop_oldest``
    A full queue evicts its oldest pending datum to admit the new one
    (freshness wins -- the usual choice for positioning fixes).
``drop_newest``
    A full queue drops the incoming datum (history wins).
``coalesce``
    An incoming datum *replaces* the newest pending datum of the same
    kind in place, so the queue holds at most the freshest reading per
    kind plus whatever other kinds are pending; on overflow with no
    same-kind entry it behaves like ``drop_oldest``.

Every decision is counted (``accepted`` / ``rejected`` /
``dropped_oldest`` / ``dropped_newest`` / ``coalesced``) and the depth
high-water mark is tracked, which is what the engine exports as hub
gauges and the PSL surfaces through ``describe()``.  Policies and
capacity are mutable at runtime (:meth:`set_policy` /
:meth:`set_capacity`) -- adaptation of the internal positioning process,
applied to its ingestion edge.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.core.data import Datum

#: Backpressure policy names.
BLOCK = "block"
DROP_OLDEST = "drop_oldest"
DROP_NEWEST = "drop_newest"
COALESCE = "coalesce"

POLICIES = (BLOCK, DROP_OLDEST, DROP_NEWEST, COALESCE)

#: Offer verdicts returned by :meth:`IngestionQueue.offer`.
ACCEPTED = "accepted"
REJECTED = "rejected"  # block: the producer keeps the datum
DROPPED = "dropped"  # drop_newest: the incoming datum was shed
COALESCED = "coalesced"  # coalesce: replaced a pending same-kind datum


class QueueError(Exception):
    """Raised on invalid queue configuration or use."""


class IngestionQueue:
    """A bounded, policy-governed FIFO feeding one ingestion lane."""

    def __init__(
        self,
        name: str,
        capacity: int = 64,
        policy: str = DROP_OLDEST,
    ) -> None:
        if capacity < 1:
            raise QueueError("capacity must be >= 1")
        _validate_policy(policy)
        self.name = name
        self._capacity = capacity
        self._policy = policy
        self._items: Deque[Datum] = deque()
        # Decision counters -- the backpressure seam indicators.
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.dropped_oldest = 0
        self.dropped_newest = 0
        self.coalesced = 0
        # Per-key (kind) collision counts under the coalesce policy:
        # how often an incoming datum replaced a pending same-kind one.
        # The total equals ``coalesced``; the breakdown shows *which*
        # kinds are racing, which the flat counter hides.
        self.coalesce_collisions: Dict[str, int] = {}
        self.drained = 0
        self.high_water = 0

    # -- configuration (the adaptation seam) -------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> str:
        return self._policy

    def set_policy(self, policy: str) -> str:
        """Swap the backpressure policy; returns the previous one."""
        _validate_policy(policy)
        previous = self._policy
        self._policy = policy
        return previous

    def set_capacity(self, capacity: int) -> int:
        """Re-bound the queue; shrinking evicts oldest pending datums."""
        if capacity < 1:
            raise QueueError("capacity must be >= 1")
        previous = self._capacity
        self._capacity = capacity
        items = self._items
        while len(items) > capacity:
            items.popleft()
            self.dropped_oldest += 1
        return previous

    # -- the producer side --------------------------------------------------

    def offer(self, datum: Datum) -> str:
        """Submit one datum; returns the policy's verdict.

        ``ACCEPTED`` means the datum is pending (possibly at the cost of
        an evicted older one, counted in ``dropped_oldest``);
        ``COALESCED`` means it replaced a pending same-kind datum;
        ``DROPPED`` and ``REJECTED`` mean it was shed -- the difference
        is who is told: ``rejected`` (``block``) signals the producer to
        retry, ``dropped`` (``drop_newest``) is silent shedding.
        """
        self.offered += 1
        items = self._items
        policy = self._policy
        if policy == COALESCE:
            kind = datum.kind
            for index in range(len(items) - 1, -1, -1):
                if items[index].kind == kind:
                    items[index] = datum
                    self.coalesced += 1
                    self.coalesce_collisions[kind] = (
                        self.coalesce_collisions.get(kind, 0) + 1
                    )
                    return COALESCED
        if len(items) >= self._capacity:
            if policy == BLOCK:
                self.rejected += 1
                return REJECTED
            if policy == DROP_NEWEST:
                self.dropped_newest += 1
                return DROPPED
            # DROP_OLDEST, and COALESCE overflowing on a new kind.
            items.popleft()
            self.dropped_oldest += 1
        items.append(datum)
        self.accepted += 1
        depth = len(items)
        if depth > self.high_water:
            self.high_water = depth
        return ACCEPTED

    # -- the scheduler side --------------------------------------------------

    def drain(self, max_items: Optional[int] = None) -> List[Datum]:
        """Pop up to ``max_items`` pending datums in FIFO order."""
        items = self._items
        if max_items is None or max_items >= len(items):
            batch = list(items)
            items.clear()
        else:
            if max_items <= 0:
                return []
            batch = [items.popleft() for _ in range(max_items)]
        self.drained += len(batch)
        return batch

    def peek(self) -> Optional[Datum]:
        """The oldest pending datum, or None while empty."""
        return self._items[0] if self._items else None

    def evictee(self) -> Optional[Datum]:
        """The datum ``drop_oldest`` would evict if offered now, or None.

        A single hot-path probe for producers (the ingestion gateway)
        that must recover the evicted datum -- e.g. to dead-letter it --
        before :meth:`offer` silently drops it.
        """
        if self._policy == DROP_OLDEST and len(self._items) >= self._capacity:
            return self._items[0]
        return None

    def clear(self) -> int:
        """Discard all pending datums; returns how many were discarded."""
        discarded = len(self._items)
        self._items.clear()
        self.dropped_oldest += discarded
        return discarded

    # -- inspection ----------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def dropped(self) -> int:
        """Total datums shed by backpressure (either end)."""
        return self.dropped_oldest + self.dropped_newest

    def stats(self) -> Dict[str, Any]:
        """Reflective summary -- what the PSL and the report surface."""
        return {
            "name": self.name,
            "policy": self._policy,
            "capacity": self._capacity,
            "depth": len(self._items),
            "high_water": self.high_water,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dropped_oldest": self.dropped_oldest,
            "dropped_newest": self.dropped_newest,
            "coalesced": self.coalesced,
            "coalesce_collisions": dict(self.coalesce_collisions),
            "drained": self.drained,
        }

    # -- durability ----------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Any]:
        """Full state for the durability seam: config, counters, datums.

        Pending datums are returned raw; the durability codec encodes
        them once for the whole engine snapshot.
        """
        return {
            "name": self.name,
            "capacity": self._capacity,
            "policy": self._policy,
            "items": list(self._items),
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dropped_oldest": self.dropped_oldest,
            "dropped_newest": self.dropped_newest,
            "coalesced": self.coalesced,
            "coalesce_collisions": dict(self.coalesce_collisions),
            "drained": self.drained,
            "high_water": self.high_water,
        }

    def state_restore(self, state: Dict[str, Any]) -> None:
        """Rebuild queue contents and counters from a snapshot."""
        _validate_policy(state["policy"])
        if state["capacity"] < 1:
            raise QueueError("capacity must be >= 1")
        self._capacity = state["capacity"]
        self._policy = state["policy"]
        self._items = deque(state["items"])
        self.offered = state["offered"]
        self.accepted = state["accepted"]
        self.rejected = state["rejected"]
        self.dropped_oldest = state["dropped_oldest"]
        self.dropped_newest = state["dropped_newest"]
        self.coalesced = state["coalesced"]
        self.coalesce_collisions = dict(state["coalesce_collisions"])
        self.drained = state["drained"]
        self.high_water = state["high_water"]

    def __repr__(self) -> str:
        return (
            f"IngestionQueue(name={self.name!r}, policy={self._policy!r},"
            f" depth={len(self._items)}/{self._capacity})"
        )


def _validate_policy(policy: str) -> None:
    if policy not in POLICIES:
        raise QueueError(
            f"unknown backpressure policy {policy!r};"
            f" expected one of {POLICIES}"
        )
