"""Multi-target scale-out runtime: engine, queues, schedulers, shards.

See :mod:`repro.runtime.engine` for the single-engine architecture and
:mod:`repro.runtime.sharding` for the multi-shard coordinator that
partitions targets across N engines behind a
:mod:`repro.runtime.placement` policy.
"""

from repro.runtime.engine import EngineError, PositioningEngine, TargetLane
from repro.runtime.placement import (
    ConsistentHashPlacement,
    ModuloPlacement,
    PinnedPlacement,
    PlacementError,
    PlacementPolicy,
    stable_hash,
)
from repro.runtime.queues import (
    ACCEPTED,
    BLOCK,
    COALESCE,
    COALESCED,
    DROP_NEWEST,
    DROP_OLDEST,
    DROPPED,
    IngestionQueue,
    POLICIES,
    QueueError,
    REJECTED,
)
from repro.runtime.scheduler import (
    FairScheduler,
    RoundRobinScheduler,
    SchedulerError,
    WeightedScheduler,
)
from repro.runtime.sharding import (
    EXECUTORS,
    IN_PROCESS,
    InProcessShard,
    MULTIPROCESSING,
    ProcessShard,
    SHARD_DEGRADED,
    SHARD_HEALTHY,
    ShardedEngine,
    ShardingError,
    ShardRemoteError,
)

__all__ = [
    "ACCEPTED",
    "BLOCK",
    "COALESCE",
    "COALESCED",
    "ConsistentHashPlacement",
    "DROPPED",
    "DROP_NEWEST",
    "DROP_OLDEST",
    "EXECUTORS",
    "EngineError",
    "FairScheduler",
    "IN_PROCESS",
    "InProcessShard",
    "IngestionQueue",
    "MULTIPROCESSING",
    "ModuloPlacement",
    "POLICIES",
    "PinnedPlacement",
    "PlacementError",
    "PlacementPolicy",
    "PositioningEngine",
    "ProcessShard",
    "QueueError",
    "REJECTED",
    "RoundRobinScheduler",
    "SHARD_DEGRADED",
    "SHARD_HEALTHY",
    "SchedulerError",
    "ShardRemoteError",
    "ShardedEngine",
    "ShardingError",
    "TargetLane",
    "WeightedScheduler",
    "stable_hash",
]
