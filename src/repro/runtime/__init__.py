"""Multi-target scale-out runtime: engine, ingestion queues, schedulers.

See :mod:`repro.runtime.engine` for the architecture overview.
"""

from repro.runtime.engine import EngineError, PositioningEngine, TargetLane
from repro.runtime.queues import (
    ACCEPTED,
    BLOCK,
    COALESCE,
    COALESCED,
    DROP_NEWEST,
    DROP_OLDEST,
    DROPPED,
    IngestionQueue,
    POLICIES,
    QueueError,
    REJECTED,
)
from repro.runtime.scheduler import (
    FairScheduler,
    RoundRobinScheduler,
    SchedulerError,
    WeightedScheduler,
)

__all__ = [
    "ACCEPTED",
    "BLOCK",
    "COALESCE",
    "COALESCED",
    "DROPPED",
    "DROP_NEWEST",
    "DROP_OLDEST",
    "EngineError",
    "FairScheduler",
    "IngestionQueue",
    "POLICIES",
    "PositioningEngine",
    "QueueError",
    "REJECTED",
    "RoundRobinScheduler",
    "SchedulerError",
    "TargetLane",
    "WeightedScheduler",
]
