"""Sharded multi-worker runtime: N engine shards behind one coordinator.

One :class:`~repro.runtime.engine.PositioningEngine` multiplexes many
targets over one graph in one interpreter; ``BENCH_scale.json`` shows
where that ceiling sits.  This module breaks it the middleware way: the
tracked-target population is *partitioned* across N independent engine
shards -- each shard owns a private processing graph built from a shared
**assembly recipe** -- and a :class:`ShardedEngine` coordinator fans
ingestion out, drives drain rounds, and merges every reflective surface
(metrics, component health, ingestion lanes, report snapshots) back into
one queryable facade, the coordinator/facade split of middleware-dt
(SNIPPETS.md Snippet 1).

Separations that matter:

* **Placement is policy, not code** (RAFDA): which shard owns a target
  is decided by a :class:`~repro.runtime.placement.PlacementPolicy`
  object -- consistent hashing by default, explicit pins as overrides --
  never by component logic or the coordinator itself.
* **Shards share a recipe, not a graph**: the recipe (any zero-argument
  callable returning a :class:`~repro.core.graph.ProcessingGraph` or an
  :class:`~repro.core.assembly.AutoAssembler`) is invoked once per
  shard, so shards are structural twins with fully independent state --
  no cross-shard locking, no shared mutable anything.
* **Failures stay inside their shard**: an exception escaping a shard's
  drain (a crashing component, an exhausted ``drain_all``) marks that
  shard *degraded* and is recorded; surviving shards keep draining and
  every merged surface stays renderable.  ``restore_shard`` readmits a
  healed shard.

Two executors share the coordinator logic:

``inprocess``
    Deterministic, simulated-clock, tier-1 testable.  Shards drain
    sequentially in shard order, so a run is bit-identical to a
    single-engine run partitioned the same way (the property pinned by
    ``tests/test_property_sharding.py``).
``multiprocessing``
    Real parallelism: each shard lives in a worker process (built there
    from the same recipe, which must therefore be picklable) and drains
    concurrently; the coordinator speaks a small command protocol over
    pipes.  Gated by the E13 benchmark
    (``benchmarks/bench_shard_runtime.py``).
"""

from __future__ import annotations

import abc
import multiprocessing
import time as _time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.assembly import AutoAssembler
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.observability.instrumentation import ObservabilityHub
from repro.observability.metrics import (
    MetricsRegistry,
    merge_component_stats,
    merge_snapshots,
)
from repro.runtime.engine import PositioningEngine
from repro.runtime.placement import (
    ConsistentHashPlacement,
    PinnedPlacement,
    PlacementPolicy,
)
from repro.runtime.queues import DROP_OLDEST
from repro.runtime.scheduler import (
    FairScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.clock import SimulationClock
    from repro.robustness.supervision import SupervisionPolicy

#: Shard health states reported by the coordinator.
SHARD_HEALTHY = "healthy"
SHARD_DEGRADED = "degraded"

#: Executor mode names accepted by :class:`ShardedEngine`.
IN_PROCESS = "inprocess"
MULTIPROCESSING = "multiprocessing"
EXECUTORS = (IN_PROCESS, MULTIPROCESSING)

#: A graph recipe: builds one shard's private graph (or assembler).
GraphRecipe = Callable[[], Union[ProcessingGraph, AutoAssembler]]

#: Scheduler specification: ``None`` (round-robin default), a
#: ``("round_robin" | "weighted", quantum)`` tuple (picklable, required
#: for worker processes), or a zero-argument factory callable.
SchedulerSpec = Union[None, Tuple[str, int], Callable[[], FairScheduler]]

#: Breaker-health severity order used by the cross-shard health merge.
_HEALTH_SEVERITY = {"closed": 0, "half-open": 1, "open": 2}


class ShardingError(Exception):
    """Raised on invalid sharded-engine configuration or use."""


class ShardRemoteError(ShardingError):
    """An operation failed inside a worker-process shard.

    Carries the remote ``"ExceptionType: message"`` string; the remote
    traceback stays in the worker, the failure record in the
    coordinator.
    """


def build_scheduler(spec: SchedulerSpec) -> FairScheduler:
    """Materialise one shard's scheduler from its specification."""
    if spec is None:
        return RoundRobinScheduler()
    if callable(spec):
        scheduler = spec()
        if not isinstance(scheduler, FairScheduler):
            raise ShardingError(
                f"scheduler factory returned {type(scheduler).__name__},"
                " not a FairScheduler"
            )
        return scheduler
    kind, quantum = spec
    if kind == "round_robin":
        return RoundRobinScheduler(quantum)
    if kind == "weighted":
        return WeightedScheduler(quantum)
    raise ShardingError(
        f"unknown scheduler kind {kind!r};"
        " expected 'round_robin' or 'weighted'"
    )


def materialise_graph(recipe: GraphRecipe) -> ProcessingGraph:
    """Run the shared assembly recipe for one shard."""
    built = recipe()
    if isinstance(built, AutoAssembler):
        built = built.graph
    if not isinstance(built, ProcessingGraph):
        raise ShardingError(
            f"recipe must build a ProcessingGraph or AutoAssembler,"
            f" got {type(built).__name__}"
        )
    return built


def _sink_outputs(graph: ProcessingGraph) -> List[Tuple[str, str, Any, Any]]:
    """Every datum held by the graph's ApplicationSinks, as plain tuples.

    ``(sink, kind, payload, target)`` rows -- picklable, so workers can
    ship them to the coordinator for equivalence checks and demos.
    """
    from repro.core.component import ApplicationSink

    rows: List[Tuple[str, str, Any, Any]] = []
    for component in graph.components():
        if isinstance(component, ApplicationSink):
            rows.extend(
                (
                    component.name,
                    datum.kind,
                    datum.payload,
                    datum.attributes.get("target"),
                )
                for datum in component.received
            )
    return rows


class _ShardBase(abc.ABC):
    """One shard as the coordinator sees it: engine ops + health state."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.status = SHARD_HEALTHY
        self.error: Optional[str] = None

    @property
    def healthy(self) -> bool:
        return self.status == SHARD_HEALTHY

    def mark_degraded(self, error: str) -> None:
        self.status = SHARD_DEGRADED
        self.error = error

    def restore(self) -> None:
        self.status = SHARD_HEALTHY
        self.error = None

    # -- engine operations (implemented per executor) ----------------------

    @abc.abstractmethod
    def track(self, target_id: str, source: str, **kwargs: Any) -> None: ...

    @abc.abstractmethod
    def untrack(self, target_id: str) -> None: ...

    @abc.abstractmethod
    def submit(self, target_id: str, datum: Datum) -> str: ...

    @abc.abstractmethod
    def submit_many(self, items: List[Tuple[str, Datum]]) -> Dict[str, int]: ...

    @abc.abstractmethod
    def set_policy(self, target_id: str, **kwargs: Any) -> Dict[str, Any]: ...

    @abc.abstractmethod
    def begin_drain(self, op: str, max_rounds: int) -> None:
        """Start one drain (``"round"`` or ``"all"``); result pending."""

    @abc.abstractmethod
    def finish_drain(self) -> int:
        """Collect the pending drain's datum count (or raise its error)."""

    @abc.abstractmethod
    def export_lane(self, target_id: str) -> Dict[str, Any]:
        """Detach one lane (with queue contents) for migration."""

    @abc.abstractmethod
    def install_lane(self, payload: Dict[str, Any]) -> None:
        """Install a lane exported from another shard, state intact."""

    @abc.abstractmethod
    def snapshot(self) -> Dict[str, Any]: ...

    @abc.abstractmethod
    def component_health(self) -> Dict[str, str]: ...

    @abc.abstractmethod
    def component_stats(self) -> Dict[str, Dict[str, Any]]: ...

    @abc.abstractmethod
    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]: ...

    @abc.abstractmethod
    def sink_outputs(self) -> List[Tuple[str, str, Any, Any]]: ...

    def close(self) -> None:
        """Release executor resources; no-op for in-process shards."""


class InProcessShard(_ShardBase):
    """A shard living in the coordinator's interpreter.

    Fully deterministic (drains run synchronously in shard order) and
    fully transparent: tests and operators can reach ``graph``,
    ``engine``, ``hub`` and ``supervisor`` directly -- the translucency
    story survives sharding in this mode.
    """

    mode = IN_PROCESS

    def __init__(
        self,
        shard_id: int,
        recipe: GraphRecipe,
        scheduler_spec: SchedulerSpec,
        *,
        stamp_targets: bool = True,
        observability: bool = False,
        supervision: Optional["SupervisionPolicy"] = None,
    ) -> None:
        super().__init__(shard_id)
        self.graph = materialise_graph(recipe)
        self.hub: Optional[ObservabilityHub] = None
        if observability:
            self.hub = ObservabilityHub(MetricsRegistry(), tracing=False)
            self.graph.set_instrumentation(self.hub)
        if supervision is not None:
            from repro.robustness.supervision import Supervisor

            self.graph.set_supervisor(Supervisor(supervision))
        self.engine = PositioningEngine(
            self.graph,
            scheduler=build_scheduler(scheduler_spec),
            stamp_targets=stamp_targets,
        )
        self._pending: Optional[Tuple[Optional[int], Optional[BaseException]]] = None

    def track(self, target_id: str, source: str, **kwargs: Any) -> None:
        self.engine.track(target_id, source, **kwargs)

    def untrack(self, target_id: str) -> None:
        self.engine.untrack(target_id)

    def submit(self, target_id: str, datum: Datum) -> str:
        return self.engine.submit(target_id, datum)

    def submit_many(self, items: List[Tuple[str, Datum]]) -> Dict[str, int]:
        verdicts: Dict[str, int] = {}
        submit = self.engine.submit
        for target_id, datum in items:
            verdict = submit(target_id, datum)
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        return verdicts

    def set_policy(self, target_id: str, **kwargs: Any) -> Dict[str, Any]:
        return self.engine.set_policy(target_id, **kwargs)

    def begin_drain(self, op: str, max_rounds: int) -> None:
        # Synchronous by design: sequential shard order is what makes
        # the in-process mode deterministic.  The error is captured so
        # finish_drain raises it exactly where the coordinator's
        # containment logic expects, mirroring the worker protocol.
        try:
            if op == "round":
                self._pending = (self.engine.drain_round(), None)
            else:
                self._pending = (self.engine.drain_all(max_rounds), None)
        except BaseException as exc:  # noqa: BLE001 - re-raised in finish_drain
            self._pending = (None, exc)

    def finish_drain(self) -> int:
        if self._pending is None:
            raise ShardingError("no drain in flight")
        drained, error = self._pending
        self._pending = None
        if error is not None:
            raise error
        assert drained is not None
        return drained

    def export_lane(self, target_id: str) -> Dict[str, Any]:
        return self.engine.export_lane(target_id)

    def install_lane(self, payload: Dict[str, Any]) -> None:
        self.engine.install_lane(payload)

    def snapshot(self) -> Dict[str, Any]:
        return self.engine.snapshot()

    def component_health(self) -> Dict[str, str]:
        supervisor = self.graph.supervisor
        return supervisor.health_states() if supervisor is not None else {}

    def component_stats(self) -> Dict[str, Dict[str, Any]]:
        return self.hub.component_stats() if self.hub is not None else {}

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.hub.registry.snapshot() if self.hub is not None else {}

    def sink_outputs(self) -> List[Tuple[str, str, Any, Any]]:
        return _sink_outputs(self.graph)


def _shard_worker(
    conn: Any,
    shard_id: int,
    recipe: GraphRecipe,
    scheduler_spec: SchedulerSpec,
    stamp_targets: bool,
    observability: bool,
    supervision: Optional["SupervisionPolicy"],
) -> None:  # pragma: no cover - runs in a child process, untraceable
    """Worker-process loop: one shard served over a pipe.

    Every request is answered with ``("ok", result)`` or ``("error",
    "Type: message")`` -- exceptions never kill the worker, so a shard
    that failed a drain still answers snapshot/health requests, which is
    what keeps degraded shards inspectable.
    """
    try:
        graph = materialise_graph(recipe)
        hub: Optional[ObservabilityHub] = None
        if observability:
            hub = ObservabilityHub(MetricsRegistry(), tracing=False)
            graph.set_instrumentation(hub)
        if supervision is not None:
            from repro.robustness.supervision import Supervisor

            graph.set_supervisor(Supervisor(supervision))
        engine = PositioningEngine(
            graph,
            scheduler=build_scheduler(scheduler_spec),
            stamp_targets=stamp_targets,
        )
    except Exception as exc:  # noqa: BLE001 - reported to the coordinator
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ok", shard_id))
    while True:
        try:
            op, args, kwargs = conn.recv()
        except EOFError:
            break
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            if op == "track":
                engine.track(*args, **kwargs)
                result: Any = None
            elif op == "untrack":
                engine.untrack(*args)
                result = None
            elif op == "submit":
                result = engine.submit(*args)
            elif op == "submit_many":
                verdicts: Dict[str, int] = {}
                for target_id, datum in args[0]:
                    verdict = engine.submit(target_id, datum)
                    verdicts[verdict] = verdicts.get(verdict, 0) + 1
                result = verdicts
            elif op == "set_policy":
                result = engine.set_policy(*args, **kwargs)
            elif op == "drain_round":
                result = engine.drain_round()
            elif op == "drain_all":
                result = engine.drain_all(*args)
            elif op == "snapshot":
                result = engine.snapshot()
            elif op == "component_health":
                supervisor = graph.supervisor
                result = supervisor.health_states() if supervisor is not None else {}
            elif op == "component_stats":
                result = hub.component_stats() if hub is not None else {}
            elif op == "metrics_snapshot":
                result = hub.registry.snapshot() if hub is not None else {}
            elif op == "export_lane":
                result = engine.export_lane(*args)
            elif op == "install_lane":
                engine.install_lane(*args)
                result = None
            elif op == "sink_outputs":
                result = _sink_outputs(graph)
            else:
                raise ShardingError(f"unknown shard op {op!r}")
            conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - protocol error channel
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class ProcessShard(_ShardBase):
    """A shard served by a worker process over a pipe.

    The recipe, scheduler spec and supervision policy cross the process
    boundary once at startup (they must be picklable -- module-level
    recipes, tuple scheduler specs); afterwards only datums and plain
    dicts travel.  ``begin_drain`` / ``finish_drain`` split the
    request/response round-trip so the coordinator can have *every*
    worker draining before it blocks on the first result -- that split
    is where the parallel speedup lives.
    """

    mode = MULTIPROCESSING

    def __init__(
        self,
        shard_id: int,
        recipe: GraphRecipe,
        scheduler_spec: SchedulerSpec,
        *,
        stamp_targets: bool = True,
        observability: bool = False,
        supervision: Optional["SupervisionPolicy"] = None,
        mp_context: Optional[Any] = None,
    ) -> None:
        super().__init__(shard_id)
        ctx = mp_context or multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._process = ctx.Process(
            target=_shard_worker,
            args=(
                child_conn,
                shard_id,
                recipe,
                scheduler_spec,
                stamp_targets,
                observability,
                supervision,
            ),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._in_flight = False
        self._collect()  # the ready handshake (or the build error)

    # -- protocol ----------------------------------------------------------

    def _cast(self, op: str, *args: Any, **kwargs: Any) -> None:
        # A dead worker must surface as ShardRemoteError, never as a raw
        # BrokenPipeError: the coordinator's containment logic keys off
        # the former, and pipe writes to a crashed child can otherwise
        # succeed once before failing.
        if not self._process.is_alive():
            raise ShardRemoteError(
                f"shard {self.shard_id} worker process is dead"
                f" (exitcode {self._process.exitcode})"
            )
        try:
            self._conn.send((op, args, kwargs))
        except OSError as exc:
            raise ShardRemoteError(
                f"shard {self.shard_id} worker pipe broken: {exc}"
            ) from None
        self._in_flight = True

    def _collect(self) -> Any:
        self._in_flight = False
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError):
            raise ShardRemoteError(
                f"shard {self.shard_id} worker exited unexpectedly"
            ) from None
        if status == "ok":
            return payload
        raise ShardRemoteError(payload)

    def _call(self, op: str, *args: Any, **kwargs: Any) -> Any:
        self._cast(op, *args, **kwargs)
        return self._collect()

    # -- engine operations --------------------------------------------------

    def track(self, target_id: str, source: str, **kwargs: Any) -> None:
        self._call("track", target_id, source, **kwargs)

    def untrack(self, target_id: str) -> None:
        self._call("untrack", target_id)

    def submit(self, target_id: str, datum: Datum) -> str:
        return self._call("submit", target_id, datum)

    def submit_many(self, items: List[Tuple[str, Datum]]) -> Dict[str, int]:
        return self._call("submit_many", items)

    def set_policy(self, target_id: str, **kwargs: Any) -> Dict[str, Any]:
        return self._call("set_policy", target_id, **kwargs)

    def begin_drain(self, op: str, max_rounds: int) -> None:
        if op == "round":
            self._cast("drain_round")
        else:
            self._cast("drain_all", max_rounds)

    def finish_drain(self) -> int:
        return self._collect()

    def export_lane(self, target_id: str) -> Dict[str, Any]:
        return self._call("export_lane", target_id)

    def install_lane(self, payload: Dict[str, Any]) -> None:
        self._call("install_lane", payload)

    def snapshot(self) -> Dict[str, Any]:
        return self._call("snapshot")

    def component_health(self) -> Dict[str, str]:
        return self._call("component_health")

    def component_stats(self) -> Dict[str, Dict[str, Any]]:
        return self._call("component_stats")

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self._call("metrics_snapshot")

    def sink_outputs(self) -> List[Tuple[str, str, Any, Any]]:
        return self._call("sink_outputs")

    def close(self) -> None:
        if self._process.is_alive():
            try:
                if self._in_flight and self._conn.poll(1.0):
                    # The coordinator abandoned a begun drain; collect
                    # (and discard) its response so the pipe protocol is
                    # back in sync and the worker can take the stop.
                    try:
                        self._collect()
                    except ShardRemoteError:
                        pass
                if not self._in_flight:
                    self._call("stop")
            except (ShardRemoteError, OSError):
                pass
            self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.terminate()
                self._process.join(timeout=5)
        self._conn.close()


class ShardedEngine:
    """Coordinator over N engine shards: fan-out in, merged surfaces out.

    Parameters
    ----------
    recipe:
        Shared assembly recipe; invoked once per shard to build that
        shard's private graph.  Must be picklable under the
        ``multiprocessing`` executor.
    shards:
        Number of engine shards (>= 1).
    placement:
        The :class:`~repro.runtime.placement.PlacementPolicy` deciding
        target ownership; consistent hashing by default.  Per-call
        ``track(..., shard=i)`` pins override the policy for one target.
    executor:
        ``"inprocess"`` (deterministic, tier-1 testable) or
        ``"multiprocessing"`` (parallel worker processes).
    clock:
        Optional simulation clock for :meth:`start`'s periodic rounds.
    scheduler:
        Per-shard scheduler spec (see :data:`SchedulerSpec`); every
        shard gets its own instance, so cursors never alias.
    observability:
        Give each shard its own metrics-only
        :class:`~repro.observability.instrumentation.ObservabilityHub`;
        :meth:`merged_component_stats` / :meth:`merged_metrics` roll the
        per-shard registries up.
    supervision:
        Optional :class:`~repro.robustness.supervision
        .SupervisionPolicy`; each shard gets its own Supervisor, so
        breakers and failure rings stay shard-local (failure
        containment *within* a shard, on top of the coordinator's
        containment *between* shards).
    """

    def __init__(
        self,
        recipe: GraphRecipe,
        shards: int,
        *,
        placement: Optional[PlacementPolicy] = None,
        executor: str = IN_PROCESS,
        clock: Optional["SimulationClock"] = None,
        scheduler: SchedulerSpec = None,
        stamp_targets: bool = True,
        observability: bool = False,
        supervision: Optional["SupervisionPolicy"] = None,
        mp_context: Optional[Any] = None,
        failure_limit: int = 64,
    ) -> None:
        if shards < 1:
            raise ShardingError("shards must be >= 1")
        if executor not in EXECUTORS:
            raise ShardingError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.recipe = recipe
        self.executor = executor
        self.placement = placement or ConsistentHashPlacement()
        self.clock = clock
        self._cancel: Optional[Callable[[], None]] = None
        self._assignments: Dict[str, int] = {}
        self.rounds = 0
        self.drained_total = 0
        self._failure_limit = failure_limit
        self._failures: List[Dict[str, Any]] = []
        self._migrations: List[Dict[str, Any]] = []
        # Optional DurabilityManager bridge: when set (enable_durability
        # wires it), completed handoffs also land in the durability
        # seam's migration history and hub counters.
        self.durability: Optional[Any] = None
        self._shards: List[_ShardBase] = []
        try:
            for shard_id in range(shards):
                if executor == IN_PROCESS:
                    self._shards.append(
                        InProcessShard(
                            shard_id,
                            recipe,
                            scheduler,
                            stamp_targets=stamp_targets,
                            observability=observability,
                            supervision=supervision,
                        )
                    )
                else:
                    self._shards.append(
                        ProcessShard(
                            shard_id,
                            recipe,
                            scheduler,
                            stamp_targets=stamp_targets,
                            observability=observability,
                            supervision=supervision,
                            mp_context=mp_context,
                        )
                    )
        except BaseException:
            self.close()
            raise

    # -- context management -------------------------------------------------

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop periodic draining and release every shard's resources."""
        self.stop()
        for shard in self._shards:
            shard.close()

    # -- shard access --------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard(self, shard_id: int) -> _ShardBase:
        """One shard's handle (the live in-process shard, or the proxy)."""
        try:
            return self._shards[shard_id]
        except IndexError:
            raise ShardingError(f"no shard {shard_id}") from None

    def shards(self) -> List[_ShardBase]:
        """All shard handles, in shard-id order."""
        return list(self._shards)

    def degraded(self) -> List[int]:
        """Ids of shards currently marked degraded."""
        return [s.shard_id for s in self._shards if not s.healthy]

    def restore_shard(self, shard_id: int) -> None:
        """Readmit a degraded shard to drain rounds (after healing it)."""
        self.shard(shard_id).restore()

    def failures(self) -> List[Dict[str, Any]]:
        """Bounded ring of contained shard failures (newest last)."""
        return list(self._failures)

    # -- placement + lane management -----------------------------------------

    def shard_of(self, target_id: str) -> int:
        """The shard owning a tracked target."""
        try:
            return self._assignments[target_id]
        except KeyError:
            raise ShardingError(f"no tracked target {target_id!r}") from None

    def assignments(self) -> Dict[str, int]:
        """Current target -> shard map (a copy)."""
        return dict(self._assignments)

    def track(
        self,
        target_id: str,
        source: str,
        *,
        capacity: int = 64,
        policy: str = DROP_OLDEST,
        weight: int = 1,
        shard: Optional[int] = None,
    ) -> int:
        """Place and track a target; returns the owning shard id.

        Placement comes from the policy object unless ``shard`` pins
        this target explicitly (the per-call override; persistent pin
        tables belong in a
        :class:`~repro.runtime.placement.PinnedPlacement`).
        """
        if target_id in self._assignments:
            raise ShardingError(f"target {target_id!r} already tracked")
        if shard is None:
            shard = self.placement.place(target_id, len(self._shards))
        if not 0 <= shard < len(self._shards):
            raise ShardingError(
                f"placement put {target_id!r} on shard {shard}, but only"
                f" {len(self._shards)} shards exist"
            )
        self._shards[shard].track(
            target_id,
            source,
            capacity=capacity,
            policy=policy,
            weight=weight,
        )
        self._assignments[target_id] = shard
        return shard

    def untrack(self, target_id: str) -> int:
        """Stop tracking a target; returns the shard that owned it."""
        shard = self.shard_of(target_id)
        self._shards[shard].untrack(target_id)
        del self._assignments[target_id]
        return shard

    def is_tracked(self, target_id: str) -> bool:
        """Whether any shard owns a lane for ``target_id`` (no-raise).

        Mirrors :meth:`PositioningEngine.is_tracked` so the ingestion
        gateway can sit in front of either engine unchanged.
        """
        return target_id in self._assignments

    def set_policy(self, target_id: str, **kwargs: Any) -> Dict[str, Any]:
        """Adapt one lane's backpressure/fairness knobs, wherever it lives."""
        return self._shards[self.shard_of(target_id)].set_policy(target_id, **kwargs)

    # -- warm handoff (live migration between shards) --------------------------

    def migrate_target(self, target_id: str, to_shard: int) -> Dict[str, Any]:
        """Relocate a live lane to ``to_shard`` with zero datum loss.

        The handoff protocol:

        1. **Barrier**: the lane is exported from its owning shard --
           export *removes* it there, so no submit or drain can touch
           it mid-flight (the coordinator is single-threaded, so the
           removal is atomic with respect to both).
        2. **Snapshot travels**: the export payload carries the lane's
           configuration, counters, and every pending datum.
        3. **Install**: the destination shard rebuilds the lane, state
           intact.  If the install raises, the lane is reinstalled on
           the source shard and the error propagates -- the target is
           never left untracked.
        4. **Repoint**: the assignment map flips and the placement
           policy is wrapped in a
           :class:`~repro.runtime.placement.PinnedPlacement` (if it is
           not one already) pinning the target to its new home, so
           policy-driven re-placement respects the migration.

        Returns the migration record: ``{"target", "from", "to",
        "datums", "pause_s"}``, where ``pause_s`` is the wall-clock
        window in which the lane accepted no traffic.
        """
        from_shard = self.shard_of(target_id)
        if not 0 <= to_shard < len(self._shards):
            raise ShardingError(
                f"no shard {to_shard}; only {len(self._shards)} shards exist"
            )
        if to_shard == from_shard:
            raise ShardingError(
                f"target {target_id!r} already lives on shard {to_shard}"
            )
        source = self._shards[from_shard]
        destination = self._shards[to_shard]
        if not destination.healthy:
            raise ShardingError(
                f"destination shard {to_shard} is degraded"
                f" ({destination.error})"
            )
        started = _time.perf_counter()
        payload = source.export_lane(target_id)
        try:
            destination.install_lane(payload)
        except Exception:
            # Roll the lane back onto its source shard: a failed
            # migration must never strand the target untracked.
            source.install_lane(payload)
            raise
        self._assignments[target_id] = to_shard
        if not isinstance(self.placement, PinnedPlacement):
            self.placement = PinnedPlacement(base=self.placement)
        self.placement.pin(target_id, to_shard)
        pause_s = _time.perf_counter() - started
        record = {
            "target": target_id,
            "from": from_shard,
            "to": to_shard,
            "datums": len(payload["queue"]["items"]),
            "pause_s": pause_s,
        }
        self._migrations.append(record)
        if len(self._migrations) > self._failure_limit:
            del self._migrations[: len(self._migrations) - self._failure_limit]
        if self.durability is not None:
            self.durability.record_migration(record)
        return record

    def migrations(self) -> List[Dict[str, Any]]:
        """Bounded history of completed warm handoffs (newest last)."""
        return [dict(record) for record in self._migrations]

    def rebalance(
        self,
        placement: Optional[PlacementPolicy] = None,
        *,
        max_moves: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Placement-policy-driven :meth:`migrate_target` sweep.

        Placement was static per target until now: a target's shard was
        decided at :meth:`track` time and never revisited, so a hot
        shard stayed hot.  This hook re-places every tracked target
        under ``placement`` (default: the current policy -- useful
        after pins changed) and warm-migrates each target whose desired
        shard differs from its current one, in sorted target order
        (deterministic).  Targets whose destination shard is degraded
        are skipped, not failed: rebalancing is best-effort shedding,
        and a later sweep can finish the job.

        ``max_moves`` bounds the sweep (controllers shedding a hot
        shard mid-run want a few moves per round, not a stop-the-world
        reshuffle).  Returns the migration records of the moves made.

        When ``placement`` is given it becomes the engine's policy;
        each completed move then pins its target via the
        :class:`~repro.runtime.placement.PinnedPlacement` wrap that
        :meth:`migrate_target` maintains, so the sweep's outcome
        survives later policy-driven placement.
        """
        policy = placement if placement is not None else self.placement
        if placement is not None:
            self.placement = placement
        moves: List[Dict[str, Any]] = []
        shard_count = len(self._shards)
        for target_id in sorted(self._assignments):
            current = self._assignments[target_id]
            desired = policy.place(target_id, shard_count)
            if not 0 <= desired < shard_count:
                raise ShardingError(
                    f"placement put {target_id!r} on shard {desired}, but"
                    f" only {shard_count} shards exist"
                )
            if desired == current or not self._shards[desired].healthy:
                continue
            moves.append(self.migrate_target(target_id, desired))
            if max_moves is not None and len(moves) >= max_moves:
                break
        return moves

    # -- ingestion (producer side) -------------------------------------------

    def submit(self, target_id: str, datum: Datum) -> str:
        """Queue one datum on its owning shard; returns the lane verdict."""
        return self._shards[self.shard_of(target_id)].submit(target_id, datum)

    def submit_batch(self, items: Iterable[Tuple[str, Datum]]) -> Dict[str, int]:
        """Fan a mixed batch out to owning shards; returns verdict counts.

        Items are grouped per shard and cross the shard boundary in one
        call each -- under the multiprocessing executor that is one pipe
        message per shard instead of one per datum.
        """
        by_shard: Dict[int, List[Tuple[str, Datum]]] = {}
        for target_id, datum in items:
            by_shard.setdefault(self.shard_of(target_id), []).append((target_id, datum))
        totals: Dict[str, int] = {}
        for shard_id, group in by_shard.items():
            for verdict, count in self._shards[shard_id].submit_many(group).items():
                totals[verdict] = totals.get(verdict, 0) + count
        return totals

    # -- draining (the coordinator's round) ------------------------------------

    def _drain(self, op: str, max_rounds: int) -> int:
        active = [s for s in self._shards if s.healthy]
        if not active:
            raise ShardingError(
                "no healthy shards left"
                f" (degraded: {self.degraded()})"
            )
        # begin_drain can itself fail (a worker that died while idle is
        # the realistic crash mode), so it gets the same containment as
        # finish_drain -- and only shards whose begin succeeded are
        # collected, keeping the pipe protocol in sync for survivors.
        started: List[_ShardBase] = []
        for shard in active:
            try:
                shard.begin_drain(op, max_rounds)
            except Exception as exc:  # noqa: BLE001 - per-shard containment
                self._record_failure(shard, op, exc)
            else:
                started.append(shard)
        total = 0
        for shard in started:
            try:
                total += shard.finish_drain()
            except Exception as exc:  # noqa: BLE001 - per-shard containment
                self._record_failure(shard, op, exc)
        self.rounds += 1
        self.drained_total += total
        return total

    def _record_failure(self, shard: _ShardBase, op: str, exc: BaseException) -> None:
        message = (
            str(exc)
            if isinstance(exc, ShardRemoteError)
            else f"{type(exc).__name__}: {exc}"
        )
        shard.mark_degraded(message)
        self._failures.append(
            {
                "shard": shard.shard_id,
                "op": op,
                "round": self.rounds,
                "error": message,
            }
        )
        if len(self._failures) > self._failure_limit:
            del self._failures[: len(self._failures) - self._failure_limit]

    def drain_round(self) -> int:
        """One drain round across all healthy shards; returns datums routed.

        Shards run in shard-id order under the in-process executor
        (deterministic) and concurrently under multiprocessing.  A shard
        whose drain raises is marked degraded and recorded; the round
        continues on the survivors.
        """
        return self._drain("round", 1)

    def drain_all(self, max_rounds: int = 1000) -> int:
        """Drain every healthy shard to quiescence; returns datums routed.

        Per-shard truncation (an engine exhausting ``max_rounds`` with
        datums pending) is *not* quiescence: the shard is marked
        degraded with the truncation error and its engine snapshot
        keeps ``last_drain_truncated`` set, so the merged snapshot's
        ``truncated`` list names it even though surviving shards
        finished cleanly.
        """
        return self._drain("all", max_rounds)

    def start(self, interval_s: float) -> Callable[[], None]:
        """Drain one round every ``interval_s`` simulated seconds."""
        if self.clock is None:
            raise ShardingError("engine has no clock; pass one to start()")
        if interval_s <= 0:
            raise ShardingError("interval must be positive")
        self.stop()
        self._cancel = self.clock.call_every(
            interval_s, lambda _now: self.drain_round()
        )
        return self._cancel

    def stop(self) -> None:
        """Cancel the periodic drain schedule, if one is running."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # -- merged surfaces (the facade) ------------------------------------------

    def _per_shard(self, call: Callable[[_ShardBase], Any], fallback: Any) -> List[Any]:
        """Apply ``call`` to every shard, degrading instead of raising."""
        results = []
        for shard in self._shards:
            try:
                results.append(call(shard))
            except Exception as exc:  # noqa: BLE001 - keep surfaces total
                self._record_failure(shard, "inspect", exc)
                results.append(fallback)
        return results

    def ingestion_lanes(self) -> Dict[str, Dict[str, Any]]:
        """Every tracked target's lane stats, annotated with its shard.

        The sharded twin of ``psl.ingestion_lanes()``: one merged map
        regardless of where each lane physically lives.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        for shard, snap in zip(
            self._shards, self._per_shard(lambda s: s.snapshot(), {})
        ):
            for target_id, stats in snap.get("lanes", {}).items():
                stats = dict(stats)
                stats["shard"] = shard.shard_id
                merged[target_id] = stats
        return merged

    def component_health(self) -> Dict[str, str]:
        """Worst-of breaker health per component name, across shards.

        Shards are structural twins, so component names line up; a
        component ``open`` on any shard reports ``open`` here.  Per
        shard detail lives in :meth:`snapshot`.
        """
        merged: Dict[str, str] = {}
        for states in self._per_shard(lambda s: s.component_health(), {}):
            for name, state in states.items():
                current = merged.get(name)
                if current is None or (
                    _HEALTH_SEVERITY.get(state, 0)
                    > _HEALTH_SEVERITY.get(current, 0)
                ):
                    merged[name] = state
        return merged

    def merged_component_stats(self) -> Dict[str, Dict[str, Any]]:
        """Cross-shard roll-up of per-component hub metrics."""
        return merge_component_stats(self._per_shard(lambda s: s.component_stats(), {}))

    def merged_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Cross-shard merge of every shard registry's snapshot."""
        return merge_snapshots(self._per_shard(lambda s: s.metrics_snapshot(), {}))

    def sink_outputs(self) -> List[Tuple[str, str, Any, Any]]:
        """All sink-delivered rows across shards (order: shard id)."""
        rows: List[Tuple[str, str, Any, Any]] = []
        for result in self._per_shard(lambda s: s.sink_outputs(), []):
            rows.extend(result)
        return rows

    def pending_total(self) -> int:
        """Datums pending across all shards (degraded ones included)."""
        return sum(
            snap.get("pending", 0)
            for snap in self._per_shard(lambda s: s.snapshot(), {})
        )

    def snapshot(self) -> Dict[str, Any]:
        """Merged reflective summary: the coordinator's report surface."""
        per_shard = []
        truncated: List[int] = []
        pending = 0
        for shard, engine_snap in zip(
            self._shards, self._per_shard(lambda s: s.snapshot(), None)
        ):
            entry: Dict[str, Any] = {
                "shard": shard.shard_id,
                "mode": shard.mode,
                "status": shard.status,
                "error": shard.error,
            }
            if engine_snap is None:
                entry["engine"] = None
            else:
                entry["engine"] = engine_snap
                pending += engine_snap.get("pending", 0)
                if engine_snap.get("last_drain_truncated"):
                    truncated.append(shard.shard_id)
            per_shard.append(entry)
        return {
            "executor": self.executor,
            "shards": len(self._shards),
            "placement": self.placement.describe(),
            "targets": len(self._assignments),
            "rounds": self.rounds,
            "drained_total": self.drained_total,
            "pending": pending,
            "running": self._cancel is not None,
            "degraded": self.degraded(),
            "truncated": truncated,
            "failures": self.failures(),
            "migrations": self.migrations(),
            "per_shard": per_shard,
        }
