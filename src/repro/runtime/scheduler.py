"""Deterministic fair schedulers for draining ingestion lanes.

The scheduler decides, each round, which tracked target's queue gets to
push how many datums into the shared processing graph.  Everything runs
on the simulated clock and plain registration order, so a throughput
experiment replays identically -- fairness here is a *reproducible*
property, not a statistical one.

Two variants:

* :class:`RoundRobinScheduler` -- every lane gets the same ``quantum``
  per round; the starting lane rotates so no lane is systematically
  first when rounds end early.
* :class:`WeightedScheduler` -- each lane gets ``quantum * weight``
  per round (deficit-free weighted round-robin: weights are small
  integers, the per-round allocation is exact).

A scheduler only *plans*; the :class:`~repro.runtime.engine
.PositioningEngine` executes the plan by draining each queue and
injecting the batch through the graph's batched dispatch path.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.engine import TargetLane


class SchedulerError(Exception):
    """Raised on invalid scheduler configuration."""


class FairScheduler(abc.ABC):
    """Plans one drain round over the registered lanes."""

    @abc.abstractmethod
    def plan(
        self, lanes: Sequence["TargetLane"]
    ) -> List[Tuple["TargetLane", int]]:
        """Return ``(lane, max_datums)`` pairs for one round, in order."""

    def describe(self) -> dict:
        """Reflective summary for the PSL / report."""
        return {"type": type(self).__name__}


class RoundRobinScheduler(FairScheduler):
    """Equal quantum per lane, rotating the starting lane each round."""

    def __init__(self, quantum: int = 32) -> None:
        if quantum < 1:
            raise SchedulerError("quantum must be >= 1")
        self.quantum = quantum
        self._cursor = 0

    def plan(
        self, lanes: Sequence["TargetLane"]
    ) -> List[Tuple["TargetLane", int]]:
        if not lanes:
            return []
        start = self._cursor % len(lanes)
        self._cursor = (start + 1) % len(lanes)
        quantum = self.quantum
        ordered = list(lanes[start:]) + list(lanes[:start])
        return [(lane, quantum) for lane in ordered]

    def describe(self) -> dict:
        return {"type": type(self).__name__, "quantum": self.quantum}


class WeightedScheduler(FairScheduler):
    """Weighted round-robin: a lane's share is ``quantum * weight``."""

    def __init__(self, quantum: int = 32) -> None:
        if quantum < 1:
            raise SchedulerError("quantum must be >= 1")
        self.quantum = quantum
        self._cursor = 0

    def plan(
        self, lanes: Sequence["TargetLane"]
    ) -> List[Tuple["TargetLane", int]]:
        if not lanes:
            return []
        start = self._cursor % len(lanes)
        self._cursor = (start + 1) % len(lanes)
        quantum = self.quantum
        ordered = list(lanes[start:]) + list(lanes[:start])
        return [(lane, quantum * lane.weight) for lane in ordered]

    def describe(self) -> dict:
        return {"type": type(self).__name__, "quantum": self.quantum}
