"""``python -m repro``: a 60-second guided demo.

Runs the Fig. 1 Room Number Application against the demo building and
prints the three abstraction-layer views plus the infrastructure report,
so a new user sees the middleware working without writing any code.
"""

from __future__ import annotations

import argparse

from repro.core import Kind, PerPos
from repro.core.report import render_report
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.pipelines import build_room_app
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner


def build_demo(seed: int) -> "tuple[PerPos, object, WaypointTrajectory]":
    building = demo_building()
    grid = building.grid
    trajectory = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(-30.0, 7.5))),
            Waypoint(30.0, grid.to_wgs84(GridPosition(-2.0, 7.5))),
            Waypoint(50.0, grid.to_wgs84(GridPosition(15.0, 7.5))),
            Waypoint(70.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
            Waypoint(120.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
        ]
    )

    def sky(t, position):
        inside = building.contains(grid.to_grid(position))
        return INDOOR if inside else OPEN_SKY

    gps = GpsReceiver("gps-device", trajectory, sky, seed=seed)
    wifi = WifiScanner(
        "wifi-device",
        trajectory,
        demo_radio_environment(building),
        grid,
        seed=seed + 1,
    )
    middleware = PerPos()
    app = build_room_app(middleware, gps, wifi, building)
    return middleware, app, trajectory


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PerPos reproduction demo (Fig. 1 room application)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="simulation seed"
    )
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds to run",
    )
    args = parser.parse_args(argv)

    middleware, app, trajectory = build_demo(args.seed)
    print("PerPos reproduction -- Room Number Application (paper Fig. 1)")
    print("=" * 66)
    print("\n[Process Structure Layer]")
    print(middleware.psl.structure())
    print("\n[Process Channel Layer]")
    print(middleware.pcl.render())
    print("\nwalking into the building...")

    state = {"room": None}

    def on_room(datum):
        label = datum.payload.room_id or "outdoors"
        if label != state["room"]:
            state["room"] = label
            print(f"  t={datum.timestamp:6.1f}s  {label}")

    app.provider.add_listener(on_room, kind=Kind.ROOM_ID)
    middleware.run_until(args.duration)

    truth = trajectory.position_at(args.duration)
    reported = app.provider.last_position()
    print(f"\nfinal error: {truth.distance_to(reported):.1f} m")
    print()
    print(render_report(middleware))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
