"""Versioned wire formats: the gateway's external data contract.

Everything inside the middleware speaks :class:`~repro.core.data.Datum`;
everything *outside* speaks whatever its vendor shipped.  A
:class:`WireFormat` names one external JSON shape -- ``phone_tracker_v1``
(SNIPPETS.md Snippet 3 / zmeta-stack) is the canonical example: a
lightweight GPS fix pushed from a mobile automation with ``device_id``,
``timestamp``, ``lat``/``lon``, ``accuracy_m`` and ``battery_pct`` --
and carries the per-field schema the gateway validates payloads against:
required/optional, accepted types, and numeric ranges.

Formats are *versioned by name* (``..._v1``, ``..._v2``): a breaking
payload change mints a new format name with its own schema and adapter,
so old devices keep working against the old contract while new ones roll
forward -- the gateway never guesses which shape it was handed, the
payload declares it in ``source_format``.

The schema check is on the gateway's per-payload hot path, so
:meth:`WireFormat.validate` is compiled once at construction into a
specialised validator function -- every field name, kind branch and
range bound is inlined as straight-line code (no spec traversal, no
kind dispatch) and the happy path allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Field kinds a :class:`FieldSpec` may declare.
FLOAT = "float"  # int or float (bools excluded), optionally range-bounded
STRING = "str"
TIMESTAMP = "timestamp"  # epoch seconds (int/float) or ISO-8601 string
ANY = "any"

FIELD_KINDS = (FLOAT, STRING, TIMESTAMP, ANY)

_MISSING = object()


class WireFormatError(Exception):
    """Raised on invalid wire-format definitions or unparseable values."""


def parse_timestamp(value: Any) -> float:
    """Normalise a wire timestamp to float epoch seconds.

    Accepts epoch seconds (int/float) or an ISO-8601 string (``Z``
    suffix and naive timestamps both read as UTC, so parsing never
    depends on the host's timezone).  Raises :class:`WireFormatError`
    on anything else.
    """
    if isinstance(value, bool):
        raise WireFormatError(f"timestamp must be a number or string, got {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value[:-1] + "+00:00" if value.endswith("Z") else value
        try:
            parsed = datetime.fromisoformat(text)
        except ValueError:
            raise WireFormatError(f"unparseable ISO-8601 timestamp {value!r}") from None
        if parsed.tzinfo is None:
            parsed = parsed.replace(tzinfo=timezone.utc)
        return parsed.timestamp()
    raise WireFormatError(
        f"timestamp must be epoch seconds or an ISO-8601 string,"
        f" got {type(value).__name__}"
    )


@dataclass(frozen=True)
class FieldSpec:
    """Schema for one wire-format field.

    ``kind`` is one of :data:`FIELD_KINDS`; ``minimum``/``maximum``
    bound :data:`FLOAT` (and numeric :data:`TIMESTAMP`) values
    inclusively.
    """

    name: str
    kind: str = FLOAT
    required: bool = False
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FIELD_KINDS:
            raise WireFormatError(
                f"field {self.name!r}: unknown kind {self.kind!r};"
                f" expected one of {FIELD_KINDS}"
            )


def _compile_validator(
    checks: Sequence[Tuple[str, bool, str, Optional[float], Optional[float]]],
) -> Any:
    """Compile field checks into one specialised validate function.

    Generates straight-line code per field -- the name, kind test and
    range bounds are all literals, so a payload walk does no spec
    traversal and no kind dispatch.  The generated function mirrors the
    reference semantics documented on :meth:`WireFormat.validate`.
    """
    lines = [
        "def _validate(payload):",
        "    errors = None",
        "    get = payload.get",
    ]
    emit = lines.append

    def err(expr: str, indent: str) -> None:
        emit(f"{indent}if errors is None:")
        emit(f"{indent}    errors = []")
        emit(f"{indent}errors.append({expr})")

    for name, required, kind, minimum, maximum in checks:
        emit(f"    v = get({name!r}, _MISSING)")
        if kind == ANY:
            if required:
                emit("    if v is _MISSING:")
                err(f"\"missing required field {name!r}\"", "        ")
            continue
        emit("    if v is not _MISSING:")
        if kind == STRING:
            emit("        if type(v) is not str and not isinstance(v, str):")
            err(
                f"f\"field {name!r} must be a string,"
                f" got {{type(v).__name__}}\"",
                "            ",
            )
        else:
            # FLOAT and TIMESTAMP: exact type() probes cover the shapes
            # JSON decoding produces; odd-but-valid values fall back to
            # isinstance (FLOAT) or parse_timestamp (TIMESTAMP).  bool
            # is its own type(), so it takes the slow path and fails
            # there.
            emit("        t = type(v)")
            emit("        if t is not float and t is not int:")
            if kind == FLOAT:
                emit(
                    "            if t is bool"
                    " or not isinstance(v, (int, float)):"
                )
                err(
                    f"f\"field {name!r} must be numeric,"
                    f" got {{t.__name__}}\"",
                    "                ",
                )
                emit("                v = _MISSING")
            else:  # TIMESTAMP
                emit("            try:")
                emit("                v = parse_timestamp(v)")
                emit("            except WireFormatError as exc:")
                err(f"f\"field {name!r}: {{exc}}\"", "                ")
                emit("                v = _MISSING")
            if minimum is not None or maximum is not None:
                emit("        if v is not _MISSING:")
                if minimum is not None:
                    emit(f"            if v < {minimum!r}:")
                    err(
                        f"f\"field {name!r}={{v!r}}"
                        f" below minimum {minimum}\"",
                        "                ",
                    )
                    if maximum is not None:
                        emit(f"            elif v > {maximum!r}:")
                        err(
                            f"f\"field {name!r}={{v!r}}"
                            f" above maximum {maximum}\"",
                            "                ",
                        )
                elif maximum is not None:
                    emit(f"            if v > {maximum!r}:")
                    err(
                        f"f\"field {name!r}={{v!r}}"
                        f" above maximum {maximum}\"",
                        "                ",
                    )
        if required:
            emit("    else:")
            err(f"\"missing required field {name!r}\"", "        ")
    emit("    return errors if errors is not None else []")
    namespace: Dict[str, Any] = {
        "_MISSING": _MISSING,
        "parse_timestamp": parse_timestamp,
        "WireFormatError": WireFormatError,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 -- schema compilation
    return namespace["_validate"]


class WireFormat:
    """One named, versioned external payload shape plus its schema.

    Parameters
    ----------
    name:
        The ``source_format`` value payloads declare; by convention it
        ends in ``_v<N>`` (parsed into :attr:`version`).
    fields:
        Per-field schema.  Unknown extra fields are tolerated (forward
        compatibility: a ``_v1`` consumer must not break when a device
        adds an informational field).
    device_field / timestamp_field:
        Which fields carry the tracked-device id and the observation
        time; both must appear in ``fields``.
    """

    def __init__(
        self,
        name: str,
        fields: Sequence[FieldSpec],
        *,
        device_field: str = "device_id",
        timestamp_field: str = "timestamp",
    ) -> None:
        if not name:
            raise WireFormatError("wire format name must be non-empty")
        names = [spec.name for spec in fields]
        if len(set(names)) != len(names):
            raise WireFormatError(f"format {name!r}: duplicate field specs")
        for label, field in (
            ("device_field", device_field),
            ("timestamp_field", timestamp_field),
        ):
            if field not in names:
                raise WireFormatError(
                    f"format {name!r}: {label} {field!r} has no FieldSpec"
                )
        self.name = name
        self.fields: Tuple[FieldSpec, ...] = tuple(fields)
        self.device_field = device_field
        self.timestamp_field = timestamp_field
        # Flat check tuples (kept for introspection), compiled once
        # into a specialised validator for the per-payload hot path.
        self._checks: Tuple[
            Tuple[str, bool, str, Optional[float], Optional[float]], ...
        ] = tuple(
            (spec.name, spec.required, spec.kind, spec.minimum, spec.maximum)
            for spec in self.fields
        )
        self._validator = _compile_validator(self._checks)

    @property
    def version(self) -> int:
        """The ``_v<N>`` suffix of :attr:`name`, or 0 when unversioned."""
        stem, _, suffix = self.name.rpartition("_v")
        if stem and suffix.isdigit():
            return int(suffix)
        return 0

    # -- validation (hot path) ----------------------------------------------

    def validate(self, payload: Mapping[str, Any]) -> List[str]:
        """Schema-check one payload; returns error strings (empty = valid).

        Reference semantics (the compiled validator inlines exactly
        this): a missing required field errors; :data:`FLOAT` accepts
        int/float but never bool, with inclusive range bounds;
        :data:`STRING` accepts str; :data:`TIMESTAMP` accepts epoch
        numbers directly and parses other shapes via
        :func:`parse_timestamp`, bounds applying to the parsed value;
        :data:`ANY` only checks presence.  Exact ``type()`` probes cover
        the shapes JSON decoding produces (the hot path); odd-but-valid
        values (int/float subclasses other than bool) fall back to
        ``isinstance``.
        """
        return self._validator(payload)

    # -- field access ---------------------------------------------------------

    def device_of(self, payload: Mapping[str, Any]) -> Optional[str]:
        """The tracked-device id a payload names, or None."""
        device = payload.get(self.device_field)
        return device if isinstance(device, str) and device else None

    def timestamp_of(self, payload: Mapping[str, Any]) -> float:
        """The observation time as epoch seconds (raises if absent/bad)."""
        value = payload.get(self.timestamp_field, _MISSING)
        value_type = type(value)
        if value_type is float:  # hot path: epoch seconds as shipped
            return value
        if value_type is int:
            return float(value)
        if value is _MISSING:
            raise WireFormatError(
                f"payload has no {self.timestamp_field!r} field"
            )
        return parse_timestamp(value)

    def describe(self) -> Dict[str, Any]:
        """Reflective summary (what the PSL/report surface)."""
        return {
            "name": self.name,
            "version": self.version,
            "device_field": self.device_field,
            "timestamp_field": self.timestamp_field,
            "fields": {
                spec.name: {
                    "kind": spec.kind,
                    "required": spec.required,
                    **(
                        {"minimum": spec.minimum}
                        if spec.minimum is not None
                        else {}
                    ),
                    **(
                        {"maximum": spec.maximum}
                        if spec.maximum is not None
                        else {}
                    ),
                }
                for spec in self.fields
            },
        }

    def __repr__(self) -> str:
        return f"WireFormat({self.name!r}, {len(self.fields)} fields)"


#: The zmeta-stack style mobile GPS fix (SNIPPETS.md Snippet 3).
PHONE_TRACKER_V1 = WireFormat(
    "phone_tracker_v1",
    fields=(
        FieldSpec("device_id", STRING, required=True),
        FieldSpec("timestamp", TIMESTAMP, required=True),
        FieldSpec("lat", FLOAT, required=True, minimum=-90.0, maximum=90.0),
        FieldSpec("lon", FLOAT, required=True, minimum=-180.0, maximum=180.0),
        FieldSpec("alt_m", FLOAT),
        FieldSpec("speed_mps", FLOAT, minimum=0.0),
        FieldSpec("heading_deg", FLOAT, minimum=0.0, maximum=360.0),
        FieldSpec("accuracy_m", FLOAT, minimum=0.0),
        FieldSpec("battery_pct", FLOAT, minimum=0.0, maximum=1.0),
        FieldSpec("note", STRING),
    ),
)


class WireFormatRegistry:
    """Named lookup of the wire formats one gateway understands."""

    def __init__(self, formats: Sequence[WireFormat] = ()) -> None:
        self._formats: Dict[str, WireFormat] = {}
        for wire_format in formats:
            self.register(wire_format)

    def register(self, wire_format: WireFormat, replace: bool = False) -> None:
        """Add a format; re-registering a name requires ``replace``."""
        if wire_format.name in self._formats and not replace:
            raise WireFormatError(
                f"wire format {wire_format.name!r} already registered;"
                f" pass replace=True to swap it"
            )
        self._formats[wire_format.name] = wire_format

    def get(self, name: Any) -> Optional[WireFormat]:
        """The format registered under ``name``, or None."""
        if not isinstance(name, str):
            return None
        return self._formats.get(name)

    def names(self) -> List[str]:
        return sorted(self._formats)

    def __contains__(self, name: str) -> bool:
        return name in self._formats

    def __len__(self) -> int:
        return len(self._formats)


def builtin_registry() -> WireFormatRegistry:
    """A fresh registry holding every built-in wire format."""
    return WireFormatRegistry((PHONE_TRACKER_V1,))
