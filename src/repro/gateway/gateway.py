"""The ingestion gateway: the middleware's hostile-edge boundary.

:class:`IngestionGateway` is where raw external traffic meets the
runtime.  A payload submitted here walks a fixed pipeline::

    format lookup -> crosswalk -> schema -> freshness -> device policy
        -> admission queue -> (forward) engine lane

and every way off that path is accounted for: validation and policy
failures are *rejected* (dead-lettered with stage + reason), overload is
*shed* (dead-lettered with a ``shed``-class stage rather than blocking
or raising), and everything else is *accepted* into the engine's
per-target ingestion lanes.  ``submit`` never raises on bad input -- the
last-resort containment stage dead-letters payloads that break the
pipeline itself.

The crosswalk runs *before* schema validation on purpose: installing a
corrected :class:`~repro.gateway.adapters.Crosswalk` is exactly the
"fix" that makes previously-invalid payloads pass when dead letters are
replayed (:meth:`IngestionGateway.replay`), which is the
replay-after-fix loop the DLQ exists for.

Accept/track decisions for unknown devices live in a swappable
:class:`DevicePolicy` (Dearle et al.: policy-free middleware keeps such
decisions out of component logic): :class:`AutoTrackPolicy` tracks any
schema-valid device on first sight, :class:`ClosedWorldPolicy` admits
only pre-tracked targets.

Accounting invariant (pinned by the storm tests)::

    submitted == accepted + rejected + shed + rate_limited + pending

where ``pending`` is the admission-queue depth; DLQ replays are counted
separately (``dlq.total_replayed``) so clean-path counters always sum
exactly to submissions.  ``rate_limited`` (a per-device token-bucket
verdict, off by default) is deliberately **not** dead-lettered: the
traffic is well-formed excess, and flooding the DLQ ring with it would
evict the malformed payloads replay-after-fix exists for.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.runtime import queues
from repro.runtime.queues import IngestionQueue
from repro.services.remote import RetryPolicy

from .adapters import Crosswalk, CrosswalkError, SourceAdapter
from .dlq import DeadLetter, DeadLetterQueue
from .ratelimit import RateLimiter
from .wire import WireFormat, WireFormatRegistry, builtin_registry

#: Verdicts returned by :meth:`IngestionGateway.submit`.
ADMITTED = "admitted"  # pending in the admission queue
REJECTED = "rejected"  # dead-lettered: validation/policy failure
SHED = "shed"  # dead-lettered: overload at the admission boundary
RATE_LIMITED = "rate_limited"  # shed by the token bucket, NOT dead-lettered

#: The payload field naming its wire format.
FORMAT_FIELD = "source_format"

#: DLQ stages in pipeline order (``admission``/``ingest`` are shed-class).
STAGES = (
    "format",
    "crosswalk",
    "schema",
    "freshness",
    "policy",
    "admission",
    "ingest",
    "internal",
)


class GatewayError(Exception):
    """Raised on invalid gateway configuration or use (never by submit)."""


class _Reject(Exception):
    """Internal control flow: a pipeline stage refused the payload."""

    def __init__(
        self, stage: str, reason: str, adapter: Optional[str] = None
    ) -> None:
        super().__init__(reason)
        self.stage = stage
        self.reason = reason
        self.adapter = adapter


class _RateLimited(_Reject):
    """Internal control flow: the device's token bucket is empty.

    A distinct type (caught before the generic ``_Reject`` handler)
    because the disposition differs: rate-limited payloads are counted
    and reported but never dead-lettered.
    """


# -- device admission policies (the policy seam) ----------------------------


class DevicePolicy:
    """Decides whether an unknown-but-valid device gets a lane.

    ``admit`` returns the keyword arguments for ``engine.track``
    (``capacity``/``policy``/``weight``) to accept the device, or None
    to refuse it.  The gateway consults the policy only for devices the
    engine does not already track.
    """

    def admit(
        self, device_id: str, payload: Mapping[str, Any], tracked: int
    ) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        return {"policy": type(self).__name__}


class AutoTrackPolicy(DevicePolicy):
    """Track any schema-valid device on first sight (the open default).

    ``max_devices`` caps how many devices may be auto-tracked in total
    (None = unbounded); beyond it new devices are refused, which keeps a
    device-id-spraying source from exhausting engine lanes.
    """

    def __init__(
        self,
        *,
        capacity: int = 64,
        policy: str = queues.DROP_OLDEST,
        weight: int = 1,
        max_devices: Optional[int] = None,
    ) -> None:
        self.capacity = capacity
        self.policy = policy
        self.weight = weight
        self.max_devices = max_devices

    def admit(
        self, device_id: str, payload: Mapping[str, Any], tracked: int
    ) -> Optional[Dict[str, Any]]:
        if self.max_devices is not None and tracked >= self.max_devices:
            return None
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "weight": self.weight,
        }

    def describe(self) -> Dict[str, Any]:
        return {
            "policy": type(self).__name__,
            "capacity": self.capacity,
            "lane_policy": self.policy,
            "weight": self.weight,
            "max_devices": self.max_devices,
        }


class ClosedWorldPolicy(DevicePolicy):
    """Admit only devices already tracked on the engine (closed world)."""

    def admit(
        self, device_id: str, payload: Mapping[str, Any], tracked: int
    ) -> Optional[Dict[str, Any]]:
        return None


# -- the gateway -------------------------------------------------------------


class IngestionGateway:
    """Validates, normalises and admits raw external payloads.

    Parameters
    ----------
    engine:
        A :class:`~repro.runtime.engine.PositioningEngine` or
        :class:`~repro.runtime.sharding.ShardedEngine`; needs
        ``is_tracked``/``track``/``submit``.
    source:
        The source-component name new auto-tracked targets are bound to.
    formats:
        Wire formats this gateway understands (the built-in registry --
        ``phone_tracker_v1`` -- by default).  More can be added later
        via :meth:`register_format`.
    device_policy:
        The unknown-device seam; :class:`AutoTrackPolicy` by default.
    admission_capacity / admission_policy:
        The burst-absorbing boundary queue.  ``block`` (the default)
        sheds the *incoming* payload when full; ``drop_oldest`` sheds
        the oldest pending one; ``drop_newest`` behaves like ``block``
        here.  ``coalesce`` is refused: a coalesced-away payload cannot
        be recovered for dead-lettering, which would break accounting.
    dlq_capacity / retry:
        Dead-letter ring bound and the replay backoff/attempt policy.
    max_age_s / max_future_s:
        Freshness window against the injected clock (None = no check).
    clock / time_fn:
        Time source; pass the simulation clock for determinism.
    hub:
        An :class:`~repro.observability.instrumentation.ObservabilityHub`,
        or a zero-arg callable resolving to one (or None) at event time
        -- the middleware passes a callable so the gateway follows the
        hub across enable/disable_observability.
    """

    def __init__(
        self,
        engine: Any,
        source: str,
        *,
        formats: Optional[WireFormatRegistry] = None,
        device_policy: Optional[DevicePolicy] = None,
        admission_capacity: int = 256,
        admission_policy: str = queues.BLOCK,
        dlq_capacity: int = 256,
        retry: Optional[RetryPolicy] = None,
        max_age_s: Optional[float] = None,
        max_future_s: Optional[float] = None,
        rate_limit: Union[None, float, int, RateLimiter] = None,
        clock: Optional[Any] = None,
        time_fn: Optional[Callable[[], float]] = None,
        hub: Union[None, Any, Callable[[], Any]] = None,
    ) -> None:
        if admission_policy == queues.COALESCE:
            raise GatewayError(
                "coalesce is not a valid admission policy: a coalesced"
                " payload cannot be recovered for dead-lettering"
            )
        self.engine = engine
        self.source = source
        self.formats = formats if formats is not None else builtin_registry()
        self.device_policy = (
            device_policy if device_policy is not None else AutoTrackPolicy()
        )
        if clock is not None:

            def _clock_now() -> float:
                return clock.now

            self._now: Callable[[], float] = _clock_now
        elif time_fn is not None:
            self._now = time_fn
        else:
            self._now = _time.monotonic
        self.admission = IngestionQueue(
            "gateway-admission", admission_capacity, admission_policy
        )
        self.dlq = DeadLetterQueue(
            dlq_capacity, retry=retry, time_fn=self._now
        )
        self.max_age_s = max_age_s
        self.max_future_s = max_future_s
        if rate_limit is None or isinstance(rate_limit, RateLimiter):
            self.rate_limiter: Optional[RateLimiter] = rate_limit
        else:
            self.rate_limiter = RateLimiter(float(rate_limit))
        if callable(hub):
            self._hub_fn: Callable[[], Any] = hub
        else:

            def _fixed_hub() -> Any:
                return hub

            self._hub_fn = _fixed_hub
        self._adapters: Dict[str, SourceAdapter] = {
            name: SourceAdapter(self.formats.get(name))  # type: ignore[arg-type]
            for name in self.formats.names()
        }
        self._devices: Dict[str, bool] = {}  # device -> True once lane known
        self.closed = False
        # Clean-path accounting (see module docstring for the invariant).
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.shed = 0
        self.rate_limited = 0

    # -- configuration seams --------------------------------------------------

    def register_format(
        self,
        wire_format: WireFormat,
        *,
        crosswalk: Optional[Crosswalk] = None,
        replace: bool = False,
    ) -> SourceAdapter:
        """Teach the gateway a new wire format (+ optional crosswalk)."""
        self.formats.register(wire_format, replace=replace)
        adapter = SourceAdapter(wire_format, crosswalk=crosswalk)
        self._adapters[wire_format.name] = adapter
        return adapter

    def adapter(self, name: str) -> SourceAdapter:
        """The adapter for one registered format (the crosswalk seam)."""
        try:
            return self._adapters[name]
        except KeyError:
            raise GatewayError(f"no adapter for wire format {name!r}") from None

    def set_device_policy(self, policy: DevicePolicy) -> DevicePolicy:
        """Swap the unknown-device policy; returns the previous one."""
        previous = self.device_policy
        self.device_policy = policy
        return previous

    # -- the submit path (hot, never raises on payload content) --------------

    def submit(self, payload: Any) -> str:
        """Run one raw payload through the pipeline; returns a verdict.

        ``admitted`` -- pending in the admission queue (becomes
        *accepted* when :meth:`forward` hands it to the engine);
        ``rejected`` -- dead-lettered with stage + reason;
        ``shed`` -- dead-lettered because the admission boundary was
        full.  Raises :class:`GatewayError` only when the gateway is
        closed -- payload content never raises.
        """
        if self.closed:
            raise GatewayError("gateway is closed")
        self.submitted += 1
        try:
            adapter, device, datum = self._prepare(payload)
        except _RateLimited as limited:
            # DLQ-exempt shedding: well-formed excess is counted and
            # reported, never dead-lettered (see module docstring).
            self.rate_limited += 1
            self._emit(limited.adapter or "-", "rate_limited")
            return RATE_LIMITED
        except _Reject as reject:
            return self._reject(payload, reject)
        except Exception as exc:  # containment backstop
            return self._reject(
                payload,
                _Reject("internal", f"{type(exc).__name__}: {exc}"),
            )
        # Admission: under drop_oldest the *evicted* payload is the one
        # shed, so recover it before the queue forgets it.
        admission = self.admission
        evicted = admission.evictee()
        verdict = admission.offer(datum)
        if verdict == queues.ACCEPTED:
            if evicted is not None:
                self._shed_datum(
                    evicted, "admission", "evicted by newer arrival"
                )
            return ADMITTED
        # BLOCK -> REJECTED and DROP_NEWEST -> DROPPED both shed the
        # incoming payload; shed is boundary pressure, not adapter fault,
        # so the adapter's rejected counter is left alone.
        self.shed += 1
        self.dlq.push(
            self._raw_of(payload),
            "admission",
            f"admission queue full ({self.admission.policy})",
            adapter=adapter.name,
        )
        self._emit(adapter.name, "shed")
        self._sync_gauges()
        return SHED

    def submit_many(self, payloads: Any) -> Dict[str, int]:
        """Submit a burst; returns verdict counts."""
        counts = {ADMITTED: 0, REJECTED: 0, SHED: 0, RATE_LIMITED: 0}
        for payload in payloads:
            counts[self.submit(payload)] += 1
        return counts

    # -- forwarding into the engine -------------------------------------------

    def forward(self, max_items: Optional[int] = None) -> int:
        """Drain admitted payloads into their engine lanes.

        Returns how many were drained.  Lane-level backpressure verdicts
        (``dropped``/``rejected``) count as *shed*; engine errors are
        dead-lettered at the ``ingest`` stage as *rejected*.
        """
        batch = self.admission.drain(max_items)
        # Hot loop: hub and adapter table resolved once per batch.
        hub = self._hub_fn()
        adapters = self._adapters
        engine_submit = self.engine.submit
        for datum in batch:
            attributes = datum.attributes
            device = attributes["device"]
            adapter_name = attributes["format"]
            try:
                verdict = engine_submit(device, datum)
            except Exception as exc:
                self.rejected += 1
                self.dlq.push(
                    self._raw_of(attributes.get("raw", datum.payload)),
                    "ingest",
                    f"{type(exc).__name__}: {exc}",
                    adapter=adapter_name,
                )
                if hub is not None:
                    hub.gateway_event(adapter_name, "rejected")
                continue
            if verdict in (queues.ACCEPTED, queues.COALESCED):
                self.accepted += 1
                adapter = adapters.get(adapter_name)
                if adapter is not None:
                    adapter.accepted += 1
                if hub is not None:
                    hub.gateway_event(adapter_name, "accepted")
            else:
                self._shed_datum(datum, "ingest", f"lane verdict {verdict}")
        self._sync_gauges()
        return len(batch)

    # -- replay-after-fix ------------------------------------------------------

    def replay(
        self,
        seq: Optional[int] = None,
        *,
        ignore_backoff: bool = False,
    ) -> Dict[str, int]:
        """Re-run pending dead letters through the full pipeline.

        With no ``seq``, every pending record whose backoff window has
        elapsed is attempted (oldest first); with ``seq``, just that
        record (``ignore_backoff=True`` overrides its window).  Replay
        bypasses the admission queue -- a successful record goes
        straight to its engine lane and turns ``replayed``; a failed one
        backs off per the retry policy until the attempt cap parks it
        ``exhausted``.  Replays never touch the clean-path counters.
        """
        now = self._now()
        if seq is not None:
            record = self.dlq.get(seq)
            if record is None:
                raise GatewayError(f"no dead letter with seq {seq}")
            if record.state != "pending":
                raise GatewayError(
                    f"dead letter {seq} is {record.state}, not pending"
                )
            targets = [record]
            if not ignore_backoff and record.next_attempt_s > now:
                targets = []
        else:
            targets = self.dlq.due(now)
        outcome = {"attempted": 0, "replayed": 0, "failed": 0, "exhausted": 0}
        for record in targets:
            outcome["attempted"] += 1
            error = self._replay_one(record)
            if error is None:
                self.dlq.mark_replayed(record)
                outcome["replayed"] += 1
            else:
                self.dlq.mark_failed(record, error, now)
                if record.state == "exhausted":
                    outcome["exhausted"] += 1
                else:
                    outcome["failed"] += 1
        self._sync_gauges()
        return outcome

    def _replay_one(self, record: DeadLetter) -> Optional[str]:
        """One replay attempt; returns an error string or None on success."""
        try:
            adapter, device, datum = self._prepare(record.raw, rate_limit=False)
        except _Reject as reject:
            return f"{reject.stage}: {reject.reason}"
        except Exception as exc:
            return f"internal: {type(exc).__name__}: {exc}"
        try:
            verdict = self.engine.submit(device, datum)
        except Exception as exc:
            return f"ingest: {type(exc).__name__}: {exc}"
        if verdict in (queues.ACCEPTED, queues.COALESCED):
            adapter.accepted += 1
            self._emit(adapter.name, "replayed")
            return None
        return f"ingest: lane verdict {verdict}"

    # -- pipeline stages -------------------------------------------------------

    def _prepare(self, payload: Any, *, rate_limit: bool = True) -> Any:
        """format -> crosswalk -> schema -> freshness -> rate limit ->
        device policy.

        Returns ``(adapter, device, datum)`` or raises :class:`_Reject`
        (:class:`_RateLimited` for an empty token bucket).  Replay
        passes ``rate_limit=False``: an operator-driven replay is not
        edge traffic.
        """
        # Exact-dict probe first: ABC isinstance is measurably slow and
        # raw JSON traffic is dicts, Mapping is the slow-path courtesy.
        if type(payload) is not dict and not isinstance(payload, Mapping):
            raise _Reject(
                "format",
                f"payload must be a mapping, got {type(payload).__name__}",
            )
        format_name = payload.get(FORMAT_FIELD)
        wire = self.formats.get(format_name)
        if wire is None:
            raise _Reject(
                "format", f"unknown {FORMAT_FIELD} {format_name!r}"
            )
        adapter = self._adapters[wire.name]
        try:
            normalized = adapter.normalize(payload)
        except CrosswalkError as exc:
            raise _Reject("crosswalk", str(exc), adapter.name) from None
        errors = wire.validate(normalized)
        if errors:
            raise _Reject("schema", "; ".join(errors), adapter.name)
        timestamp = wire.timestamp_of(normalized)
        if self.max_age_s is not None or self.max_future_s is not None:
            now = self._now()
            if self.max_age_s is not None and now - timestamp > self.max_age_s:
                raise _Reject(
                    "freshness",
                    f"stale: {now - timestamp:.3f}s old"
                    f" (max_age_s={self.max_age_s})",
                    adapter.name,
                )
            if (
                self.max_future_s is not None
                and timestamp - now > self.max_future_s
            ):
                raise _Reject(
                    "freshness",
                    f"future: {timestamp - now:.3f}s ahead"
                    f" (max_future_s={self.max_future_s})",
                    adapter.name,
                )
        device = wire.device_of(normalized)
        if device is None:
            raise _Reject(
                "policy",
                f"payload names no device id ({wire.device_field!r})",
                adapter.name,
            )
        limiter = self.rate_limiter
        if (
            rate_limit
            and limiter is not None
            and not limiter.allow(adapter.name, device, self._now())
        ):
            raise _RateLimited(
                "rate_limit",
                f"device {device!r} over {limiter.rate:g}/s"
                f" (burst {limiter.burst:g})",
                adapter.name,
            )
        if device not in self._devices:
            if not self.engine.is_tracked(device):
                lane_kwargs = self.device_policy.admit(
                    device, normalized, len(self._devices)
                )
                if lane_kwargs is None:
                    raise _Reject(
                        "policy",
                        f"device {device!r} not admitted by"
                        f" {type(self.device_policy).__name__}",
                        adapter.name,
                    )
                self.engine.track(device, self.source, **lane_kwargs)
            self._devices[device] = True
        # Inline _raw_of: payload is known to be a mapping by now.
        raw = payload if type(payload) is dict else dict(payload)
        datum = adapter.datum_of(normalized, device, timestamp, raw=raw)
        return adapter, device, datum

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _raw_of(payload: Any) -> Dict[str, Any]:
        """The payload as the DLQ stores it (a real dict, patchable)."""
        if type(payload) is dict:
            return payload
        if isinstance(payload, Mapping):
            return dict(payload)
        return {"payload": payload}

    def _reject(self, payload: Any, reject: _Reject) -> str:
        self.rejected += 1
        if reject.adapter is not None:
            adapter = self._adapters.get(reject.adapter)
            if adapter is not None:
                adapter.rejected += 1
        self.dlq.push(
            self._raw_of(payload),
            reject.stage,
            reject.reason,
            adapter=reject.adapter,
        )
        self._emit(reject.adapter or "-", "rejected")
        self._sync_gauges()
        return REJECTED

    def _shed_datum(self, datum: Any, stage: str, reason: str) -> None:
        """Dead-letter a previously-admitted datum as shed."""
        self.shed += 1
        adapter_name = datum.attributes.get("format", "-")
        self.dlq.push(
            self._raw_of(datum.attributes.get("raw", datum.payload)),
            stage,
            reason,
            adapter=adapter_name,
        )
        self._emit(adapter_name, "shed")

    def _emit(self, adapter: str, outcome: str) -> None:
        hub = self._hub_fn()
        if hub is not None:
            hub.gateway_event(adapter, outcome)

    def _sync_gauges(self) -> None:
        hub = self._hub_fn()
        if hub is not None:
            hub.dlq_state(
                len(self.dlq),
                self.dlq.total_replayed,
                self.dlq.total_exhausted,
            )

    # -- inspection ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Payloads admitted but not yet forwarded."""
        return self.admission.depth

    def dead_letters(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Inspection summaries of retained DLQ records."""
        return [record.summary() for record in self.dlq.records(state)]

    def snapshot(self) -> Dict[str, Any]:
        """Reflective summary -- what PSL ``describe`` and the report use."""
        return {
            "source": self.source,
            "closed": self.closed,
            "formats": self.formats.names(),
            "adapters": {
                name: adapter.describe()
                for name, adapter in sorted(self._adapters.items())
            },
            "device_policy": self.device_policy.describe(),
            "devices": len(self._devices),
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "rate_limited": self.rate_limited,
            "pending": self.admission.depth,
            "admission": self.admission.stats(),
            "rate_limit": (
                self.rate_limiter.describe()
                if self.rate_limiter is not None
                else None
            ),
            "dlq": self.dlq.stats(),
            "freshness": {
                "max_age_s": self.max_age_s,
                "max_future_s": self.max_future_s,
            },
        }

    def close(self) -> None:
        """Stop accepting traffic (pending/DLQ stay inspectable)."""
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"IngestionGateway(source={self.source!r},"
            f" formats={self.formats.names()},"
            f" submitted={self.submitted}, dlq={len(self.dlq)})"
        )
