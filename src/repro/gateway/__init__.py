"""Ingestion gateway: the middleware's edge for raw external traffic.

The store-cleanse-forward boundary (SNIPPETS.md Snippet 2) in front of
the scale-out runtime: versioned wire formats
(:mod:`repro.gateway.wire`), per-source adapters with crosswalk
normalisation (:mod:`repro.gateway.adapters`), a bounded dead-letter
queue with replay-after-fix (:mod:`repro.gateway.dlq`), and the
:class:`IngestionGateway` pipeline tying them together in front of a
:class:`~repro.runtime.engine.PositioningEngine` or
:class:`~repro.runtime.sharding.ShardedEngine`
(:mod:`repro.gateway.gateway`).
"""

from .adapters import (
    Crosswalk,
    CrosswalkError,
    FieldMap,
    SourceAdapter,
    scale,
)
from .dlq import (
    EXHAUSTED,
    PENDING,
    REPLAYED,
    DeadLetter,
    DeadLetterQueue,
)
from .gateway import (
    ADMITTED,
    RATE_LIMITED,
    REJECTED,
    SHED,
    STAGES,
    AutoTrackPolicy,
    ClosedWorldPolicy,
    DevicePolicy,
    GatewayError,
    IngestionGateway,
)
from .ratelimit import RateLimiter, RateLimitError, TokenBucket
from .wire import (
    PHONE_TRACKER_V1,
    FieldSpec,
    WireFormat,
    WireFormatError,
    WireFormatRegistry,
    builtin_registry,
    parse_timestamp,
)

__all__ = [
    "ADMITTED",
    "EXHAUSTED",
    "PENDING",
    "PHONE_TRACKER_V1",
    "RATE_LIMITED",
    "REJECTED",
    "REPLAYED",
    "SHED",
    "STAGES",
    "AutoTrackPolicy",
    "ClosedWorldPolicy",
    "Crosswalk",
    "CrosswalkError",
    "DeadLetter",
    "DeadLetterQueue",
    "DevicePolicy",
    "FieldMap",
    "FieldSpec",
    "GatewayError",
    "IngestionGateway",
    "RateLimitError",
    "RateLimiter",
    "SourceAdapter",
    "TokenBucket",
    "WireFormat",
    "WireFormatError",
    "WireFormatRegistry",
    "builtin_registry",
    "parse_timestamp",
    "scale",
]
