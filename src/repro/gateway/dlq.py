"""Bounded dead-letter queue with replay-after-fix lifecycle.

Every payload the gateway cannot forward becomes a :class:`DeadLetter`:
the raw payload exactly as submitted, the pipeline stage that rejected
it, a human-readable reason, and a timestamp.  The queue is a bounded
ring -- under sustained rejection the *oldest* records are evicted (and
counted) rather than growing without bound, which is what keeps
DLQ-heavy traffic memory-safe (ISSUE acceptance: "DLQ ring bounded").

Replay-after-fix: an operator patches the payload
(:meth:`DeadLetterQueue.patch`) or installs a corrected crosswalk on
the adapter, then asks the gateway to replay.  Replay scheduling reuses
the middleware's real :class:`~repro.services.remote.RetryPolicy` on an
injected clock: each failed attempt pushes the record's
``next_attempt_s`` out by ``backoff_s * multiplier**(attempts-1)``, and
once ``attempts`` reaches ``max_attempts`` the record lands in the
terminal ``exhausted`` state -- poison messages stop looping instead of
burning replay cycles forever.

States::

    pending --replay ok--> replayed           (terminal, success)
    pending --replay fails, attempts < cap--> pending (backoff applied)
    pending --replay fails, attempts = cap--> exhausted (terminal)
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.services.remote import RetryPolicy

#: Record lifecycle states.
PENDING = "pending"
REPLAYED = "replayed"
EXHAUSTED = "exhausted"


@dataclass
class DeadLetter:
    """One rejected payload and its replay bookkeeping."""

    seq: int
    raw: Dict[str, Any]
    stage: str
    reason: str
    adapter: Optional[str]
    time_s: float
    attempts: int = 0
    state: str = PENDING
    next_attempt_s: float = 0.0
    last_error: Optional[str] = None
    history: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        """Inspection dict (what PSL ``dead_letters`` returns)."""
        return {
            "seq": self.seq,
            "stage": self.stage,
            "reason": self.reason,
            "adapter": self.adapter,
            "time_s": self.time_s,
            "attempts": self.attempts,
            "state": self.state,
            "next_attempt_s": self.next_attempt_s,
            "last_error": self.last_error,
        }


class DeadLetterQueue:
    """Bounded ring of :class:`DeadLetter` records with replay scheduling.

    Parameters
    ----------
    capacity:
        Maximum records retained; pushing past it evicts the oldest
        (counted in ``evicted``).
    retry:
        Backoff/attempt policy governing replay; ``max_attempts`` is the
        per-record cap before the terminal ``exhausted`` state.
    time_fn:
        Clock source for record/backoff timestamps (inject the
        simulation clock's ``now``; defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        retry: Optional[RetryPolicy] = None,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"DLQ capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retry = retry if retry is not None else RetryPolicy()
        self._time_fn = time_fn if time_fn is not None else _time.monotonic
        self._records: Dict[int, DeadLetter] = {}  # insertion-ordered ring
        self._next_seq = 0
        self.evicted = 0
        self.total_pushed = 0
        self.total_replayed = 0
        self.total_exhausted = 0
        self.total_discarded = 0

    # -- intake ---------------------------------------------------------------

    def push(
        self,
        raw: Dict[str, Any],
        stage: str,
        reason: str,
        *,
        adapter: Optional[str] = None,
    ) -> DeadLetter:
        """Record one rejection; evicts the oldest record when full."""
        record = DeadLetter(
            seq=self._next_seq,
            raw=raw,
            stage=stage,
            reason=reason,
            adapter=adapter,
            time_s=self._time_fn(),
        )
        self._next_seq += 1
        self._records[record.seq] = record
        self.total_pushed += 1
        while len(self._records) > self.capacity:
            oldest = next(iter(self._records))
            del self._records[oldest]
            self.evicted += 1
        return record

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(list(self._records.values()))

    def get(self, seq: int) -> Optional[DeadLetter]:
        return self._records.get(seq)

    def records(self, state: Optional[str] = None) -> List[DeadLetter]:
        """Retained records, oldest first, optionally filtered by state."""
        if state is None:
            return list(self._records.values())
        return [r for r in self._records.values() if r.state == state]

    def pending(self) -> List[DeadLetter]:
        return self.records(PENDING)

    def due(self, now: float) -> List[DeadLetter]:
        """Pending records whose backoff window has elapsed at ``now``."""
        return [
            r
            for r in self._records.values()
            if r.state == PENDING and r.next_attempt_s <= now
        ]

    # -- operator fixes -------------------------------------------------------

    def patch(self, seq: int, **fields: Any) -> DeadLetter:
        """Fix a record's raw payload in place (the payload-level fix).

        Patching also resets the backoff window: an operator fix is a
        reason to try again now, not after the old failure's backoff.
        """
        record = self._records.get(seq)
        if record is None:
            raise KeyError(f"no dead letter with seq {seq}")
        if record.state != PENDING:
            raise ValueError(
                f"dead letter {seq} is {record.state}; only pending"
                f" records can be patched"
            )
        record.raw.update(fields)
        record.next_attempt_s = 0.0
        record.history.append(f"patched fields {sorted(fields)}")
        return record

    def discard(self, seq: int) -> bool:
        """Drop a record the operator has decided not to replay."""
        if seq in self._records:
            del self._records[seq]
            self.total_discarded += 1
            return True
        return False

    # -- replay bookkeeping (driven by the gateway) ---------------------------

    def mark_replayed(self, record: DeadLetter) -> None:
        record.state = REPLAYED
        record.history.append("replayed")
        self.total_replayed += 1

    def mark_failed(self, record: DeadLetter, error: str, now: float) -> None:
        """One failed replay attempt: back off, or exhaust at the cap."""
        record.attempts += 1
        record.last_error = error
        record.history.append(f"attempt {record.attempts} failed: {error}")
        if record.attempts >= self.retry.max_attempts:
            record.state = EXHAUSTED
            self.total_exhausted += 1
        else:
            backoff = self.retry.backoff_s * (
                self.retry.multiplier ** (record.attempts - 1)
            )
            record.next_attempt_s = now + backoff

    # -- durability -----------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Any]:
        """Full record state so dead letters survive a restart."""
        return {
            "next_seq": self._next_seq,
            "evicted": self.evicted,
            "total_pushed": self.total_pushed,
            "total_replayed": self.total_replayed,
            "total_exhausted": self.total_exhausted,
            "total_discarded": self.total_discarded,
            "records": [
                {
                    "seq": r.seq,
                    "raw": dict(r.raw),
                    "stage": r.stage,
                    "reason": r.reason,
                    "adapter": r.adapter,
                    "time_s": r.time_s,
                    "attempts": r.attempts,
                    "state": r.state,
                    "next_attempt_s": r.next_attempt_s,
                    "last_error": r.last_error,
                    "history": list(r.history),
                }
                for r in self._records.values()
            ],
        }

    def state_restore(self, state: Dict[str, Any]) -> None:
        """Rehydrate records and counters from a snapshot."""
        self._next_seq = state["next_seq"]
        self.evicted = state["evicted"]
        self.total_pushed = state["total_pushed"]
        self.total_replayed = state["total_replayed"]
        self.total_exhausted = state["total_exhausted"]
        self.total_discarded = state["total_discarded"]
        self._records = {}
        for fields in state["records"]:
            record = DeadLetter(**fields)
            self._records[record.seq] = record
        while len(self._records) > self.capacity:
            oldest = next(iter(self._records))
            del self._records[oldest]
            self.evicted += 1

    # -- stats ----------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {PENDING: 0, REPLAYED: 0, EXHAUSTED: 0}
        by_stage: Dict[str, int] = {}
        for record in self._records.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
            by_stage[record.stage] = by_stage.get(record.stage, 0) + 1
        return {
            "depth": len(self._records),
            "capacity": self.capacity,
            "evicted": self.evicted,
            "total_pushed": self.total_pushed,
            "total_replayed": self.total_replayed,
            "total_exhausted": self.total_exhausted,
            "total_discarded": self.total_discarded,
            "by_state": by_state,
            "by_stage": dict(sorted(by_stage.items())),
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "backoff_s": self.retry.backoff_s,
                "multiplier": self.retry.multiplier,
            },
        }
