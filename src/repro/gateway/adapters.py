"""Per-source adapters: crosswalk raw wire payloads into engine datums.

The "cleanse" step of the store-cleanse-forward shape (SNIPPETS.md
Snippet 2).  A :class:`Crosswalk` is an ordered list of
:class:`FieldMap` rules -- field renames, unit conversions, default
fills -- applied to the raw payload *before* schema validation, so a
source that ships ``latitude``/``longitude`` in the wrong unit can be
brought onto the ``phone_tracker_v1`` contract without touching the
device.  Because the crosswalk runs first, installing a corrected
mapping is exactly what makes a previously-rejected payload pass on DLQ
replay: the fix lives in middleware configuration, not in edits to
historical payloads.

A :class:`SourceAdapter` binds one wire format to one optional
crosswalk and mints :class:`~repro.core.data.Datum` objects from
normalised payloads, tagging them with the originating device, format
and raw payload so downstream stages (and the DLQ) can always recover
provenance.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.data import Datum, Kind

from .wire import WireFormat

_MISSING = object()


class CrosswalkError(Exception):
    """Raised when a crosswalk rule cannot be applied to a payload."""


class FieldMap:
    """One crosswalk rule: map ``source`` in the raw payload to ``dest``.

    ``convert`` transforms the value when the source field is present;
    ``default`` fills ``dest`` when it is absent (the default is *not*
    converted -- it is already in contract units).  ``required=True``
    makes a missing source field (with no default) a
    :class:`CrosswalkError` instead of a silent skip.
    """

    __slots__ = ("source", "dest", "convert", "default", "required")

    def __init__(
        self,
        source: str,
        dest: str,
        *,
        convert: Optional[Callable[[Any], Any]] = None,
        default: Any = _MISSING,
        required: bool = False,
    ) -> None:
        if not source or not dest:
            raise CrosswalkError("FieldMap source and dest must be non-empty")
        self.source = source
        self.dest = dest
        self.convert = convert
        self.default = default
        self.required = required

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"source": self.source, "dest": self.dest}
        if self.convert is not None:
            out["convert"] = getattr(self.convert, "__name__", repr(self.convert))
        if self.default is not _MISSING:
            out["default"] = self.default
        if self.required:
            out["required"] = True
        return out

    def __repr__(self) -> str:
        return f"FieldMap({self.source!r} -> {self.dest!r})"


def scale(factor: float) -> Callable[[Any], Any]:
    """A unit-conversion callable for :class:`FieldMap` (e.g. km/h->m/s)."""

    def _scale(value: Any) -> Any:
        return value * factor

    _scale.__name__ = f"scale({factor:g})"
    return _scale


class Crosswalk:
    """An ordered set of :class:`FieldMap` rules over one payload shape.

    ``passthrough=True`` (the default) copies unmapped raw fields into
    the output untouched; mapped source fields are consumed (renamed,
    not duplicated).  With ``passthrough=False`` only mapped ``dest``
    fields survive -- a strict allow-list for noisy sources.
    """

    def __init__(
        self, maps: Sequence[FieldMap] = (), *, passthrough: bool = True
    ) -> None:
        self._maps: List[FieldMap] = list(maps)
        self.passthrough = passthrough

    def add(self, field_map: FieldMap) -> None:
        """Append a rule at runtime (the replay-after-fix seam)."""
        self._maps.append(field_map)

    @property
    def maps(self) -> List[FieldMap]:
        return list(self._maps)

    def __len__(self) -> int:
        return len(self._maps)

    def apply(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Produce the normalised payload; raises :class:`CrosswalkError`."""
        consumed = {m.source for m in self._maps}
        if self.passthrough:
            out = {k: v for k, v in payload.items() if k not in consumed}
        else:
            out = {}
        for rule in self._maps:
            value = payload.get(rule.source, _MISSING)
            if value is _MISSING:
                if rule.default is not _MISSING:
                    out[rule.dest] = rule.default
                elif rule.required:
                    raise CrosswalkError(
                        f"crosswalk requires field {rule.source!r}"
                        f" (mapped to {rule.dest!r})"
                    )
                continue
            if rule.convert is not None:
                try:
                    value = rule.convert(value)
                except Exception as exc:
                    raise CrosswalkError(
                        f"crosswalk convert failed for field {rule.source!r}:"
                        f" {type(exc).__name__}: {exc}"
                    ) from exc
            out[rule.dest] = value
        return out

    def describe(self) -> Dict[str, Any]:
        return {
            "passthrough": self.passthrough,
            "maps": [rule.describe() for rule in self._maps],
        }


class SourceAdapter:
    """Normalises one wire format's payloads into engine datums."""

    def __init__(
        self,
        wire_format: WireFormat,
        *,
        kind: str = Kind.POSITION_WGS84,
        crosswalk: Optional[Crosswalk] = None,
        name: Optional[str] = None,
    ) -> None:
        self.wire_format = wire_format
        self.kind = kind
        self.crosswalk = crosswalk
        self.name = name if name is not None else wire_format.name
        self.accepted = 0
        self.rejected = 0

    def set_crosswalk(self, crosswalk: Optional[Crosswalk]) -> None:
        """Install/replace/remove the crosswalk (replay-after-fix seam)."""
        self.crosswalk = crosswalk

    def normalize(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Crosswalked payload -- or the raw dict untouched when no
        crosswalk is installed (zero-copy fast path; callers must not
        mutate the result)."""
        if self.crosswalk is None or len(self.crosswalk) == 0:
            return payload if isinstance(payload, dict) else dict(payload)
        return self.crosswalk.apply(payload)

    def datum_of(
        self,
        normalized: Mapping[str, Any],
        device: str,
        timestamp: float,
        *,
        raw: Optional[Dict[str, Any]] = None,
    ) -> Datum:
        """Mint the engine-facing datum for an accepted payload.

        ``raw`` (the original wire payload) rides along as an attribute
        so shed/ingest-stage dead letters can always recover it.  The
        datum is pre-stamped with ``target`` -- gateway lanes are keyed
        by device, and stamping here keeps ``engine.submit`` from
        re-building the datum on the hot path.  A dict ``normalized``
        becomes the datum payload *without copying* (the gateway owns
        submitted payloads once accepted; callers must not mutate them
        afterwards -- the same contract as :meth:`normalize`).
        """
        attributes: Dict[str, Any] = {
            "device": device,
            "format": self.wire_format.name,
            "target": device,
        }
        if raw is not None:
            attributes["raw"] = raw
        return Datum(
            kind=self.kind,
            payload=(
                normalized
                if type(normalized) is dict
                else dict(normalized)
            ),
            timestamp=timestamp,
            producer=f"gateway:{self.name}",
            attributes=attributes,
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "format": self.wire_format.name,
            "kind": self.kind,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "crosswalk": (
                self.crosswalk.describe() if self.crosswalk is not None else None
            ),
        }

    def __repr__(self) -> str:
        return f"SourceAdapter({self.name!r}, format={self.wire_format.name!r})"
