"""Per-device rate limiting at the gateway edge.

A chatty (or hostile) device must not be able to monopolise the
admission boundary: the gateway can shed its excess *before* paying for
crosswalk/schema work on every payload and before the admission queue
evicts well-behaved traffic.  The mechanism is the classic token
bucket, clock-injected like everything else in the middleware so tests
and simulations are deterministic:

* each ``(adapter, device)`` pair owns a :class:`TokenBucket` refilled
  at ``rate`` tokens per (injected-clock) second up to ``burst``;
* a payload that finds no token is *rate-limited* -- counted and
  reported, but **not** dead-lettered: by definition the traffic is
  well-formed excess, and letting it flood the DLQ ring would evict the
  malformed payloads an operator actually needs to replay-after-fix.

``max_keys`` bounds the key table (oldest-inserted evicted first) so a
device-id-spraying source cannot exhaust coordinator memory through
the limiter itself.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple


class RateLimitError(Exception):
    """Raised on invalid rate-limiter configuration."""


class TokenBucket:
    """One key's bucket: ``rate`` tokens/s refill, ``burst`` ceiling."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def allow(self, now: float) -> bool:
        """Take one token if available at time ``now``."""
        elapsed = now - self.updated
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RateLimiter:
    """Token buckets keyed by ``(adapter, device)``.

    Parameters
    ----------
    rate:
        Sustained tokens (payloads) per second per device.
    burst:
        Bucket ceiling -- how large an instantaneous burst one device
        may land before throttling; defaults to ``rate``.
    max_keys:
        Bound on distinct ``(adapter, device)`` buckets retained;
        oldest-inserted are evicted first (a re-seen evicted device
        simply starts a fresh full bucket).
    """

    def __init__(
        self,
        rate: float,
        *,
        burst: float | None = None,
        max_keys: int = 4096,
    ) -> None:
        if rate <= 0:
            raise RateLimitError("rate must be positive")
        if burst is not None and burst < 1:
            raise RateLimitError("burst must be >= 1")
        if max_keys < 1:
            raise RateLimitError("max_keys must be >= 1")
        self.rate = rate
        self.burst = float(burst if burst is not None else max(rate, 1.0))
        self.max_keys = max_keys
        self._buckets: Dict[Tuple[str, str], TokenBucket] = {}
        self.allowed = 0
        self.limited = 0
        self.evicted_keys = 0

    def allow(self, adapter: str, device: str, now: float) -> bool:
        """Whether one payload from ``device`` may pass at time ``now``."""
        key = (adapter, device)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = TokenBucket(
                self.rate, self.burst, now
            )
            while len(self._buckets) > self.max_keys:
                oldest = next(iter(self._buckets))
                del self._buckets[oldest]
                self.evicted_keys += 1
        if bucket.allow(now):
            self.allowed += 1
            return True
        self.limited += 1
        return False

    def __len__(self) -> int:
        return len(self._buckets)

    def describe(self) -> Dict[str, Any]:
        """Reflective summary for the gateway snapshot and the report."""
        return {
            "rate": self.rate,
            "burst": self.burst,
            "max_keys": self.max_keys,
            "keys": len(self._buckets),
            "allowed": self.allowed,
            "limited": self.limited,
            "evicted_keys": self.evicted_keys,
        }
