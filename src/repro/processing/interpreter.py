"""The Interpreter component: NMEA sentences to WGS84 positions.

Fig. 1/Fig. 4: the Interpreter "only returns a value when a valid
position is produced", so several NMEA sentences may contribute to one
WGS84 output -- the case the Fig. 4 data tree illustrates.  Sentences
without a fix advance logical time but produce nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.geo.wgs84 import Wgs84Position
from repro.sensors.nmea import GgaSentence


class NmeaInterpreterComponent(ProcessingComponent):
    """Turns GGA sentences carrying a valid fix into WGS84 positions.

    ``uere_m`` scales the reported HDOP into an accuracy estimate on the
    produced position, the way receiver stacks approximate 1-sigma error.
    """

    def __init__(self, name: str = "interpreter", uere_m: float = 5.0) -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.NMEA_SENTENCE,)),),
            output=OutputPort((Kind.POSITION_WGS84,)),
        )
        self._uere_m = uere_m
        self.sentences_seen = 0
        self.positions_produced = 0

    def process(self, port_name: str, datum: Datum) -> None:
        self.sentences_seen += 1
        sentence = datum.payload
        if not isinstance(sentence, GgaSentence) or not sentence.has_fix:
            return
        accuracy: Optional[float] = (
            sentence.hdop * self._uere_m if sentence.hdop else None
        )
        position = Wgs84Position(
            latitude_deg=sentence.latitude_deg,
            longitude_deg=sentence.longitude_deg,
            altitude_m=sentence.altitude_m or 0.0,
            accuracy_m=accuracy,
            timestamp=datum.timestamp,
        )
        self.positions_produced += 1
        self.produce(
            Datum(
                kind=Kind.POSITION_WGS84,
                payload=position,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )

    def yield_rate(self) -> float:
        """Fraction of sentences that produced a position (inspection)."""
        if not self.sentences_seen:
            return 0.0
        return self.positions_produced / self.sentences_seen
