"""Pipeline builders: assembling the paper's figures onto a middleware.

These functions wire stock components into a
:class:`~repro.core.middleware.PerPos` instance and return the component
names involved, so examples, tests and benchmarks share one definition of
each figure's topology.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.data import Kind
from repro.core.middleware import PerPos
from repro.core.positioning import LocationProvider
from repro.model.building import Building
from repro.model.demo import demo_radio_environment, demo_survey_positions
from repro.processing.fusion import BestAccuracyFusionComponent
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.parser import NmeaParserComponent
from repro.processing.resolver import RoomResolverComponent
from repro.processing.wifi_positioning import FingerprintPositioningComponent
from repro.sensors.base import SimulatedSensor
from repro.sensors.wifi import build_radio_map


@dataclass(frozen=True)
class GpsPipeline:
    """Names of the components of one GPS strand."""

    source: str
    parser: str
    interpreter: str


@dataclass(frozen=True)
class WifiPipeline:
    """Names of the components of one WiFi strand."""

    source: str
    engine: str


@dataclass(frozen=True)
class RoomApp:
    """The Fig. 1 Room Number Application wiring."""

    gps: GpsPipeline
    wifi: WifiPipeline
    fusion: str
    resolver: str
    provider: LocationProvider


def build_gps_pipeline(
    middleware: PerPos,
    gps_sensor: SimulatedSensor,
    prefix: str = "gps",
) -> GpsPipeline:
    """source -> Parser -> Interpreter (Fig. 1 upper strand)."""
    source = middleware.attach_sensor(
        gps_sensor, (Kind.NMEA_RAW,), source_name=f"{prefix}"
    )
    parser = NmeaParserComponent(name=f"{prefix}-parser")
    interpreter = NmeaInterpreterComponent(name=f"{prefix}-interpreter")
    middleware.graph.add(parser)
    middleware.graph.add(interpreter)
    middleware.graph.connect(source.name, parser.name)
    middleware.graph.connect(parser.name, interpreter.name)
    return GpsPipeline(source.name, parser.name, interpreter.name)


def build_wifi_pipeline(
    middleware: PerPos,
    wifi_sensor: SimulatedSensor,
    building: Building,
    prefix: str = "wifi",
    k: int = 3,
    survey_spacing_m: float = 2.0,
) -> WifiPipeline:
    """source -> fingerprint engine (Fig. 1 lower strand).

    The engine is calibrated against the building's demo radio
    environment: the offline survey the paper's infrastructure already
    had.
    """
    source = middleware.attach_sensor(
        wifi_sensor, (Kind.WIFI_SCAN,), source_name=f"{prefix}"
    )
    environment = demo_radio_environment(building)
    radio_map = build_radio_map(
        environment, demo_survey_positions(survey_spacing_m)
    )
    engine = FingerprintPositioningComponent(
        radio_map, building.grid, k=k, name=f"{prefix}-positioning"
    )
    middleware.graph.add(engine)
    middleware.graph.connect(source.name, engine.name)
    return WifiPipeline(source.name, engine.name)


def build_room_app(
    middleware: PerPos,
    gps_sensor: SimulatedSensor,
    wifi_sensor: SimulatedSensor,
    building: Building,
    provider_name: str = "room-app",
) -> RoomApp:
    """The complete Fig. 1 configuration.

    GPS and WiFi strands merge in a fusion component; the Resolver turns
    fused positions into room ids; the application sink receives both the
    WGS84 positions and the room ids ("shows the current position as a
    point on a map when outdoor and highlights the currently occupied
    room when within a building").
    """
    gps = build_gps_pipeline(middleware, gps_sensor)
    wifi = build_wifi_pipeline(middleware, wifi_sensor, building)
    fusion = BestAccuracyFusionComponent(name="fusion")
    resolver = RoomResolverComponent(building, name="resolver")
    middleware.graph.add(fusion)
    middleware.graph.add(resolver)
    middleware.graph.connect(gps.interpreter, fusion.name)
    middleware.graph.connect(wifi.engine, fusion.name)
    middleware.graph.connect(fusion.name, resolver.name)
    provider = middleware.create_provider(
        provider_name,
        accepts=(Kind.POSITION_WGS84, Kind.ROOM_ID),
        technologies=("gps", "wifi"),
    )
    middleware.graph.connect(fusion.name, provider.sink.name)
    middleware.graph.connect(resolver.name, provider.sink.name)
    return RoomApp(gps, wifi, fusion.name, resolver.name, provider)
