"""The WiFi fingerprint positioning engine.

Substitution for the paper's campus "indoor WiFi positioning system"
(Fig. 1): classic two-phase fingerprinting.  The offline phase is a radio
map -- RSSI vectors at known grid positions, built by
:func:`repro.sensors.wifi.build_radio_map` -- and the online phase is
weighted k-nearest-neighbours in signal space, producing positions in
both the building grid and WGS84.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.geo.grid import GridPosition, LocalGrid
from repro.sensors.wifi import WifiScan


def signal_distance(
    a: Mapping[str, float], b: Mapping[str, float], missing_dbm: float = -95.0
) -> float:
    """Euclidean distance between RSSI vectors over the union of APs.

    APs heard in one vector but not the other count as received at the
    noise floor, which penalises disagreeing coverage sets.
    """
    keys = set(a) | set(b)
    if not keys:
        return float("inf")
    total = 0.0
    for key in keys:
        va = a.get(key, missing_dbm)
        vb = b.get(key, missing_dbm)
        total += (va - vb) ** 2
    return math.sqrt(total / len(keys))


class FingerprintPositioningComponent(ProcessingComponent):
    """Weighted-kNN fingerprint matcher over a survey radio map."""

    def __init__(
        self,
        radio_map: Sequence[Tuple[GridPosition, Mapping[str, float]]],
        grid: LocalGrid,
        k: int = 3,
        name: str = "wifi-positioning",
        min_observations: int = 1,
    ) -> None:
        if not radio_map:
            raise ValueError("radio map must not be empty")
        if k <= 0:
            raise ValueError("k must be positive")
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.WIFI_SCAN,)),),
            output=OutputPort((Kind.POSITION_WGS84, Kind.POSITION_GRID)),
        )
        self.radio_map = [
            (pos, dict(vector)) for pos, vector in radio_map if vector
        ]
        self.grid = grid
        self.k = k
        self.min_observations = min_observations

    def process(self, port_name: str, datum: Datum) -> None:
        scan = datum.payload
        if not isinstance(scan, WifiScan):
            return
        if len(scan.observations) < self.min_observations:
            return  # out of coverage: a seam, surfaced as silence
        estimate, spread = self.estimate(scan)
        self.produce(
            Datum(
                kind=Kind.POSITION_GRID,
                payload=estimate,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )
        wgs84 = self.grid.to_wgs84(estimate)
        wgs84 = type(wgs84)(
            wgs84.latitude_deg,
            wgs84.longitude_deg,
            wgs84.altitude_m,
            accuracy_m=spread,
            timestamp=datum.timestamp,
        )
        self.produce(
            Datum(
                kind=Kind.POSITION_WGS84,
                payload=wgs84,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )

    def estimate(self, scan: WifiScan) -> Tuple[GridPosition, float]:
        """Weighted-kNN estimate and a spread-based accuracy value."""
        observed = scan.as_dict()
        scored = sorted(
            (
                (signal_distance(observed, vector), pos)
                for pos, vector in self.radio_map
            ),
            key=lambda pair: pair[0],
        )
        nearest = scored[: self.k]
        weights = [1.0 / (distance + 1e-3) for distance, _pos in nearest]
        total = sum(weights)
        x = sum(w * pos.x_m for w, (_d, pos) in zip(weights, nearest)) / total
        y = sum(w * pos.y_m for w, (_d, pos) in zip(weights, nearest)) / total
        floor = nearest[0][1].floor
        estimate = GridPosition(x, y, floor)
        spread = max(
            estimate.distance_to(pos) for _d, pos in nearest
        )
        return estimate, max(spread, 1.0)

    def map_size(self) -> int:
        """Number of usable survey points (inspection)."""
        return len(self.radio_map)
