"""The Resolver component: positions to room numbers.

Fig. 1: the Room Number Application receives "Positions (RoomID)" from a
Resolver backed by a location model service.  Outdoor positions resolve
to a symbolic location with no room id, so the application can tell
"outside" apart from "no data" -- one of the seams PerPos chooses to
expose.
"""

from __future__ import annotations

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.model.building import Building


class RoomResolverComponent(ProcessingComponent):
    """Resolves WGS84 positions against a building model."""

    def __init__(self, building: Building, name: str = "resolver") -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.POSITION_WGS84,)),),
            output=OutputPort((Kind.ROOM_ID,)),
        )
        self.building = building

    def process(self, port_name: str, datum: Datum) -> None:
        location = self.building.resolve(datum.payload)
        self.produce(
            Datum(
                kind=Kind.ROOM_ID,
                payload=location,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )

    def model_id(self) -> str:
        """Identity of the backing location model (inspection)."""
        return self.building.building_id
