"""The Parser component: raw serial fragments to NMEA sentences.

Fig. 1/Fig. 4: the GPS sensor delivers "Raw Data (Strings)"; the Parser
assembles them into NMEA measurements.  Several raw fragments make up one
sentence, which is exactly the many-to-one relationship the channel's
logical time records.  Corrupt lines (failed checksum, unknown type) are
dropped -- a seam the NumberOfSatellites/HDOP features later expose
rather than hide.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.sensors.nmea import NmeaError, parse_sentence


class NmeaParserComponent(ProcessingComponent):
    """Buffers raw string fragments and emits parsed NMEA sentences."""

    def __init__(self, name: str = "parser") -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.NMEA_RAW,)),),
            output=OutputPort((Kind.NMEA_SENTENCE,)),
        )
        self._buffer = ""
        self.dropped_lines = 0

    def process(self, port_name: str, datum: Datum) -> None:
        self._buffer += datum.payload
        # Emit every complete line; keep any trailing partial fragment.
        while True:
            index = self._find_terminator()
            if index is None:
                break
            line, self._buffer = (
                self._buffer[:index],
                self._buffer[index:].lstrip("\r\n"),
            )
            line = line.strip()
            if not line:
                continue
            try:
                sentence = parse_sentence(line)
            except NmeaError:
                self.dropped_lines += 1
                continue
            self.produce(
                Datum(
                    kind=Kind.NMEA_SENTENCE,
                    payload=sentence,
                    timestamp=datum.timestamp,
                    producer=self.name,
                )
            )

    def _find_terminator(self) -> Optional[int]:
        for terminator in ("\r\n", "\n", "\r"):
            index = self._buffer.find(terminator)
            if index >= 0:
                return index
        return None

    def pending_bytes(self) -> int:
        """Size of the unparsed buffer; exposed for inspection."""
        return len(self._buffer)
