"""Beacon proximity positioning: the R1 plug-in mechanism.

Turns BLE beacon scans into positions: the strongest sighted beacon's
deployment position, with an accuracy radius derived from its RSSI-based
distance estimate.  Produces the same ``position-wgs84`` kind as the GPS
and WiFi strands, so it merges into existing fusion components without
any change to the application-facing API -- the paper's requirement R1
in its purest form.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.geo.grid import LocalGrid
from repro.sensors.ble import Beacon, BeaconScan


class BeaconPositioningComponent(ProcessingComponent):
    """Strongest-beacon proximity positioning."""

    def __init__(
        self,
        beacons: Sequence[Beacon],
        grid: LocalGrid,
        name: str = "ble-positioning",
        path_loss_exponent: float = 2.2,
        min_rssi_dbm: float = -85.0,
    ) -> None:
        if not beacons:
            raise ValueError("need at least one beacon")
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.BEACON_SCAN,)),),
            output=OutputPort((Kind.POSITION_WGS84, Kind.POSITION_GRID)),
        )
        self._beacons: Dict[str, Beacon] = {
            b.beacon_id: b for b in beacons
        }
        self.grid = grid
        self._n = path_loss_exponent
        self.min_rssi_dbm = min_rssi_dbm
        self.positions_produced = 0

    def estimated_distance_m(self, beacon: Beacon, rssi: float) -> float:
        """Invert the log-distance model for an accuracy estimate."""
        exponent = (beacon.tx_power_dbm - rssi) / (10.0 * self._n)
        return max(0.5, 10.0**exponent)

    def process(self, port_name: str, datum: Datum) -> None:
        scan = datum.payload
        if not isinstance(scan, BeaconScan):
            return
        strongest = scan.strongest()
        if strongest is None or strongest.rssi_dbm < self.min_rssi_dbm:
            return
        beacon = self._beacons.get(strongest.beacon_id)
        if beacon is None:
            return
        accuracy = self.estimated_distance_m(beacon, strongest.rssi_dbm)
        self.positions_produced += 1
        self.produce(
            Datum(
                kind=Kind.POSITION_GRID,
                payload=beacon.position,
                timestamp=datum.timestamp,
                producer=self.name,
                attributes={"beacon": beacon.beacon_id},
            )
        )
        wgs = self.grid.to_wgs84(beacon.position)
        wgs = type(wgs)(
            wgs.latitude_deg,
            wgs.longitude_deg,
            wgs.altitude_m,
            accuracy_m=accuracy,
            timestamp=datum.timestamp,
        )
        self.produce(
            Datum(
                kind=Kind.POSITION_WGS84,
                payload=wgs,
                timestamp=datum.timestamp,
                producer=self.name,
                attributes={"beacon": beacon.beacon_id},
            )
        )

    def known_beacons(self) -> int:
        return len(self._beacons)
