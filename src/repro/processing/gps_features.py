"""The paper's GPS Component Features: NumberOfSatellites and HDOP.

§3.1: "NumberOfSatellites is implemented as a Component Feature that is
attached to the Parser component and adds a new data element to its
output."

§3.2 / Fig. 5 snippet 3: the HDOP feature extracts the dilution of
precision from parsed sentences and both exposes it as component state
(``get_hdop``) and adds it to the Parser's output stream
(``parser.produce(nmeaSentence.HDOP)``), so downstream components that
declare the ``hdop`` kind receive it in-band, correctly ordered with the
sentences it belongs to.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.data import Datum, Kind
from repro.core.features import ComponentFeature
from repro.sensors.nmea import GgaSentence, GsaSentence


class NumberOfSatellitesFeature(ComponentFeature):
    """Exposes and emits the satellite count behind each measurement."""

    name = "NumberOfSatellites"
    provides = (Kind.NUM_SATELLITES,)
    requires_kinds = (Kind.NMEA_SENTENCE,)

    def __init__(self) -> None:
        super().__init__()
        self._last_count: Optional[int] = None

    def produce(self, datum: Datum) -> Optional[Datum]:
        sentence = datum.payload
        if isinstance(sentence, GgaSentence):
            self._last_count = sentence.num_satellites
            # Feature-added data: delivered only to ports that declare
            # they accept the num-satellites kind (paper §2.1).
            self.add_data(
                Datum(
                    kind=Kind.NUM_SATELLITES,
                    payload=sentence.num_satellites,
                    timestamp=datum.timestamp,
                )
            )
        return datum

    # -- state exposed on the host component (augmentation type 3) ---------

    def get_number_of_satellites(self) -> Optional[int]:
        """Satellite count of the most recent measurement, if any."""
        return self._last_count


class HdopFeature(ComponentFeature):
    """Extracts HDOP from parsed sentences and exposes/emits it."""

    name = "HDOP"
    provides = (Kind.HDOP,)
    requires_kinds = (Kind.NMEA_SENTENCE,)

    def __init__(self, history: int = 32) -> None:
        super().__init__()
        self._history = history
        self._values: List[float] = []

    def produce(self, datum: Datum) -> Optional[Datum]:
        sentence = datum.payload
        hdop: Optional[float] = None
        if isinstance(sentence, (GgaSentence, GsaSentence)):
            hdop = sentence.hdop
        if hdop is not None:
            self._values.append(hdop)
            if len(self._values) > self._history:
                del self._values[: len(self._values) - self._history]
            self.add_data(
                Datum(
                    kind=Kind.HDOP, payload=hdop, timestamp=datum.timestamp
                )
            )
        return datum

    def get_hdop(self) -> Optional[float]:
        """The most recently observed HDOP value."""
        return self._values[-1] if self._values else None

    def recent_hdops(self) -> List[float]:
        """Bounded history of observed HDOP values, oldest first."""
        return list(self._values)
