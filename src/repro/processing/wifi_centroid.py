"""Weighted-centroid WiFi positioning: the calibration-free baseline.

Fingerprinting (the engine the paper's infrastructure used) needs an
offline survey; deployments without one fall back to weighted centroid:
estimate = RSSI-weighted mean of the heard access points' positions.  It
is cheap and survey-free but systematically biased toward AP-dense
areas -- the ablation benchmark quantifies the gap, which is the reason
a middleware wants *pluggable* positioning components in the first
place.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.geo.grid import GridPosition, LocalGrid
from repro.sensors.wifi import AccessPoint, WifiScan


class CentroidPositioningComponent(ProcessingComponent):
    """RSSI-weighted centroid over known AP positions.

    Weights are ``1 / (1 + (rssi_max - rssi))^exponent`` so the strongest
    AP dominates; ``exponent`` trades smoothness against snapping to the
    nearest AP.
    """

    def __init__(
        self,
        access_points: Sequence[AccessPoint],
        grid: LocalGrid,
        exponent: float = 1.5,
        name: str = "wifi-centroid",
        min_observations: int = 1,
    ) -> None:
        if not access_points:
            raise ValueError("need at least one access point")
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.WIFI_SCAN,)),),
            output=OutputPort((Kind.POSITION_WGS84, Kind.POSITION_GRID)),
        )
        self._positions: Dict[str, GridPosition] = {
            ap.bssid: ap.position for ap in access_points
        }
        self.grid = grid
        self.exponent = exponent
        self.min_observations = min_observations

    def process(self, port_name: str, datum: Datum) -> None:
        scan = datum.payload
        if not isinstance(scan, WifiScan):
            return
        estimate = self.estimate(scan)
        if estimate is None:
            return
        position, spread = estimate
        self.produce(
            Datum(
                kind=Kind.POSITION_GRID,
                payload=position,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )
        wgs = self.grid.to_wgs84(position)
        wgs = type(wgs)(
            wgs.latitude_deg,
            wgs.longitude_deg,
            wgs.altitude_m,
            accuracy_m=spread,
            timestamp=datum.timestamp,
        )
        self.produce(
            Datum(
                kind=Kind.POSITION_WGS84,
                payload=wgs,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )

    def estimate(
        self, scan: WifiScan
    ) -> Optional[Tuple[GridPosition, float]]:
        known = [
            (obs, self._positions[obs.bssid])
            for obs in scan.observations
            if obs.bssid in self._positions
        ]
        if len(known) < self.min_observations:
            return None
        strongest = max(obs.rssi_dbm for obs, _pos in known)
        weights = [
            (1.0 / (1.0 + (strongest - obs.rssi_dbm)) ** self.exponent, pos)
            for obs, pos in known
        ]
        total = sum(w for w, _pos in weights)
        x = sum(w * pos.x_m for w, pos in weights) / total
        y = sum(w * pos.y_m for w, pos in weights) / total
        floor = known[0][1].floor
        estimate = GridPosition(x, y, floor)
        spread = max(estimate.distance_to(pos) for _w, pos in weights)
        return estimate, max(spread, 1.0)

    def known_ap_count(self) -> int:
        return len(self._positions)
