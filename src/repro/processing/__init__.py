"""Stock processing components (system S10 in DESIGN.md).

The concrete nodes of the paper's figures: the Parser and Interpreter of
the GPS pipeline (Fig. 1, Fig. 4), the Resolver producing room ids, the
WiFi positioning engine, fusion components, the §3.1 satellite filter,
and pipeline builders that assemble them onto a
:class:`~repro.core.middleware.PerPos` instance.
"""

from repro.processing.parser import NmeaParserComponent
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.resolver import RoomResolverComponent
from repro.processing.wifi_positioning import FingerprintPositioningComponent
from repro.processing.wifi_centroid import CentroidPositioningComponent
from repro.processing.conversion import CoordinateConverterComponent
from repro.processing.fusion import (
    BestAccuracyFusionComponent,
    VarianceWeightedFusionComponent,
)
from repro.processing.beacon_positioning import BeaconPositioningComponent
from repro.processing.filters import SatelliteFilterComponent
from repro.processing.gps_features import (
    HdopFeature,
    NumberOfSatellitesFeature,
)

__all__ = [
    "NmeaParserComponent",
    "NmeaInterpreterComponent",
    "RoomResolverComponent",
    "FingerprintPositioningComponent",
    "CentroidPositioningComponent",
    "CoordinateConverterComponent",
    "BestAccuracyFusionComponent",
    "VarianceWeightedFusionComponent",
    "BeaconPositioningComponent",
    "SatelliteFilterComponent",
    "NumberOfSatellitesFeature",
    "HdopFeature",
]
