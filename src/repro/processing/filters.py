"""Filtering components, led by the §3.1 satellite-count filter.

"We have implemented this functionality by creating a new filtering
Processing Component and inserting it into the processing tree.  The
Processing Component depends on a Component Feature named
NumberOfSatellites ...  We insert the filter component after the Parser
component. ... The filter component extracts the number of satellites and
forwards only measurements based on a satisfactory number."

The filter's input port declares both the sentence kind and the
feature-added ``num-satellites`` kind, and names the
``NumberOfSatellites`` feature as a connection requirement -- wiring it
to a parser without the feature fails at connect time, which is the
"realizable port connections" check of §2.1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.sensors.nmea import GgaSentence


class SatelliteFilterComponent(ProcessingComponent):
    """Forwards only measurements backed by enough satellites.

    The satellite count arrives in-band as feature-added data, ordered
    with the sentences it belongs to; position-bearing sentences seen
    while the count is below ``min_satellites`` are dropped.  Sentences
    that carry no position (GSA/GSV/VTG) always pass -- they feed other
    features downstream.
    """

    def __init__(
        self, min_satellites: int = 4, name: str = "satellite-filter"
    ) -> None:
        if min_satellites < 0:
            raise ValueError("min_satellites must be non-negative")
        super().__init__(
            name,
            inputs=(
                InputPort(
                    "in",
                    accepts=(Kind.NMEA_SENTENCE, Kind.NUM_SATELLITES),
                    required_features=("NumberOfSatellites",),
                ),
            ),
            output=OutputPort((Kind.NMEA_SENTENCE,)),
        )
        self.min_satellites = min_satellites
        self._last_count: Optional[int] = None
        self.passed = 0
        self.rejected = 0

    def process(self, port_name: str, datum: Datum) -> None:
        if datum.kind == Kind.NUM_SATELLITES:
            self._last_count = datum.payload
            return
        sentence = datum.payload
        carries_position = (
            isinstance(sentence, GgaSentence) and sentence.has_fix
        )
        if carries_position:
            # GGA itself reports the count; prefer the in-band feature
            # data when present, it is what the paper's design prescribes.
            count = (
                self._last_count
                if self._last_count is not None
                else sentence.num_satellites
            )
            if count < self.min_satellites:
                self.rejected += 1
                return
            self.passed += 1
        self.produce(datum.from_producer(self.name))

    # -- inspection / state manipulation -----------------------------------

    def get_threshold(self) -> int:
        return self.min_satellites

    def set_threshold(self, min_satellites: int) -> None:
        """Adjust the acceptance threshold at runtime (a PSL state hook)."""
        if min_satellites < 0:
            raise ValueError("min_satellites must be non-negative")
        self.min_satellites = min_satellites

    def rejection_rate(self) -> float:
        total = self.passed + self.rejected
        return self.rejected / total if total else 0.0
