"""Coordinate conversion as a processing step.

Paper §1: the middleware encapsulates "the conversion between various
coordinate systems".  :class:`CoordinateConverterComponent` is the
generic step: it converts payloads between named reference systems using
a :class:`~repro.geo.transforms.TransformRegistry`, re-kinding the datum
accordingly.  :func:`standard_registry` wires the conversions every
deployment has -- WGS84 to a building's grid and back.
"""

from __future__ import annotations

from typing import Optional

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum
from repro.geo.transforms import ReferenceSystem, TransformRegistry
from repro.model.building import Building

WGS84_SYSTEM = ReferenceSystem("wgs84", "geodetic")


def grid_system(building: Building) -> ReferenceSystem:
    """The named reference system of a building's local grid."""
    return ReferenceSystem(f"grid:{building.building_id}", "local")


def standard_registry(*buildings: Building) -> TransformRegistry:
    """A registry with WGS84 <-> grid conversions per building."""
    registry = TransformRegistry()
    for building in buildings:
        grid = building.grid
        registry.register(
            WGS84_SYSTEM,
            grid_system(building),
            grid.to_grid,
            grid.to_wgs84,
        )
    return registry


class CoordinateConverterComponent(ProcessingComponent):
    """Converts position payloads between two reference systems.

    ``in_kind``/``out_kind`` are the graph data kinds on either side
    (e.g. ``position-grid`` in, ``position-wgs84`` out); ``source`` and
    ``target`` name the reference systems in the registry.  The
    conversion path is resolved once at construction, so a missing
    conversion fails fast rather than per datum.
    """

    def __init__(
        self,
        registry: TransformRegistry,
        source: str,
        target: str,
        in_kind: str,
        out_kind: str,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            name or f"convert-{source}-to-{target}",
            inputs=(InputPort("in", (in_kind,)),),
            output=OutputPort((out_kind,)),
        )
        self.source = source
        self.target = target
        self.out_kind = out_kind
        self._convert = registry.converter(source, target)
        self.converted = 0

    def process(self, port_name: str, datum: Datum) -> None:
        self.converted += 1
        self.produce(
            Datum(
                kind=self.out_kind,
                payload=self._convert(datum.payload),
                timestamp=datum.timestamp,
                producer=self.name,
                attributes=dict(
                    datum.attributes,
                    converted_from=self.source,
                ),
            )
        )

    def describe_conversion(self) -> str:
        """Inspection: which systems this step maps between."""
        return f"{self.source} -> {self.target}"
