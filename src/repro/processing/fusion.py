"""Sensor-fusion components: the merge points of the processing tree.

Paper §2: "combinations of data from several sources take place in
special sensor fusion components which often is a part of positioning
middlewares".  In PerPos fusion is just another Processing Component with
several inbound edges -- nothing architecturally special -- which is what
lets the particle filter of §3.2 slot in as a *new kind* of fusion
without violating any layer boundary (the R1 requirement).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind


class BestAccuracyFusionComponent(ProcessingComponent):
    """Forwards the best recent estimate among all feeding sources.

    Keeps the latest position per upstream producer; on every arrival it
    forwards the freshest-within-window, best-accuracy estimate.  Sources
    that stop delivering age out of consideration, so an indoor target
    follows WiFi when GPS goes stale, and vice versa outdoors.
    """

    pcl_node = True  # fusion by role: a channel endpoint in the PCL view

    def __init__(
        self,
        name: str = "fusion",
        freshness_window_s: float = 10.0,
        default_accuracy_m: float = 50.0,
    ) -> None:
        if freshness_window_s <= 0:
            raise ValueError("freshness_window_s must be positive")
        super().__init__(
            name,
            inputs=(
                InputPort("in", (Kind.POSITION_WGS84,), multiple=True),
            ),
            output=OutputPort((Kind.POSITION_WGS84,)),
        )
        self.freshness_window_s = freshness_window_s
        self.default_accuracy_m = default_accuracy_m
        self._latest: Dict[str, Datum] = {}

    def process(self, port_name: str, datum: Datum) -> None:
        self._latest[datum.producer] = datum
        best = self._select(datum.timestamp)
        if best is not None:
            self.produce(
                Datum(
                    kind=Kind.POSITION_WGS84,
                    payload=best.payload,
                    timestamp=datum.timestamp,
                    producer=self.name,
                    attributes={"selected_source": best.producer},
                )
            )

    def _select(self, now: float) -> Optional[Datum]:
        fresh = [
            d
            for d in self._latest.values()
            if now - d.timestamp <= self.freshness_window_s
        ]
        if not fresh:
            return None
        return min(fresh, key=self._accuracy_of)

    def _accuracy_of(self, datum: Datum) -> float:
        accuracy = getattr(datum.payload, "accuracy_m", None)
        return accuracy if accuracy is not None else self.default_accuracy_m

    # -- inspection ----------------------------------------------------------

    def known_sources(self) -> Dict[str, float]:
        """Producer name to timestamp of its latest contribution."""
        return {name: d.timestamp for name, d in self._latest.items()}

    def get_window(self) -> float:
        return self.freshness_window_s

    def set_window(self, seconds: float) -> None:
        """Runtime adjustment of the freshness window (a state hook)."""
        if seconds <= 0:
            raise ValueError("freshness window must be positive")
        self.freshness_window_s = seconds


class VarianceWeightedFusionComponent(ProcessingComponent):
    """Inverse-variance weighted fusion of fresh position estimates.

    Instead of selecting one source, every fresh source contributes with
    weight ``1 / accuracy^2`` -- the minimum-variance combination when
    errors are independent.  Better than selection when two technologies
    have comparable accuracy; worse when one source is biased (its error
    drags the average), which is why the choice is a component swap and
    not middleware policy.
    """

    pcl_node = True

    def __init__(
        self,
        name: str = "variance-fusion",
        freshness_window_s: float = 10.0,
        default_accuracy_m: float = 50.0,
    ) -> None:
        if freshness_window_s <= 0:
            raise ValueError("freshness_window_s must be positive")
        super().__init__(
            name,
            inputs=(
                InputPort("in", (Kind.POSITION_WGS84,), multiple=True),
            ),
            output=OutputPort((Kind.POSITION_WGS84,)),
        )
        self.freshness_window_s = freshness_window_s
        self.default_accuracy_m = default_accuracy_m
        self._latest: Dict[str, Datum] = {}

    def process(self, port_name: str, datum: Datum) -> None:
        self._latest[datum.producer] = datum
        now = datum.timestamp
        fresh = [
            d
            for d in self._latest.values()
            if now - d.timestamp <= self.freshness_window_s
        ]
        if not fresh:
            return
        weights = []
        for d in fresh:
            accuracy = getattr(d.payload, "accuracy_m", None)
            accuracy = (
                accuracy if accuracy else self.default_accuracy_m
            )
            weights.append(1.0 / (accuracy * accuracy))
        total = sum(weights)
        lat = sum(
            w * d.payload.latitude_deg for w, d in zip(weights, fresh)
        ) / total
        lon = sum(
            w * d.payload.longitude_deg for w, d in zip(weights, fresh)
        ) / total
        # Combined variance of independent estimates: 1 / sum(1/var).
        from repro.geo.wgs84 import Wgs84Position
        import math

        fused = Wgs84Position(
            lat,
            lon,
            accuracy_m=math.sqrt(1.0 / total),
            timestamp=now,
        )
        self.produce(
            Datum(
                kind=Kind.POSITION_WGS84,
                payload=fused,
                timestamp=now,
                producer=self.name,
                attributes={"contributors": len(fresh)},
            )
        )

    def known_sources(self) -> Dict[str, float]:
        return {name: d.timestamp for name, d in self._latest.items()}
