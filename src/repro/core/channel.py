"""Channels and Channel Features (paper §2.2, Fig. 3b).

A Channel is the Process Channel Layer's view of a single-strained
source-to-merge flow: "the connection between components in the PSL are
called Channels and encapsulates the positioning process taking place
between its end points."  The channel watches its member components
through graph observation, assigns each produced element a logical time
at its layer, tracks which upstream elements each output consumed, and --
every time the channel delivers an output -- assembles the
:class:`~repro.core.datatree.DataTree` and hands it to every attached
:class:`ChannelFeature` via ``apply`` (paper: "The method is called by
the middleware every time the Channel delivers a data element").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, TypeVar, Union

from repro.core.component import ProcessingComponent
from repro.core.data import Datum
from repro.core.datatree import DataTree, DataTreeElement
from repro.core.features import FeatureError
from repro.core.graph import GraphObserver, ProcessingGraph

CF = TypeVar("CF", bound="ChannelFeature")


class ChannelFeature:
    """A feature spanning several processing steps of one channel.

    Subclasses may set:

    ``name``
        Lookup identity; defaults to the class name.
    ``requires_component_features``
        Component Feature names that some member of the channel must
        provide; checked when the feature is attached (paper §2.2: "the
        feature specifies that it depends on a Processing Component that
        provides the Component Feature which can access ... HDOP").
    ``requires_channel_features``
        Names of Channel Features that must already be attached to the
        same channel ("Input requirements may include Component Features,
        Channel Features, and Processing Components", §2.2).
    ``requires_components``
        Component names (or type names) that must appear among the
        channel's members.

    The one mandatory method is :meth:`apply`, called with the data tree
    behind every channel output.  Any further public methods become part
    of the channel's surface (``channel.get_feature(...)``) -- that is how
    the paper's Likelihood feature offers ``getLikelihood(particle)``.
    """

    name: str = ""
    requires_component_features: Tuple[str, ...] = ()
    requires_channel_features: Tuple[str, ...] = ()
    requires_components: Tuple[str, ...] = ()

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        self._channel: Optional["Channel"] = None

    @property
    def channel(self) -> "Channel":
        if self._channel is None:
            raise FeatureError(f"channel feature {self.name} not attached")
        return self._channel

    def _attach(self, channel: "Channel") -> None:
        if self._channel is not None:
            raise FeatureError(
                f"channel feature {self.name} already attached"
            )
        missing = [
            needed
            for needed in self.requires_component_features
            if not any(
                member.has_feature(needed) for member in channel.members
            )
        ]
        if missing:
            raise FeatureError(
                f"channel feature {self.name} requires component features"
                f" {missing} not provided by any member of {channel.id}"
            )
        missing_channel = [
            needed
            for needed in self.requires_channel_features
            if channel.get_feature(needed) is None
        ]
        if missing_channel:
            raise FeatureError(
                f"channel feature {self.name} requires channel features"
                f" {missing_channel} not attached to {channel.id}"
            )
        member_ids = {m.name for m in channel.members} | {
            type(m).__name__ for m in channel.members
        }
        missing_members = [
            needed
            for needed in self.requires_components
            if needed not in member_ids
        ]
        if missing_members:
            raise FeatureError(
                f"channel feature {self.name} requires components"
                f" {missing_members} not present in {channel.id}"
            )
        self._channel = channel
        self.on_attached()

    def _detach(self) -> None:
        self.on_detached()
        self._channel = None

    def on_attached(self) -> None:
        """Hook called after attachment."""

    def on_detached(self) -> None:
        """Hook called before removal."""

    def apply(self, data_tree: DataTree) -> None:
        """Update internal state from the tree behind one channel output."""
        raise NotImplementedError


class Channel(GraphObserver):
    """A single-strained flow from a data source toward a merge point.

    ``members`` run source-first; ``endpoint`` names the PCL node (merge
    component or application) the channel delivers into.  The channel's
    output is whatever ``members[-1]`` produces -- the paper treats a
    Channel Feature as "semantically equivalent to a Component Feature
    attached to the last Processing Component of the Channel".

    ``history_limit`` bounds how many elements are remembered per layer;
    data trees only ever reference recent elements, so the bound exists
    to keep long runs in constant memory.

    With ``subscribe=False`` the channel does not register itself as a
    graph observer; the owner (the PCL) routes ``data_consumed`` /
    ``data_produced`` events to it through a member index instead, so a
    graph with many channels pays one observer fan-out per event rather
    than one call per channel.
    """

    def __init__(
        self,
        graph: ProcessingGraph,
        members: Sequence[ProcessingComponent],
        endpoint: str,
        history_limit: int = 512,
        subscribe: bool = True,
        feature_error_limit: int = 64,
    ) -> None:
        if not members:
            raise ValueError("a channel needs at least one member")
        if feature_error_limit < 1:
            raise ValueError("feature_error_limit must be >= 1")
        self.graph = graph
        self.members: List[ProcessingComponent] = list(members)
        self.endpoint = endpoint
        self.history_limit = history_limit
        self.feature_error_limit = feature_error_limit
        self._member_index = {m.name: i for i, m in enumerate(self.members)}
        self._counters: List[int] = [0] * len(self.members)
        self._pending: List[List[int]] = [[] for _ in self.members]
        self._history: List[List[DataTreeElement]] = [
            [] for _ in self.members
        ]
        self._features: List[ChannelFeature] = []
        #: (feature name, exception) pairs from failed ``apply`` calls;
        #: bounded to the most recent ``feature_error_limit`` entries,
        #: so a feature failing per-datum cannot grow memory unboundedly.
        self.feature_errors: List[Tuple[str, Exception]] = []
        #: Total failed ``apply`` calls ever (the buffer above is capped).
        self.feature_error_count: int = 0
        self._unsubscribe = (
            graph.add_observer(self) if subscribe else (lambda: None)
        )

    # -- identity & inspection ------------------------------------------------

    @property
    def id(self) -> str:
        return f"{self.members[0].name}->{self.endpoint}"

    @property
    def source(self) -> ProcessingComponent:
        return self.members[0]

    @property
    def last_component(self) -> ProcessingComponent:
        return self.members[-1]

    def describe(self) -> Dict[str, Any]:
        """Reflective summary of the channel (Fig. 2 middle layer)."""
        return {
            "id": self.id,
            "members": [m.name for m in self.members],
            "endpoint": self.endpoint,
            "features": [f.name for f in self._features],
            "component_features": {
                m.name: m.provided_feature_names()
                for m in self.members
                if m.features
            },
            "output_kinds": list(self.last_component.output_port.capabilities),
        }

    def close(self) -> None:
        """Stop observing; detach features."""
        self._unsubscribe()
        for feature in list(self._features):
            self.detach_feature(feature.name)

    # -- channel features --------------------------------------------------------

    @property
    def features(self) -> List[ChannelFeature]:
        return list(self._features)

    def attach_feature(self, feature: ChannelFeature) -> None:
        """Attach a Channel Feature after checking its requirements."""
        if any(f.name == feature.name for f in self._features):
            raise FeatureError(
                f"channel {self.id} already has a feature named"
                f" {feature.name!r}"
            )
        feature._attach(self)
        self._features.append(feature)

    def detach_feature(self, name: str) -> ChannelFeature:
        """Remove a Channel Feature by name."""
        for feature in self._features:
            if feature.name == name:
                feature._detach()
                self._features.remove(feature)
                return feature
        raise FeatureError(f"channel {self.id} has no feature {name!r}")

    def get_feature(
        self, key: Union[str, Type[CF]]
    ) -> Optional[ChannelFeature]:
        """Look a channel feature up by name or class.

        This is the call the particle filter makes on its input channel
        (Fig. 5, snippet 1): ``inputChannel.getFeature(Likelihood)``.
        """
        for feature in self._features:
            if isinstance(key, str):
                if feature.name == key:
                    return feature
            elif isinstance(feature, key):
                return feature
        return None

    # -- logical time bookkeeping (graph observation) ----------------------------

    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None:
        """Graph observation: track which inputs feed the next output."""
        index = self._member_index.get(component.name)
        if index is None or index == 0:
            return
        upstream = self.members[index - 1].name
        # Only count elements arriving from this channel's own previous
        # layer; merge endpoints also consume from other channels.
        # Feature-added data carries a "component#Feature" producer --
        # only split when the plain name does not already match.
        producer = datum.producer
        if producer != upstream and producer.split("#", 1)[0] != upstream:
            return
        self._pending[index].append(self._counters[index - 1])

    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None:
        """Graph observation: assign logical time; deliver data trees."""
        index = self._member_index.get(component.name)
        if index is None:
            return
        counters = self._counters
        counters[index] += 1
        logical_time = counters[index]
        pending = self._pending[index] if index else None
        # Pending logical times arrive in counter order, so the span is
        # just the ends of the list -- no min()/max() scan.
        time_range = (pending[0], pending[-1]) if pending else None
        element = DataTreeElement(
            datum=datum,
            logical_time=logical_time,
            time_range=time_range,
            layer=index,
            producer=datum.producer or component.name,
        )
        history = self._history[index]
        history.append(element)
        if len(history) > self.history_limit:
            del history[: len(history) - self.history_limit]
        # Feature-added data (producer "component#Feature") is emitted
        # *during* the host's produce chain: it annotates the pending
        # inputs but must not consume them, or the host's own output
        # would lose its time range.
        if pending and "#" not in (datum.producer or ""):
            pending.clear()
        if index == len(self.members) - 1:
            self._deliver_output(element)

    def _deliver_output(self, element: DataTreeElement) -> None:
        if not self._features:
            return
        tree = self.data_tree_for(element)
        for feature in list(self._features):
            try:
                feature.apply(tree)
            except Exception as exc:  # noqa: BLE001 - isolation by design
                # Channel Features observe the process; a broken observer
                # must not take the positioning pipeline down with it.
                # Failures are recorded and inspectable (a seam, exposed).
                self.feature_error_count += 1
                errors = self.feature_errors
                errors.append((feature.name, exc))
                if len(errors) > self.feature_error_limit:
                    del errors[: len(errors) - self.feature_error_limit]
                hub = self.graph.instrumentation
                if hub is not None:
                    hub.channel_feature_error(self.id, feature.name)

    # -- data tree construction ----------------------------------------------------

    def data_tree_for(self, element: DataTreeElement) -> DataTree:
        """Assemble the tree of elements that contributed to ``element``."""
        layers: List[List[DataTreeElement]] = [[] for _ in self.members]
        layers[element.layer] = [element]
        span: Optional[Tuple[int, int]] = element.time_range
        for index in range(element.layer - 1, -1, -1):
            if span is None:
                break
            low, high = span
            selected = [
                e
                for e in self._history[index]
                if low <= e.logical_time <= high
            ]
            layers[index] = selected
            ranges = [e.time_range for e in selected if e.time_range]
            span = (
                (min(r[0] for r in ranges), max(r[1] for r in ranges))
                if ranges
                else None
            )
        names = [m.name for m in self.members]
        return DataTree(layers[: element.layer + 1], names[: element.layer + 1])

    def latest_output(self) -> Optional[DataTreeElement]:
        """The channel's most recent output element, if any."""
        history = self._history[-1]
        return history[-1] if history else None

    # -- runtime observability ------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Live runtime statistics for this channel.

        Combines the channel's own logical-time bookkeeping (outputs
        delivered, feature errors) with the per-member metrics of the
        graph's observability hub when one is installed.  The member
        section is empty while observability is disabled.
        """
        latest = self.latest_output()
        hub = self.graph.instrumentation
        return {
            "id": self.id,
            "outputs_delivered": latest.logical_time if latest else 0,
            "feature_errors": self.feature_error_count,
            "members": (
                {
                    m.name: hub.component_stats(m.name)
                    for m in self.members
                }
                if hub is not None
                else {}
            ),
        }

    def latest_trace(self):
        """Flow trace carried by the latest output datum, if tracing is on."""
        from repro.observability.tracing import trace_of

        latest = self.latest_output()
        return trace_of(latest.datum) if latest else None

    def __repr__(self) -> str:
        return f"Channel({self.id!r}, members={len(self.members)})"
