"""Processing Components: the nodes of the PerPos processing graph.

Paper §2.1: "Processing Components consist of three main elements: input
ports, output port and implementation of functionality.  A Processing
Component has a single output port and may have multiple input ports. ...
To make sure that port connections are realizable Processing Components
must declare requirements for input ports and define a set of provided
capabilities for output ports."

A component receives data on its input ports, runs it through the
Component Feature ``consume`` chain, processes it, and sends results out
through the feature ``produce`` chain to whatever the graph has connected
downstream.  Components never talk to each other directly -- delivery is
the graph's job -- which is what keeps the structure reifiable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError

F = TypeVar("F", bound=ComponentFeature)


class ComponentError(Exception):
    """Raised on illegal component configuration or use."""


@dataclass
class InputPort:
    """A declared input requirement of a component.

    ``accepts`` lists the data kinds deliverable to this port.  Kinds of
    feature-added data must be listed explicitly -- a port that does not
    name ``"hdop"`` never sees HDOP datums (paper §2.1, Adding Data).
    ``required_features`` names Component Features the upstream component
    must provide before a connection to this port is realisable.
    ``multiple`` marks fusion-style ports that bind every compatible
    producer during automatic assembly; ``optional`` ports do not count
    as unresolved while unconnected.
    """

    name: str
    accepts: Tuple[str, ...]
    required_features: Tuple[str, ...] = ()
    optional: bool = False
    multiple: bool = False

    def __post_init__(self) -> None:
        # The accept-set is treated as immutable after construction (the
        # graph's routing tables key on it); frozen once here so the
        # per-delivery kind check is set membership, not a tuple scan.
        self._accepts_set = frozenset(self.accepts)

    def accepts_kind(self, kind: str) -> bool:
        return kind in self._accepts_set


@dataclass
class OutputPort:
    """The single output of a component: the kinds it can produce."""

    capabilities: Tuple[str, ...]

    def __post_init__(self) -> None:
        # Frozen once for O(1) capability checks on the produce path;
        # capability changes go through replacing the port object
        # (see ``ProcessingComponent.attach_feature``).
        self._capabilities_set = frozenset(self.capabilities)

    def can_produce(self, kind: str) -> bool:
        return kind in self._capabilities_set


class ProcessingComponent(abc.ABC):
    """A node in the processing graph.

    Subclasses declare ports and implement :meth:`process`.  All data
    movement goes through :meth:`receive` (inbound, called by the graph)
    and :meth:`produce` (outbound, called by the implementation), so the
    feature interception chain and graph observation see everything.

    ``pcl_node`` marks components that *merge or re-derive* data by role
    (fusion engines, particle filters): the Process Channel Layer treats
    them as channel endpoints even while only one source happens to feed
    them, matching the paper's "components that merge data sources".
    """

    pcl_node: bool = False

    def __init__(
        self,
        name: str,
        inputs: Sequence[InputPort],
        output: OutputPort,
    ) -> None:
        names = [port.name for port in inputs]
        if len(set(names)) != len(names):
            raise ComponentError(f"duplicate input port names on {name}")
        self.name = name
        self._inputs: Dict[str, InputPort] = {p.name: p for p in inputs}
        self._base_capabilities = tuple(output.capabilities)
        self.output_port = OutputPort(tuple(output.capabilities))
        self._features: List[ComponentFeature] = []
        # Wired by the graph at attach time; None while detached.
        self._deliver: Optional[Callable[[Datum], None]] = None
        self._deliver_batch: Optional[Callable[[List[Datum]], None]] = None
        self._observer: Optional["ComponentObserver"] = None

    # -- structure ---------------------------------------------------------

    @property
    def input_ports(self) -> List[InputPort]:
        return list(self._inputs.values())

    def input_port(self, name: str) -> InputPort:
        """Look an input port up by name."""
        try:
            return self._inputs[name]
        except KeyError:
            raise ComponentError(
                f"component {self.name} has no input port {name!r}"
            ) from None

    @property
    def is_source(self) -> bool:
        return not self._inputs

    def describe(self) -> Dict[str, Any]:
        """Reflective summary used by the PSL inspection API."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "inputs": {
                p.name: {
                    "accepts": list(p.accepts),
                    "required_features": list(p.required_features),
                }
                for p in self._inputs.values()
            },
            "capabilities": list(self.output_port.capabilities),
            "features": [f.name for f in self._features],
            "methods": self.public_methods(),
        }

    # -- durability ---------------------------------------------------------

    def state_snapshot(self) -> Optional[Dict[str, Any]]:
        """Mutable runtime state for the durability seam, or None.

        Components are stateless by default; stateful ones (sinks,
        filters with history) override this pair so snapshots capture
        what replay alone cannot reconstruct.
        """
        return None

    def state_restore(self, state: Dict[str, Any]) -> None:
        """Reinstall state captured by :meth:`state_snapshot`."""

    def public_methods(self) -> List[str]:
        """All public methods, including ones added by features."""
        own = [
            name
            for name in dir(type(self))
            if not name.startswith("_")
            and callable(getattr(self, name, None))
        ]
        for feature in self._features:
            own.extend(
                f"{feature.name}.{m}" for m in feature.exposed_methods()
            )
        return sorted(own)

    # -- features (paper Fig. 3a) -------------------------------------------

    @property
    def features(self) -> List[ComponentFeature]:
        return list(self._features)

    def attach_feature(self, feature: ComponentFeature) -> None:
        """Attach a Component Feature, extending the output capabilities."""
        if any(f.name == feature.name for f in self._features):
            raise FeatureError(
                f"component {self.name} already has a feature named"
                f" {feature.name!r}"
            )
        feature._attach(self)
        self._features.append(feature)
        extra = tuple(
            k
            for k in feature.provides
            if k not in self.output_port.capabilities
        )
        self.output_port = OutputPort(self.output_port.capabilities + extra)
        if self._observer is not None:
            self._observer.component_reconfigured(self)

    def detach_feature(self, name: str) -> ComponentFeature:
        """Remove a feature by name, restoring base capabilities."""
        for feature in self._features:
            if feature.name == name:
                feature._detach()
                self._features.remove(feature)
                self._recompute_capabilities()
                if self._observer is not None:
                    self._observer.component_reconfigured(self)
                return feature
        raise FeatureError(f"component {self.name} has no feature {name!r}")

    def _recompute_capabilities(self) -> None:
        caps = list(self._base_capabilities)
        for feature in self._features:
            caps.extend(k for k in feature.provides if k not in caps)
        self.output_port = OutputPort(tuple(caps))

    def get_feature(
        self, key: Union[str, Type[F]]
    ) -> Optional[ComponentFeature]:
        """Look a feature up by name or by class."""
        for feature in self._features:
            if isinstance(key, str):
                if feature.name == key:
                    return feature
            elif isinstance(feature, key):
                return feature
        return None

    def has_feature(self, key: Union[str, Type[ComponentFeature]]) -> bool:
        """Whether a feature with this name/class is attached."""
        return self.get_feature(key) is not None

    def provided_feature_names(self) -> List[str]:
        """Names of all attached features."""
        return [f.name for f in self._features]

    # -- data flow -----------------------------------------------------------

    def receive(self, port_name: str, datum: Datum) -> None:
        """Deliver one datum to an input port (called by the graph)."""
        port = self._inputs.get(port_name)
        if port is None:
            self.input_port(port_name)  # raises with the right message
        if datum.kind not in port._accepts_set:
            raise ComponentError(
                f"port {self.name}.{port_name} does not accept kind"
                f" {datum.kind!r}"
            )
        if self._features:
            for feature in self._features:
                intercepted = feature.consume(datum)
                if intercepted is None:
                    if self._observer is not None:
                        self._observer.data_dropped(
                            self, port_name, datum, feature.name
                        )
                    return
                if intercepted.kind != datum.kind:
                    raise FeatureError(
                        f"feature {feature.name} changed data kind"
                        f" {datum.kind!r} -> {intercepted.kind!r}"
                    )
                datum = intercepted
        if self._observer is not None:
            self._observer.data_consumed(self, port_name, datum)
        self.process(port_name, datum)

    def receive_batch(self, port_name: str, datums: Sequence[Datum]) -> None:
        """Deliver a batch of datums to one input port.

        The batch seam of the scale-out runtime: the graph's
        :meth:`~repro.core.graph.ProcessingGraph.route_batch` hands a
        whole batch over in one call.  The default implementation simply
        loops :meth:`receive`, so every component is batch-safe without
        opting in; batch-aware components (see
        :class:`FunctionComponent`, :class:`ApplicationSink`) override
        it to hoist per-datum overhead out of the loop and to propagate
        the batch downstream via :meth:`produce_batch`.

        Contract: a batch delivery must be observationally equivalent to
        delivering the same datums one by one -- same feature-chain
        decisions, same observer events, same outputs -- up to the
        interleaving order across fan-out branches (a batch flows
        stage-by-stage instead of datum-by-datum).
        """
        for datum in datums:
            self.receive(port_name, datum)

    @abc.abstractmethod
    def process(self, port_name: str, datum: Datum) -> None:
        """Handle one datum; call :meth:`produce` for any results."""

    def produce(self, datum: Datum) -> None:
        """Send a datum out through the output port.

        Runs the feature ``produce`` chain, then hands the datum to the
        graph for delivery.  Producing a kind outside the output port's
        capabilities is a contract violation and raises.
        """
        if datum.kind not in self.output_port._capabilities_set:
            raise ComponentError(
                f"component {self.name} declared capabilities"
                f" {list(self.output_port.capabilities)}, cannot produce"
                f" kind {datum.kind!r}"
            )
        if not datum.producer:
            datum = datum.from_producer(self.name)
        if self._features:
            for feature in self._features:
                intercepted = feature.produce(datum)
                if intercepted is None:
                    return
                if intercepted.kind != datum.kind:
                    raise FeatureError(
                        f"feature {feature.name} changed data kind"
                        f" {datum.kind!r} -> {intercepted.kind!r}"
                    )
                datum = intercepted
        # _send inlined: one less interpreter frame per produced datum.
        deliver = self._deliver
        if deliver is not None:
            deliver(datum)

    def produce_batch(self, datums: Sequence[Datum]) -> None:
        """Send a batch of datums out through the output port.

        Per-datum semantics are identical to :meth:`produce` -- the
        capability check, producer stamping, and the feature ``produce``
        chain all run per datum -- but the graph hand-off happens once
        for the surviving batch, so downstream delivery can stay
        batched.  Detached components fall back to per-datum
        :meth:`produce` (which silently drops, as always).
        """
        deliver_batch = self._deliver_batch
        if deliver_batch is None:
            for datum in datums:
                self.produce(datum)
            return
        capabilities = self.output_port._capabilities_set
        features = self._features
        name = self.name
        out: List[Datum] = []
        for datum in datums:
            if datum.kind not in capabilities:
                raise ComponentError(
                    f"component {self.name} declared capabilities"
                    f" {list(self.output_port.capabilities)}, cannot"
                    f" produce kind {datum.kind!r}"
                )
            if not datum.producer:
                datum = datum.from_producer(name)
            if features:
                vetoed = False
                for feature in features:
                    intercepted = feature.produce(datum)
                    if intercepted is None:
                        vetoed = True
                        break
                    if intercepted.kind != datum.kind:
                        raise FeatureError(
                            f"feature {feature.name} changed data kind"
                            f" {datum.kind!r} -> {intercepted.kind!r}"
                        )
                    datum = intercepted
                if vetoed:
                    continue
            out.append(datum)
        if out:
            deliver_batch(out)

    def fused_fn(
        self,
    ) -> Optional[Callable[[Datum], Union[None, Datum, Iterable[Datum]]]]:
        """The component's flat per-datum step, or ``None``.

        The opt-in seam of plan compilation
        (:mod:`repro.core.compile`): a component returning a plain
        ``datum -> None | Datum | iterable`` callable here declares that
        calling it is equivalent to ``receive`` + ``process`` +
        ``produce`` *minus* the graph hand-off -- no port side effects,
        no reliance on ``self._deliver``.  Components with richer
        delivery semantics return ``None`` (the default) and stay
        interpreted.
        """
        return None

    def emit_feature_data(self, datum: Datum) -> None:
        """Emit feature-added data, bypassing the produce hooks.

        Called by :meth:`ComponentFeature.add_data`; the capability was
        added to the output port when the feature attached.
        """
        if not self.output_port.can_produce(datum.kind):
            raise ComponentError(
                f"feature data kind {datum.kind!r} not in capabilities of"
                f" {self.name}"
            )
        self._send(datum)

    def _send(self, datum: Datum) -> None:
        # Delivery (wired by the graph at attach time) is the single
        # hand-off point: the graph instruments the datum, notifies
        # observers, and routes it, in that order, so every party sees
        # the same (possibly trace-annotated) envelope.
        if self._deliver is not None:
            self._deliver(datum)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ComponentObserver(abc.ABC):
    """Receives component-level data events; implemented by the graph."""

    @abc.abstractmethod
    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None: ...

    @abc.abstractmethod
    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None: ...

    def data_dropped(
        self,
        component: ProcessingComponent,
        port_name: str,
        datum: Datum,
        feature_name: str,
    ) -> None:
        """A Component Feature vetoed an inbound datum; default no-op."""

    def component_reconfigured(
        self, component: ProcessingComponent
    ) -> None:
        """The component's features/ports changed in place; default
        no-op.  The graph uses this to invalidate its compiled dispatch
        plan without a structural mutation."""


class SourceComponent(ProcessingComponent):
    """A leaf node: no inputs, produces data injected from outside.

    Sensor adapters push readings in via :meth:`inject`.
    """

    def __init__(self, name: str, capabilities: Sequence[str]) -> None:
        super().__init__(name, inputs=(), output=OutputPort(tuple(capabilities)))

    def process(self, port_name: str, datum: Datum) -> None:
        raise ComponentError(f"source {self.name} has no inputs")

    def inject(self, datum: Datum) -> None:
        """Feed externally generated data into the graph."""
        self.produce(datum)

    def inject_batch(self, datums: Sequence[Datum]) -> None:
        """Feed a batch of externally generated data into the graph.

        The entry point of the batched dispatch path: ingestion queues
        drain into it, and the whole batch travels stage-by-stage
        through batch-aware components downstream.
        """
        self.produce_batch(datums)


class FunctionComponent(ProcessingComponent):
    """A component defined by a plain function.

    ``fn(datum) -> None | Datum | iterable of Datum``; results are
    produced in order.  Handy for small filters and adapters, and for
    tests that need throwaway components.
    """

    def __init__(
        self,
        name: str,
        accepts: Sequence[str],
        capabilities: Sequence[str],
        fn: Callable[[Datum], Union[None, Datum, Iterable[Datum]]],
        required_features: Sequence[str] = (),
    ) -> None:
        super().__init__(
            name,
            inputs=(
                InputPort(
                    "in",
                    tuple(accepts),
                    required_features=tuple(required_features),
                ),
            ),
            output=OutputPort(tuple(capabilities)),
        )
        self._fn = fn

    def process(self, port_name: str, datum: Datum) -> None:
        result = self._fn(datum)
        if result is None:
            return
        if isinstance(result, Datum):
            result = [result]
        for item in result:
            self.produce(item)

    def fused_fn(
        self,
    ) -> Optional[Callable[[Datum], Union[None, Datum, Iterable[Datum]]]]:
        """``fn`` itself -- a stock FunctionComponent is exactly a flat
        per-datum step.  Subclasses that override any piece of the data
        path fall back to ``None``: the identity checks below make the
        opt-in conservative rather than optimistic."""
        cls = type(self)
        if (
            cls.process is FunctionComponent.process
            and cls.receive is ProcessingComponent.receive
            and cls.receive_batch is FunctionComponent.receive_batch
            and cls.produce is ProcessingComponent.produce
            and cls.produce_batch is ProcessingComponent.produce_batch
        ):
            return self._fn
        return None

    def receive_batch(self, port_name: str, datums: Sequence[Datum]) -> None:
        """Batch-aware delivery: hoisted checks, one downstream hand-off.

        Port lookup and the hot-path attribute loads happen once per
        batch; the kind check, feature chain, and observer events stay
        per datum (the :meth:`ProcessingComponent.receive_batch`
        equivalence contract).  All results are collected and propagated
        in one :meth:`produce_batch` call.
        """
        port = self._inputs.get(port_name)
        if port is None:
            self.input_port(port_name)  # raises with the right message
        accepts = port._accepts_set
        features = self._features
        observer = self._observer
        fn = self._fn
        out: List[Datum] = []
        for datum in datums:
            if datum.kind not in accepts:
                raise ComponentError(
                    f"port {self.name}.{port_name} does not accept kind"
                    f" {datum.kind!r}"
                )
            if features:
                vetoed = None
                for feature in features:
                    intercepted = feature.consume(datum)
                    if intercepted is None:
                        vetoed = feature.name
                        break
                    if intercepted.kind != datum.kind:
                        raise FeatureError(
                            f"feature {feature.name} changed data kind"
                            f" {datum.kind!r} -> {intercepted.kind!r}"
                        )
                    datum = intercepted
                if vetoed is not None:
                    if observer is not None:
                        observer.data_dropped(
                            self, port_name, datum, vetoed
                        )
                    continue
            if observer is not None:
                observer.data_consumed(self, port_name, datum)
            result = fn(datum)
            if result is None:
                continue
            if isinstance(result, Datum):
                out.append(result)
            else:
                out.extend(result)
        if out:
            self.produce_batch(out)


class ApplicationSink(ProcessingComponent):
    """The root of the processing tree: the application receiving data.

    Collects everything delivered to it and notifies registered
    listeners.  The Positioning Layer wraps one of these per provider.
    """

    def __init__(
        self, name: str, accepts: Sequence[str], keep_last: int = 1000
    ) -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", tuple(accepts)),),
            output=OutputPort(()),
        )
        self._keep_last = keep_last
        self.received: List[Datum] = []
        self._listeners: List[Callable[[Datum], None]] = []

    def process(self, port_name: str, datum: Datum) -> None:
        received = self.received
        received.append(datum)
        if len(received) > self._keep_last:
            del received[: len(received) - self._keep_last]
        if self._listeners:
            for listener in list(self._listeners):
                listener(datum)

    def receive_batch(self, port_name: str, datums: Sequence[Datum]) -> None:
        """Batch-aware terminal delivery: append all, trim once.

        Feature chains on sinks are rare, so the fast path covers the
        featureless case; with features attached the default per-datum
        loop keeps the interception semantics exact.
        """
        if self._features:
            for datum in datums:
                self.receive(port_name, datum)
            return
        port = self._inputs.get(port_name)
        if port is None:
            self.input_port(port_name)  # raises with the right message
        accepts = port._accepts_set
        observer = self._observer
        listeners = self._listeners
        received = self.received
        for datum in datums:
            if datum.kind not in accepts:
                raise ComponentError(
                    f"port {self.name}.{port_name} does not accept kind"
                    f" {datum.kind!r}"
                )
            if observer is not None:
                observer.data_consumed(self, port_name, datum)
            received.append(datum)
            if listeners:
                for listener in list(listeners):
                    listener(datum)
        if len(received) > self._keep_last:
            del received[: len(received) - self._keep_last]

    def state_snapshot(self) -> Optional[Dict[str, Any]]:
        """Received history (raw datums); listeners are not serialised."""
        return {"received": list(self.received)}

    def state_restore(self, state: Dict[str, Any]) -> None:
        received = list(state["received"])
        if len(received) > self._keep_last:
            del received[: len(received) - self._keep_last]
        self.received = received

    def add_listener(
        self, listener: Callable[[Datum], None]
    ) -> Callable[[], None]:
        self._listeners.append(listener)

        def _remove() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return _remove

    def last(self, kind: Optional[str] = None) -> Optional[Datum]:
        """Most recent datum, optionally restricted to one kind."""
        for datum in reversed(self.received):
            if kind is None or datum.kind == kind:
                return datum
        return None
