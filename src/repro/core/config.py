"""Declarative system-level configurations (paper §2.1).

The second of the paper's three connection-establishment modes:
"explicitly defined system level configurations".  A configuration is a
JSON-compatible mapping describing components (by registered type name
and constructor parameters), Component Features to attach, connections
(explicit edges or ``"auto"`` for capability matching), Channel Features,
and providers.  :func:`load_configuration` materialises it onto a
:class:`~repro.core.middleware.PerPos` instance.

Example::

    {
        "components": [
            {"type": "nmea-parser", "name": "parser"},
            {"type": "nmea-interpreter", "name": "interpreter"},
        ],
        "features": [
            {"component": "parser", "type": "hdop"}
        ],
        "connections": [
            {"from": "gps", "to": "parser"},
            {"from": "parser", "to": "interpreter"}
        ],
        "providers": [
            {"name": "app", "accepts": ["position-wgs84"],
             "connect_from": ["interpreter"]}
        ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.assembly import AutoAssembler
from repro.core.component import ProcessingComponent
from repro.core.features import ComponentFeature
from repro.core.middleware import PerPos


class ConfigurationError(Exception):
    """Raised on malformed configurations or unknown type names."""


class ComponentTypeRegistry:
    """Names component and feature constructors for configurations.

    The registry ships with the stock processing components; bundles and
    applications register their own types the same way custom components
    join the paper's middleware.
    """

    def __init__(self) -> None:
        self._components: Dict[str, Callable[..., ProcessingComponent]] = {}
        self._features: Dict[str, Callable[..., ComponentFeature]] = {}

    def register_component(
        self, type_name: str, factory: Callable[..., ProcessingComponent]
    ) -> None:
        if type_name in self._components:
            raise ConfigurationError(
                f"component type {type_name!r} already registered"
            )
        self._components[type_name] = factory

    def register_feature(
        self, type_name: str, factory: Callable[..., ComponentFeature]
    ) -> None:
        if type_name in self._features:
            raise ConfigurationError(
                f"feature type {type_name!r} already registered"
            )
        self._features[type_name] = factory

    def create_component(
        self, type_name: str, **params: Any
    ) -> ProcessingComponent:
        try:
            factory = self._components[type_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown component type {type_name!r};"
                f" known: {sorted(self._components)}"
            ) from None
        return factory(**params)

    def create_feature(self, type_name: str, **params: Any) -> ComponentFeature:
        try:
            factory = self._features[type_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown feature type {type_name!r};"
                f" known: {sorted(self._features)}"
            ) from None
        return factory(**params)

    def component_types(self) -> List[str]:
        return sorted(self._components)

    def feature_types(self) -> List[str]:
        return sorted(self._features)


def default_registry() -> ComponentTypeRegistry:
    """Registry preloaded with the stock components and features."""
    # Imported here to keep repro.core free of upward dependencies.
    from repro.processing.filters import SatelliteFilterComponent
    from repro.processing.fusion import BestAccuracyFusionComponent
    from repro.processing.gps_features import (
        HdopFeature,
        NumberOfSatellitesFeature,
    )
    from repro.processing.interpreter import NmeaInterpreterComponent
    from repro.processing.parser import NmeaParserComponent

    registry = ComponentTypeRegistry()
    registry.register_component("nmea-parser", NmeaParserComponent)
    registry.register_component("nmea-interpreter", NmeaInterpreterComponent)
    registry.register_component(
        "satellite-filter", SatelliteFilterComponent
    )
    registry.register_component("fusion", BestAccuracyFusionComponent)
    registry.register_feature("hdop", HdopFeature)
    registry.register_feature(
        "number-of-satellites", NumberOfSatellitesFeature
    )
    return registry


def load_configuration(
    middleware: PerPos,
    configuration: Union[Mapping[str, Any], str, Path],
    registry: Optional[ComponentTypeRegistry] = None,
) -> Dict[str, Any]:
    """Materialise a configuration onto a middleware instance.

    Accepts a mapping, a JSON string, or a path to a JSON file.  Returns
    a summary: created component names, attached features, connections.
    """
    registry = registry or default_registry()
    config = _coerce(configuration)

    created: List[str] = []
    for entry in config.get("components", ()):
        entry = dict(entry)
        type_name = entry.pop("type", None)
        if not type_name:
            raise ConfigurationError(f"component entry missing type: {entry}")
        component = registry.create_component(type_name, **entry)
        middleware.graph.add(component)
        created.append(component.name)

    attached: List[str] = []
    for entry in config.get("features", ()):
        entry = dict(entry)
        target = entry.pop("component", None)
        type_name = entry.pop("type", None)
        if not target or not type_name:
            raise ConfigurationError(
                f"feature entry needs component and type: {entry}"
            )
        feature = registry.create_feature(type_name, **entry)
        middleware.psl.attach_feature(target, feature)
        attached.append(f"{target}#{feature.name}")

    connections: List[str] = []
    declared = config.get("connections", ())
    if declared == "auto":
        assembler = AutoAssembler(middleware.graph)
        for name in created:
            assembler.add(middleware.graph.component(name))
        connections.append(f"auto ({assembler.resolve()} resolved)")
    else:
        for entry in declared:
            try:
                producer, consumer = entry["from"], entry["to"]
            except (TypeError, KeyError):
                raise ConfigurationError(
                    f"connection entry needs from/to: {entry!r}"
                ) from None
            middleware.graph.connect(
                producer, consumer, entry.get("port")
            )
            connections.append(f"{producer}->{consumer}")

    providers: List[str] = []
    for entry in config.get("providers", ()):
        provider = middleware.create_provider(
            entry["name"],
            accepts=tuple(entry["accepts"]),
            technologies=tuple(entry.get("technologies", ())),
        )
        for producer in entry.get("connect_from", ()):
            middleware.graph.connect(producer, provider.sink.name)
        providers.append(provider.name)

    return {
        "components": created,
        "features": attached,
        "connections": connections,
        "providers": providers,
    }


def save_configuration(
    middleware: PerPos,
    type_names: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Export the current graph as a declarative configuration.

    The inverse of :func:`load_configuration` for the structural parts:
    components (typed via ``type_names`` -- a mapping from component
    *class* name to registered type name -- defaulting to the stock
    types), attached features, and explicit connections.  Providers are
    exported with their sink wiring.  Constructor parameters beyond the
    name are not recoverable from a live instance and are omitted; the
    export reproduces topology, not tuning.
    """
    known_types = dict(DEFAULT_TYPE_NAMES)
    if type_names:
        known_types.update(type_names)
    provider_names = {
        p.name for p in middleware.positioning.providers()
    }
    components = []
    features = []
    for component in middleware.graph.components():
        class_name = type(component).__name__
        if component.name in provider_names:
            continue  # exported in the providers section
        if class_name in known_types:
            components.append(
                {
                    "type": known_types[class_name],
                    "name": component.name,
                }
            )
        for feature in component.features:
            feature_class = type(feature).__name__
            if feature_class in known_types:
                features.append(
                    {
                        "component": component.name,
                        "type": known_types[feature_class],
                    }
                )
    providers = []
    for provider in middleware.positioning.providers():
        providers.append(
            {
                "name": provider.name,
                "accepts": list(provider.kinds),
                "technologies": list(provider.technologies),
                "connect_from": sorted(
                    middleware.graph.upstream(provider.sink.name)
                ),
            }
        )
    connections = [
        {"from": c.producer, "to": c.consumer, "port": c.port}
        for c in middleware.graph.connections()
        if c.consumer not in provider_names
    ]
    return {
        "components": components,
        "features": features,
        "connections": connections,
        "providers": providers,
    }


#: Class name -> registered type name for the stock components/features.
DEFAULT_TYPE_NAMES: Dict[str, str] = {
    "NmeaParserComponent": "nmea-parser",
    "NmeaInterpreterComponent": "nmea-interpreter",
    "SatelliteFilterComponent": "satellite-filter",
    "BestAccuracyFusionComponent": "fusion",
    "HdopFeature": "hdop",
    "NumberOfSatellitesFeature": "number-of-satellites",
}


def _coerce(configuration: Union[Mapping[str, Any], str, Path]) -> Mapping:
    if isinstance(configuration, Mapping):
        return configuration
    if isinstance(configuration, Path) or (
        isinstance(configuration, str) and configuration.lstrip()[:1] != "{"
    ):
        with open(configuration, encoding="utf-8") as fh:
            return json.load(fh)
    try:
        return json.loads(configuration)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"bad configuration JSON: {exc}") from exc
