"""The Process Structure Layer (paper §2.1).

"The layer exposing the structure of the positioning process ... is
called the Process Structure Layer (PSL) and represents the most detailed
level of interaction provided by the PerPos middleware.  This layer is
responsible for reifying the actual positioning process as a tree
structure and maintaining a causal connection between the positioning
system and the tree."

The PSL is a thin, *designed* facade over the live
:class:`~repro.core.graph.ProcessingGraph`: insert/delete/connect,
feature attachment, and reflective inspection -- including invocation of
component and feature methods by name, which is what lets applications
"create complex high-level functionality by combining the ability to
traverse the nodes of the processing tree with ... state manipulation
features."
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.component import ProcessingComponent
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import Connection, GraphError, ProcessingGraph


class ProcessStructureLayer:
    """Structured manipulation and inspection of the processing graph."""

    def __init__(self, graph: ProcessingGraph) -> None:
        self.graph = graph

    # -- inspection ---------------------------------------------------------

    def components(self) -> List[str]:
        """Names of every component in the reified process."""
        return sorted(c.name for c in self.graph.components())

    def component(self, name: str) -> ProcessingComponent:
        """Direct access to a live component by name."""
        return self.graph.component(name)

    def describe(self, name: str) -> Dict[str, Any]:
        """Full reflective summary of one component.

        While a supervisor is installed the summary carries the
        component's failure seam too: circuit-breaker ``health``
        (``closed``/``open``/``half-open``) and the total ``failures``
        recorded against it.  While a positioning engine is installed
        and the component serves as an ingestion point, the summary
        carries an ``ingestion`` section: one entry per lane entering
        the graph here, with its backpressure policy, depth, and drop
        counters.
        """
        info = self.graph.component(name).describe()
        supervisor = self.graph.supervisor
        if supervisor is not None:
            info["health"] = supervisor.health(name)
            info["failures"] = supervisor.failure_count(name)
        engine = self.graph.engine
        if engine is not None:
            lanes = engine.lanes_for_source(name)
            if lanes:
                info["ingestion"] = {
                    lane.target_id: lane.stats() for lane in lanes
                }
        gateway = self.graph.gateway
        if gateway is not None and gateway.source == name:
            info["gateway"] = gateway.snapshot()
        info["compiled_plans"] = self._compiled_role(name)
        return info

    def _compiled_role(self, name: str) -> Dict[str, Any]:
        """This component's place in the compiled dispatch plan."""
        plan = self.graph.plan_snapshot()
        role: Dict[str, Any] = {"enabled": plan["enabled"]}
        if plan["fallback_reason"]:
            role["fallback_reason"] = plan["fallback_reason"]
        for chain in plan["chains"]:
            if name in chain["members"]:
                role["chain"] = chain
                break
        else:
            excluded = plan["excluded"].get(name)
            if excluded:
                role["excluded"] = excluded
        return role

    def connections(self) -> List[Connection]:
        """All edges of the reified process."""
        return self.graph.connections()

    def topology_version(self) -> int:
        """Monotonic version of the reified structure.

        Every manipulation (insert/delete/connect/disconnect and the
        splicing operations built on them) bumps it; data flow never
        does.  Applications can poll it to cheaply detect whether the
        process changed since they last inspected the structure.
        """
        return self.graph.topology_version

    def structure(self) -> str:
        """ASCII tree of the whole process, applications at the roots."""
        return self.graph.render_tree()

    def methods_of(self, name: str) -> List[str]:
        """Public methods of a component, including feature-provided ones.

        Paper §2.1: "The PSL API supports inspection of the reified
        processing graph including access to all methods available on the
        implementing classes of the Processing Components" -- and features
        change "the set of available methods".
        """
        return self.graph.component(name).public_methods()

    def compiled_plans(self) -> Dict[str, Any]:
        """The graph's compiled dispatch plan, reflectively.

        The translucency surface of :mod:`repro.core.compile`: which
        maximal linear chains are currently fused (with member lists),
        why the whole graph fell back to interpreted dispatch (if it
        did), why individual components stayed interpreted, and the
        invalidation / fused-dispatch counters.  Reading it compiles a
        stale plan on the spot, so the answer is always current.
        """
        return self.graph.plan_snapshot()

    def set_compilation(self, enabled: bool) -> bool:
        """Enable/disable chain fusion; returns the previous setting.

        Adaptation of the dispatch *strategy* through the same layer
        that adapts the process structure.
        """
        return self.graph.set_compilation(enabled)

    # -- runtime observability ------------------------------------------------

    def component_metrics(
        self, name: Optional[str] = None
    ) -> Dict[str, Any]:
        """Live per-component runtime metrics (items in/out, latency).

        The runtime counterpart of :meth:`describe`: where ``describe``
        reflects what a component *is*, this reports what it has *done*.
        With ``name`` the stats of one component; without, a mapping over
        all instrumented components.  Empty while observability is
        disabled -- inspection degrades gracefully rather than raising.
        """
        hub = self.graph.instrumentation
        if hub is None:
            return {}
        if name is not None:
            self.graph.component(name)  # validate existence
        return hub.component_stats(name)

    # -- ingestion (the scale-out runtime seam) --------------------------------

    def ingestion_lanes(
        self, name: Optional[str] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Ingestion-lane state of the installed positioning engine.

        With ``name`` only the lanes entering the graph at that source
        component; without, every tracked target's lane.  Each value is
        the lane's reflective stats (policy, capacity, depth, high-water
        mark, drop counters).  Empty while no engine is installed --
        like :meth:`component_metrics`, inspection degrades gracefully.
        """
        engine = self.graph.engine
        if engine is None:
            return {}
        if name is not None:
            self.graph.component(name)  # validate existence
            lanes = engine.lanes_for_source(name)
        else:
            lanes = engine.lanes()
        return {lane.target_id: lane.stats() for lane in lanes}

    def set_backpressure(
        self,
        target_id: str,
        *,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
        weight: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Adapt one lane's backpressure/fairness knobs at runtime.

        The scale-out analogue of splicing a filter into the graph:
        ingestion policy is part of the reified process, so the PSL can
        change it while the system runs.  Raises while no engine is
        installed -- unlike inspection, adaptation does not degrade
        silently.
        """
        engine = self.graph.engine
        if engine is None:
            raise GraphError("no positioning engine installed")
        return engine.set_policy(
            target_id, policy=policy, capacity=capacity, weight=weight
        )

    # -- ingestion gateway (the hostile-edge seam) -----------------------------

    def gateway(self) -> Dict[str, Any]:
        """Reflective state of the installed ingestion gateway.

        Wire formats, per-adapter accept/reject counters, the admission
        queue, the device-admission policy, and dead-letter statistics.
        Empty while no gateway is installed -- inspection degrades
        gracefully, like :meth:`component_metrics`.
        """
        gateway = self.graph.gateway
        return gateway.snapshot() if gateway is not None else {}

    def scenario(self) -> Dict[str, Any]:
        """Reflective state of the installed scenario runner.

        Device population, churn/burst/zone counters, run progress, and
        the lane verdict totals.  Empty while no scenario is installed
        -- inspection degrades gracefully, like :meth:`gateway`.
        """
        scenario = self.graph.scenario
        return scenario.snapshot() if scenario is not None else {}

    def controllers(self) -> Dict[str, Any]:
        """Reflective state of the installed closed-loop control set.

        Controller descriptions, cumulative decision counts, and the
        recent tail of the bounded decision ledger -- the translucency
        surface for self-adaptation: what the system changed and why.
        Empty while no control loop is installed.
        """
        control = self.graph.control
        return control.snapshot() if control is not None else {}

    def decision_ledger(self) -> List[Dict[str, Any]]:
        """The bounded controller decision ledger, newest last.

        Empty while no control loop is installed.
        """
        control = self.graph.control
        return control.ledger() if control is not None else []

    def dead_letters(
        self, state: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Retained dead-letter records, optionally filtered by state.

        Each entry is a record summary (seq, stage, reason, adapter,
        attempts, state, next_attempt_s).  Empty while no gateway is
        installed.
        """
        gateway = self.graph.gateway
        if gateway is None:
            return []
        return gateway.dead_letters(state)

    def replay_dead_letters(
        self, seq: Optional[int] = None, *, ignore_backoff: bool = False
    ) -> Dict[str, int]:
        """Replay pending dead letters through the gateway pipeline.

        The adaptation half of the DLQ seam (patch a payload or install
        a crosswalk, then replay from the same layer that inspected the
        failure).  Raises while no gateway is installed -- adaptation
        does not degrade silently, mirroring :meth:`set_backpressure`.
        """
        gateway = self.graph.gateway
        if gateway is None:
            raise GraphError("no ingestion gateway installed")
        return gateway.replay(seq, ignore_backoff=ignore_backoff)

    # -- durability (the crash-recovery seam) ----------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Checkpoint the full runtime state into the durability store.

        Lanes, queue contents, component state, breakers, dead-letter
        records, and metric series -- everything
        :meth:`restore` needs to resume after a crash.  Returns the
        snapshot summary (bytes written, lanes, pending datums).
        Raises while no durability manager is installed -- like
        :meth:`set_backpressure`, adaptation does not degrade silently.
        """
        manager = self.graph.durability
        if manager is None:
            raise GraphError("no durability manager installed")
        return manager.snapshot()

    def restore(self) -> int:
        """Rebuild runtime state from the durability store's latest state.

        Loads the newest snapshot, replays the journal entries recorded
        after it, and returns the number of entries replayed.  Raises
        while no durability manager is installed.
        """
        manager = self.graph.durability
        if manager is None:
            raise GraphError("no durability manager installed")
        return manager.restore()

    def migrations(self) -> List[Dict[str, Any]]:
        """Completed warm lane handoffs recorded by the durability seam.

        Each entry names the migrated target, source/destination shard,
        datums carried, and the handoff pause.  Empty while no
        durability manager is installed -- inspection degrades
        gracefully, like :meth:`component_metrics`.
        """
        manager = self.graph.durability
        return manager.migrations() if manager is not None else []

    # -- supervision (failure seams) -----------------------------------------

    def component_health(
        self, name: Optional[str] = None
    ) -> Dict[str, str]:
        """Circuit-breaker health of components, as the PSL sees it.

        With ``name`` a one-entry mapping for that component; without,
        the health of every component the supervisor has seen fail.
        Empty while supervision is disabled -- like
        :meth:`component_metrics`, inspection degrades gracefully.
        """
        supervisor = self.graph.supervisor
        if supervisor is None:
            return {}
        if name is not None:
            self.graph.component(name)  # validate existence
            return {name: supervisor.health(name)}
        return supervisor.health_states()

    def failure_records(self, name: Optional[str] = None) -> List[Any]:
        """Reified delivery failures (bounded), optionally per component.

        Each entry is a
        :class:`~repro.robustness.supervision.FailureRecord`; empty
        while supervision is disabled.
        """
        supervisor = self.graph.supervisor
        if supervisor is None:
            return []
        if name is not None:
            self.graph.component(name)  # validate existence
        return supervisor.failure_records(name)

    def quarantined(self) -> List[str]:
        """Components currently skipped by routing (breaker ``open``)."""
        supervisor = self.graph.supervisor
        return supervisor.quarantined() if supervisor is not None else []

    # -- manipulation -------------------------------------------------------

    def insert(self, component: ProcessingComponent) -> None:
        """Add a new component to the process (initially unconnected)."""
        self.graph.add(component)

    def delete(self, name: str, reconnect: bool = True) -> None:
        """Remove a component, splicing its neighbours by default."""
        self.graph.remove(name, reconnect=reconnect)

    def connect(
        self, producer: str, consumer: str, port: Optional[str] = None
    ) -> Connection:
        """Connect two components (validated by the graph)."""
        return self.graph.connect(producer, consumer, port)

    def disconnect(
        self, producer: str, consumer: str, port: Optional[str] = None
    ) -> None:
        """Remove a connection."""
        self.graph.disconnect(producer, consumer, port)

    def insert_between(
        self,
        producer: str,
        consumer: str,
        component: ProcessingComponent,
    ) -> None:
        """Splice a component into an existing edge (§3.1's operation)."""
        self.graph.insert_between(producer, consumer, component)

    def insert_after(
        self, producer: str, component: ProcessingComponent
    ) -> None:
        """Splice a component into *every* outgoing edge of ``producer``."""
        consumers = self.graph.downstream(producer)
        if not consumers:
            raise GraphError(
                f"{producer} has no outgoing connections to splice into"
            )
        if component.name not in self.graph:
            self.graph.add(component)
        for consumer in consumers:
            self.graph.insert_between(producer, consumer, component)

    # -- component features ---------------------------------------------------

    def attach_feature(self, name: str, feature: ComponentFeature) -> None:
        """Attach a Component Feature to the named component."""
        self.graph.component(name).attach_feature(feature)

    def detach_feature(
        self, name: str, feature_name: str
    ) -> ComponentFeature:
        """Detach a Component Feature from the named component."""
        return self.graph.component(name).detach_feature(feature_name)

    def find_feature(self, feature_name: str) -> List[str]:
        """Names of components currently providing ``feature_name``."""
        return sorted(
            c.name
            for c in self.graph.components()
            if c.has_feature(feature_name)
        )

    # -- reflective invocation --------------------------------------------------

    def invoke(self, name: str, method: str, *args: Any, **kwargs: Any) -> Any:
        """Call a method on a component or one of its features.

        ``method`` is either a plain component method name or a dotted
        ``"FeatureName.method"`` path for feature-provided methods.
        """
        component = self.graph.component(name)
        if "." in method:
            feature_name, method_name = method.split(".", 1)
            feature = component.get_feature(feature_name)
            if feature is None:
                raise FeatureError(
                    f"component {name} has no feature {feature_name!r}"
                )
            target = feature
        else:
            target = component
            method_name = method
        fn = getattr(target, method_name, None)
        if not callable(fn) or method_name.startswith("_"):
            raise AttributeError(
                f"{name} has no public method {method!r}"
            )
        return fn(*args, **kwargs)
