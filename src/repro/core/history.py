"""Track history: a utility service of the Positioning Layer.

Paper §2.3 lists "a selection of services that can be leveraged for the
development of location-aware applications" among the high-level
offerings (detailed in the companion COM.Geo paper).  The one every
location application ends up writing is track history; this module
provides it as a middleware service: it subscribes to providers, retains
a bounded per-track position history, and answers the standard queries
-- trace windows, distance travelled, average speed, bounding box.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.data import Datum, Kind
from repro.core.positioning import LocationProvider
from repro.geo.wgs84 import Wgs84Position


@dataclass(frozen=True)
class TrackPoint:
    """One retained position sample."""

    timestamp: float
    position: Wgs84Position


class TrackHistoryService:
    """Bounded position history per track with spatial/temporal queries.

    ``retention`` bounds points kept per track (oldest dropped first).
    Tracks are created implicitly on first append or subscription.
    """

    def __init__(self, retention: int = 10_000) -> None:
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.retention = retention
        self._tracks: Dict[str, List[TrackPoint]] = {}
        self._unsubscribers: List[Callable[[], None]] = []
        #: Count of points that arrived out of timestamp order (a seam).
        self.out_of_order = 0

    # -- ingestion ------------------------------------------------------------

    def follow_provider(
        self, provider: LocationProvider, track: Optional[str] = None
    ) -> str:
        """Record every WGS84 position the provider delivers."""
        name = track or provider.name
        self._tracks.setdefault(name, [])

        def _on_position(datum: Datum) -> None:
            position = datum.payload
            if isinstance(position, Wgs84Position):
                self.append(name, datum.timestamp, position)

        self._unsubscribers.append(
            provider.add_listener(_on_position, kind=Kind.POSITION_WGS84)
        )
        return name

    def append(
        self, track: str, timestamp: float, position: Wgs84Position
    ) -> None:
        """Record one point, keeping the track timestamp-ordered.

        Fusion points interleave sensors with different sampling phases,
        so points can arrive slightly out of order; they are inserted at
        their temporal position (the common in-order case is O(1)).
        """
        points = self._tracks.setdefault(track, [])
        point = TrackPoint(timestamp, position)
        if points and timestamp < points[-1].timestamp:
            times = [p.timestamp for p in points]
            points.insert(bisect_right(times, timestamp), point)
            self.out_of_order += 1
        else:
            points.append(point)
        if len(points) > self.retention:
            del points[: len(points) - self.retention]

    def close(self) -> None:
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # -- queries ---------------------------------------------------------------

    def tracks(self) -> List[str]:
        return sorted(self._tracks)

    def size(self, track: str) -> int:
        return len(self._points(track))

    def latest(self, track: str) -> Optional[TrackPoint]:
        points = self._points(track)
        return points[-1] if points else None

    def trace(
        self,
        track: str,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> List[TrackPoint]:
        """Points with ``start <= timestamp <= end`` (binary search)."""
        points = self._points(track)
        times = [p.timestamp for p in points]
        lo = bisect_left(times, start)
        hi = bisect_right(times, end)
        return points[lo:hi]

    def distance_travelled(
        self,
        track: str,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> float:
        """Sum of leg distances over the window, in metres."""
        window = self.trace(track, start, end)
        return sum(
            a.position.distance_to(b.position)
            for a, b in zip(window, window[1:])
        )

    def average_speed(
        self,
        track: str,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> Optional[float]:
        """Distance over elapsed time for the window; None if undefined."""
        window = self.trace(track, start, end)
        if len(window) < 2:
            return None
        elapsed = window[-1].timestamp - window[0].timestamp
        if elapsed <= 0:
            return None
        return self.distance_travelled(track, start, end) / elapsed

    def bounding_box(
        self, track: str
    ) -> Optional[Tuple[float, float, float, float]]:
        """``(min_lat, min_lon, max_lat, max_lon)`` of the whole track."""
        points = self._points(track)
        if not points:
            return None
        lats = [p.position.latitude_deg for p in points]
        lons = [p.position.longitude_deg for p in points]
        return (min(lats), min(lons), max(lats), max(lons))

    def position_at(
        self, track: str, timestamp: float
    ) -> Optional[Wgs84Position]:
        """Nearest recorded position at or before ``timestamp``."""
        points = self._points(track)
        times = [p.timestamp for p in points]
        index = bisect_right(times, timestamp) - 1
        return points[index].position if index >= 0 else None

    # -- export ------------------------------------------------------------------

    def export_geojson(self, track: str) -> Dict:
        """The track as a GeoJSON LineString feature (dict).

        Coordinates follow GeoJSON order (longitude, latitude); the
        per-point timestamps ride along in ``properties.timestamps``.
        Suits the §1 infrastructure-visualization use case: any mapping
        tool can render the output directly.
        """
        points = self._points(track)
        return {
            "type": "Feature",
            "geometry": {
                "type": "LineString",
                "coordinates": [
                    [p.position.longitude_deg, p.position.latitude_deg]
                    for p in points
                ],
            },
            "properties": {
                "track": track,
                "timestamps": [p.timestamp for p in points],
                "points": len(points),
            },
        }

    def _points(self, track: str) -> List[TrackPoint]:
        try:
            return self._tracks[track]
        except KeyError:
            raise KeyError(f"no track {track!r}") from None
