"""Automatic graph assembly by capability matching (paper §2.1).

Port connections in PerPos are established "either by direct calls to
the graph manipulation API, based on explicitly defined system level
configurations or **through dynamic resolution of dependencies between
components**.  ... As custom components are added to the PerPos
middleware the dependencies are resolved and when satisfied the
components are added to the processing graph appropriately."

:class:`AutoAssembler` provides that third mode: components are handed to
the assembler, which wires input ports to compatible producers as they
become available -- kind overlap plus required-Component-Feature checks,
the same realizability rules :meth:`ProcessingGraph.connect` enforces.
Ports declared ``multiple`` (fusion inputs) bind every compatible
producer; ordinary ports bind exactly one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.component import InputPort, ProcessingComponent
from repro.core.graph import GraphError, ProcessingGraph


class AssemblyError(Exception):
    """Raised on assembly-policy violations."""


class AutoAssembler:
    """Connects components added to a graph by matching capabilities.

    Resolution runs to a fixpoint on every :meth:`add`: adding a producer
    late satisfies waiting consumers, and adding a consumer binds it to
    already-present producers -- declaration order does not matter,
    mirroring :class:`repro.services.declarative.ComponentRuntime`.
    """

    def __init__(self, graph: Optional[ProcessingGraph] = None) -> None:
        self.graph = graph or ProcessingGraph()
        self._managed: List[str] = []

    # -- membership -----------------------------------------------------------

    def add(self, component: ProcessingComponent) -> ProcessingComponent:
        """Add a component and resolve whatever became connectable."""
        if component.name not in self.graph:
            self.graph.add(component)
        if component.name not in self._managed:
            self._managed.append(component.name)
        self.resolve()
        return component

    def remove(self, name: str, reconnect: bool = False) -> None:
        """Remove a managed component; neighbours re-resolve."""
        if name in self._managed:
            self._managed.remove(name)
        self.graph.remove(name, reconnect=reconnect)
        self.resolve()

    # -- resolution --------------------------------------------------------------

    def unresolved(self) -> List[Tuple[str, str]]:
        """``(component, port)`` pairs still waiting for a producer."""
        waiting = []
        for name in self._managed:
            component = self.graph.component(name)
            for port in component.input_ports:
                if port.optional:
                    continue
                if not self._feeders(name, port.name):
                    waiting.append((name, port.name))
        return waiting

    def resolve(self) -> int:
        """Run matching to a fixpoint; returns connections created."""
        created = 0
        progress = True
        while progress:
            progress = False
            for name in list(self._managed):
                consumer = self.graph.component(name)
                for port in consumer.input_ports:
                    if self._try_bind(consumer, port):
                        created += 1
                        progress = True
        return created

    def _feeders(self, consumer: str, port: str) -> List[str]:
        return [
            c.producer
            for c in self.graph.connections()
            if c.consumer == consumer and c.port == port
        ]

    def _try_bind(
        self, consumer: ProcessingComponent, port: InputPort
    ) -> bool:
        current = self._feeders(consumer.name, port.name)
        if current and not port.multiple:
            return False
        for producer in self._candidates(consumer, port):
            if producer in current:
                continue
            try:
                self.graph.connect(producer, consumer.name, port.name)
                return True
            except GraphError:
                continue
        return False

    def _candidates(
        self, consumer: ProcessingComponent, port: InputPort
    ) -> List[str]:
        """Producers compatible with ``port``, deterministic order.

        Compatibility repeats the graph's own realizability rules so the
        assembler never proposes a connection that would be rejected.
        """
        matches = []
        for component in self.graph.components():
            if component.name == consumer.name:
                continue
            if not set(port.accepts) & set(
                component.output_port.capabilities
            ):
                continue
            if any(
                not component.has_feature(f)
                for f in port.required_features
            ):
                continue
            if consumer.name in self.graph.ancestors(component.name):
                continue  # would create a cycle
            matches.append(component.name)
        return sorted(matches)

    def describe(self) -> Dict[str, List[str]]:
        """Assembly status: managed components and waiting ports."""
        return {
            "managed": list(self._managed),
            "unresolved": [f"{c}.{p}" for c, p in self.unresolved()],
        }
