"""Component Features: the paper's per-component extension mechanism.

Paper §2.1, Fig. 3(a): "Component Features are small code modules that can
hook into a component and augment it in three ways.  Firstly, data can be
manipulated when flowing into or out of the component.  Secondly,
additional data can be associated with the data flowing out of the
component.  Thirdly, component state can be read, exposed and
manipulated."

:class:`ComponentFeature` realises all three:

* override :meth:`consume` / :meth:`produce` to rewrite data in flight
  (the hooks may alter the payload but not the kind);
* call :meth:`add_data` from a hook to emit a *new* datum through the host
  component's output port -- it carries the feature's ``provides`` kind and
  is only delivered to downstream ports that declare they accept it;
* define ordinary methods on the feature subclass; they become visible
  through the host component's reflective API
  (``component.get_feature(...)`` / ``component.feature_methods()``),
  which is how the paper's HDOP and Power Strategy features expose state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.data import Datum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.component import ProcessingComponent


class FeatureError(Exception):
    """Raised on illegal feature operations (bad attach, kind change)."""


class ComponentFeature:
    """Base class for features attached to a processing component.

    Subclasses may set:

    ``name``
        Identity used for lookup; defaults to the class name.
    ``provides``
        Kinds of feature-added data this feature may emit via
        :meth:`add_data` (advertised on the host's output port).
    ``requires_kinds``
        Kinds the host component must be able to produce for this feature
        to make sense; checked at attach time.
    """

    name: str = ""
    provides: Tuple[str, ...] = ()
    requires_kinds: Tuple[str, ...] = ()

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        self._component: Optional["ProcessingComponent"] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def component(self) -> "ProcessingComponent":
        if self._component is None:
            raise FeatureError(f"feature {self.name} is not attached")
        return self._component

    @property
    def attached(self) -> bool:
        return self._component is not None

    def _attach(self, component: "ProcessingComponent") -> None:
        if self._component is not None:
            raise FeatureError(
                f"feature {self.name} already attached to"
                f" {self._component.name}"
            )
        missing = [
            kind
            for kind in self.requires_kinds
            if kind not in component.output_port.capabilities
        ]
        if missing:
            raise FeatureError(
                f"feature {self.name} requires kinds {missing} that"
                f" component {component.name} does not produce"
            )
        self._component = component
        self.on_attached()

    def _detach(self) -> None:
        self.on_detached()
        self._component = None

    def on_attached(self) -> None:
        """Hook called after the feature is attached."""

    def on_detached(self) -> None:
        """Hook called before the feature is removed."""

    # -- data interception (augmentation type 1) --------------------------

    def consume(self, datum: Datum) -> Optional[Datum]:
        """Intercept data flowing *into* the host component.

        Return a (possibly altered) datum to pass on, or ``None`` to drop
        it before the component sees it.  The kind must not change.
        """
        return datum

    def produce(self, datum: Datum) -> Optional[Datum]:
        """Intercept data flowing *out of* the host component.

        Same contract as :meth:`consume`, applied to outgoing data.
        """
        return datum

    # -- feature-added data (augmentation type 2) --------------------------

    def add_data(self, datum: Datum) -> None:
        """Emit a new datum as if produced by the host component.

        The datum's kind must be one this feature declared in
        ``provides``.  It propagates through the graph like ordinary
        output, but only into input ports that explicitly accept the
        kind (paper §2.1).
        """
        if datum.kind not in self.provides:
            raise FeatureError(
                f"feature {self.name} declared provides={self.provides},"
                f" cannot add data of kind {datum.kind!r}"
            )
        self.component.emit_feature_data(
            datum.from_producer(f"{self.component.name}#{self.name}")
        )

    # -- reflection helpers ------------------------------------------------

    def exposed_methods(self) -> List[str]:
        """Public methods this feature adds to its host component."""
        base = set(dir(ComponentFeature))
        return sorted(
            name
            for name in dir(type(self))
            if not name.startswith("_")
            and name not in base
            and callable(getattr(self, name))
        )

    def describe(self) -> dict:
        """Reflective summary, mirroring ``ProcessingComponent.describe``."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "provides": list(self.provides),
            "requires_kinds": list(self.requires_kinds),
            "host": self._component.name if self._component else None,
            "methods": self.exposed_methods(),
        }

    def __repr__(self) -> str:
        host = self._component.name if self._component else "unattached"
        return f"{type(self).__name__}(name={self.name!r}, host={host})"
