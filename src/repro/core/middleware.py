"""The PerPos middleware facade.

Ties the pieces together the way the paper's platform does: one
processing graph exposed through the three abstraction layers (PSL, PCL,
Positioning), an OSGi-style framework in which the layers are registered
as services, a simulation clock, and sensor pumping that feeds
:class:`~repro.sensors.base.SimulatedSensor` readings into source
components.

Pipelines (which concrete components to chain for GPS, WiFi, ...) live in
:mod:`repro.processing.pipelines`; the facade stays policy-free.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.clock import SimulationClock
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import (
    Criteria,
    LocationProvider,
    PositioningLayer,
)
from repro.core.psl import ProcessStructureLayer
from repro.durability import DurabilityManager, MemoryStateStore, StateStore
from repro.gateway import IngestionGateway
from repro.observability.instrumentation import ObservabilityHub
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import FlowTrace, trace_of
from repro.robustness.supervision import SupervisionPolicy, Supervisor
from repro.runtime.engine import PositioningEngine
from repro.runtime.scheduler import FairScheduler
from repro.runtime.sharding import GraphRecipe, ShardedEngine
from repro.sensors.base import SensorReading, SimulatedSensor
from repro.services.bundle import Framework
from repro.services.registry import ServiceRegistration

#: Maps a SensorReading's declared format to a graph data kind.
DEFAULT_KIND_MAP: Dict[str, str] = {
    "nmea-raw": Kind.NMEA_RAW,
    "wifi-scan": Kind.WIFI_SCAN,
    "beacon-scan": Kind.BEACON_SCAN,
    "accel-variance": Kind.ACCEL_VARIANCE,
}


class PerPos:
    """One middleware instance: graph + layers + clock + sensor pumping."""

    def __init__(self, clock: Optional[SimulationClock] = None) -> None:
        self.clock = clock or SimulationClock()
        self.graph = ProcessingGraph()
        self.psl = ProcessStructureLayer(self.graph)
        self.pcl = ProcessChannelLayer(self.graph)
        self.positioning = PositioningLayer()
        self.framework = Framework()
        self._sensors: List[Tuple[SimulatedSensor, SourceComponent, Callable]] = []
        self._sharding: Optional[ShardedEngine] = None
        self._sharding_registration: Optional[ServiceRegistration] = None
        self._gateway_registration: Optional[ServiceRegistration] = None
        self._durability_registration: Optional[ServiceRegistration] = None
        self._scenario_registration: Optional[ServiceRegistration] = None
        # The layers are themselves services, as in the OSGi realisation.
        registry = self.framework.registry
        registry.register("perpos.ProcessingGraph", self.graph)
        registry.register("perpos.ProcessStructureLayer", self.psl)
        registry.register("perpos.ProcessChannelLayer", self.pcl)
        registry.register("perpos.PositioningLayer", self.positioning)

    # -- observability -----------------------------------------------------------

    @property
    def observability(self) -> Optional[ObservabilityHub]:
        """The installed hub, or None while observability is disabled."""
        return self.graph.instrumentation

    def enable_observability(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        tracing: bool = True,
    ) -> ObservabilityHub:
        """Install runtime metrics + flow tracing on this middleware.

        The hub's clock is the middleware's simulation clock, so hop
        timestamps and latencies are deterministic.  Re-enabling
        replaces the previous hub; pass an explicit ``registry`` to keep
        accumulating into existing series.
        """
        hub = ObservabilityHub(
            registry=registry,
            time_fn=lambda: self.clock.now,
            tracing=tracing,
        )
        self.graph.set_instrumentation(hub)
        registry_service = self.framework.registry
        if registry_service.find_service("perpos.ObservabilityHub") is None:
            registry_service.register("perpos.ObservabilityHub", hub)
        return hub

    def disable_observability(self) -> Optional[ObservabilityHub]:
        """Remove the hub (recorded metrics stay readable on it)."""
        return self.graph.set_instrumentation(None)

    # -- supervision -------------------------------------------------------------

    @property
    def supervision(self) -> Optional[Supervisor]:
        """The installed supervisor, or None while supervision is off."""
        return self.graph.supervisor

    def enable_supervision(
        self, policy: Optional[SupervisionPolicy] = None
    ) -> Supervisor:
        """Install failure supervision on this middleware's graph.

        The supervisor's clock is the middleware's simulation clock, so
        sliding failure windows and half-open probe recovery are fully
        deterministic.  Re-enabling replaces the previous supervisor
        (and its failure history).
        """
        supervisor = Supervisor(policy, time_fn=lambda: self.clock.now)
        self.graph.set_supervisor(supervisor)
        registry_service = self.framework.registry
        if registry_service.find_service("perpos.Supervisor") is None:
            registry_service.register("perpos.Supervisor", supervisor)
        return supervisor

    def disable_supervision(self) -> Optional[Supervisor]:
        """Remove the supervisor (its failure records stay readable)."""
        return self.graph.set_supervisor(None)

    # -- scale-out runtime -------------------------------------------------------

    @property
    def runtime(self) -> Optional[PositioningEngine]:
        """The installed engine, or None while the runtime is disabled."""
        return self.graph.engine

    def enable_runtime(
        self, scheduler: Optional[FairScheduler] = None
    ) -> PositioningEngine:
        """Install the multi-target scale-out runtime on this graph.

        The engine shares the middleware's simulation clock, so
        ``engine.start(interval)`` drain rounds interleave
        deterministically with sensor pumping.  Re-enabling replaces
        the previous engine (and discards its lanes); stop it first if
        it was started.
        """
        previous = self.graph.engine
        if previous is not None:
            previous.stop()
        engine = PositioningEngine(
            self.graph, clock=self.clock, scheduler=scheduler
        )
        registry_service = self.framework.registry
        if registry_service.find_service("perpos.PositioningEngine") is None:
            registry_service.register("perpos.PositioningEngine", engine)
        return engine

    def disable_runtime(self) -> Optional[PositioningEngine]:
        """Remove the engine (its lane statistics stay readable).

        A started engine is stopped first, so no drain rounds fire
        after the runtime is disabled.
        """
        engine = self.graph.set_engine(None)
        if engine is not None:
            engine.stop()
        return engine

    # -- sharded runtime ---------------------------------------------------------

    @property
    def sharding(self) -> Optional[ShardedEngine]:
        """The installed sharded engine, or None while sharding is off."""
        return self._sharding

    def enable_sharding(
        self, recipe: GraphRecipe, shards: int, **kwargs: object
    ) -> ShardedEngine:
        """Install a sharded multi-worker runtime on this middleware.

        Unlike :meth:`enable_runtime` (which multiplexes targets over
        *this* middleware's graph), sharding partitions targets across
        ``shards`` private graphs each built from ``recipe``; the
        middleware's own graph keeps serving the single-process layers.
        The coordinator shares the middleware's simulation clock, so
        ``sharding.start(interval)`` drain rounds interleave
        deterministically with sensor pumping.  Keyword arguments pass
        through to :class:`~repro.runtime.sharding.ShardedEngine`
        (``placement``, ``executor``, ``scheduler``, ``observability``,
        ``supervision``, ...).  Re-enabling closes the previous
        coordinator first.
        """
        previous = self._sharding
        if previous is not None:
            previous.close()
        engine = ShardedEngine(
            recipe,
            shards,
            clock=self.clock,
            **kwargs,  # type: ignore[arg-type]
        )
        self._sharding = engine
        engine.durability = self.graph.durability
        # Re-register unconditionally: a stale registration would hand
        # registry consumers the previous, now-closed coordinator.
        if self._sharding_registration is not None:
            self._sharding_registration.unregister()
        self._sharding_registration = self.framework.registry.register(
            "perpos.ShardedEngine", engine
        )
        return engine

    def disable_sharding(self) -> Optional[ShardedEngine]:
        """Stop and close the sharded runtime, releasing its workers.

        Worker processes (multiprocessing executor) terminate, so live
        shard state becomes unreadable; the coordinator's own counters
        and failure records stay readable on the returned object.
        """
        engine = self._sharding
        self._sharding = None
        if self._sharding_registration is not None:
            self._sharding_registration.unregister()
            self._sharding_registration = None
        if engine is not None:
            engine.close()
        return engine

    # -- ingestion gateway -------------------------------------------------------

    @property
    def gateway(self) -> Optional[IngestionGateway]:
        """The installed ingestion gateway, or None while the edge is off."""
        return self.graph.gateway

    def enable_gateway(
        self,
        source: str,
        *,
        engine: Optional[object] = None,
        **kwargs: object,
    ) -> IngestionGateway:
        """Install the raw-payload ingestion edge on this middleware.

        ``source`` names the graph source component that auto-tracked
        device lanes enter at.  The gateway feeds whichever runtime is
        live: the sharded coordinator when sharding is enabled,
        otherwise this graph's :class:`PositioningEngine` (enable one
        first); pass ``engine`` explicitly to override.  The gateway
        shares the middleware's simulation clock (deterministic
        freshness checks and DLQ backoff) and resolves the hub lazily,
        so it follows ``enable_observability``/``disable_observability``
        without rewiring.  Keyword arguments pass through to
        :class:`~repro.gateway.IngestionGateway` (``formats``,
        ``device_policy``, ``admission_capacity``, ``retry``,
        ``max_age_s``, ...).  Re-enabling replaces (and closes) the
        previous gateway.
        """
        if engine is None:
            engine = self._sharding if self._sharding is not None else self.graph.engine
        if engine is None:
            raise ValueError(
                "no runtime to feed: enable_runtime() or enable_sharding()"
                " before enable_gateway(), or pass engine= explicitly"
            )
        previous = self.graph.gateway
        if previous is not None:
            previous.close()
        gateway = IngestionGateway(
            engine,
            source,
            clock=self.clock,
            hub=lambda: self.graph.instrumentation,
            **kwargs,  # type: ignore[arg-type]
        )
        self.graph.set_gateway(gateway)
        # Re-register unconditionally: a stale registration would hand
        # registry consumers the previous, now-closed gateway.
        if self._gateway_registration is not None:
            self._gateway_registration.unregister()
        self._gateway_registration = self.framework.registry.register(
            "perpos.IngestionGateway", gateway
        )
        manager = self.graph.durability
        if manager is not None:
            dlq_state = manager.load_dlq_state()
            if dlq_state is not None:
                gateway.dlq.state_restore(dlq_state)
        return gateway

    def disable_gateway(self) -> Optional[IngestionGateway]:
        """Close the ingestion edge (DLQ and counters stay readable).

        With durability enabled, the dead-letter records are persisted
        to the state store first, so a later :meth:`enable_gateway`
        rehydrates them -- a disable/enable cycle (or a crash between
        the two) no longer forfeits payloads awaiting replay-after-fix.
        """
        gateway = self.graph.set_gateway(None)
        if self._gateway_registration is not None:
            self._gateway_registration.unregister()
            self._gateway_registration = None
        if gateway is not None:
            manager = self.graph.durability
            if manager is not None:
                manager.save_dlq_state(gateway.dlq.state_snapshot())
            gateway.close()
        return gateway

    # -- durability --------------------------------------------------------------

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The installed durability manager, or None while it is off."""
        return self.graph.durability

    def enable_durability(
        self,
        store: Optional[StateStore] = None,
        *,
        snapshot_every: Optional[int] = None,
    ) -> DurabilityManager:
        """Install durable state on this middleware's runtime.

        Requires a live :meth:`enable_runtime` engine: the manager
        journals every submit/drain/track/untrack/policy mutation into
        ``store`` (default: an in-memory store, useful for tests and
        warm handoff staging) and can snapshot/restore the full engine
        state -- lanes, queues, component state, breakers, DLQ records,
        metric counters.  ``snapshot_every`` auto-snapshots after that
        many journal entries.  Re-enabling detaches the previous
        manager (its store stays readable).
        """
        engine = self.graph.engine
        if engine is None:
            raise ValueError(
                "no runtime to persist: enable_runtime() before"
                " enable_durability()"
            )
        previous = self.graph.durability
        if previous is not None:
            previous.detach()
        manager = DurabilityManager(
            self.graph,
            store if store is not None else MemoryStateStore(),
            snapshot_every=snapshot_every,
        )
        manager.attach()
        if self._sharding is not None:
            self._sharding.durability = manager
        # Re-register unconditionally: a stale registration would hand
        # registry consumers the previous, now-detached manager.
        if self._durability_registration is not None:
            self._durability_registration.unregister()
        self._durability_registration = self.framework.registry.register(
            "perpos.DurabilityManager", manager
        )
        return manager

    def disable_durability(self) -> Optional[DurabilityManager]:
        """Detach durable state (the store's contents stay readable)."""
        manager = self.graph.durability
        if self._durability_registration is not None:
            self._durability_registration.unregister()
            self._durability_registration = None
        if self._sharding is not None and self._sharding.durability is manager:
            self._sharding.durability = None
        if manager is not None:
            manager.detach()
        return manager

    def enable_scenario(self, runner: Any) -> Any:
        """Install a scenario runner (and its control loop, if any).

        The runner (:class:`repro.scenario.ScenarioRunner`) drives the
        workload from outside; installing it only publishes the
        inspection surfaces -- ``psl.scenario()``, ``psl.controllers()``
        and the report's ``scenario:`` / ``control:`` sections -- plus a
        ``perpos.ScenarioRunner`` service registration.  Re-enabling
        replaces the previous runner.
        """
        self.graph.set_scenario(runner)
        self.graph.set_control(getattr(runner, "control", None))
        # Re-register unconditionally: a stale registration would hand
        # registry consumers the previous runner.
        if self._scenario_registration is not None:
            self._scenario_registration.unregister()
        self._scenario_registration = self.framework.registry.register(
            "perpos.ScenarioRunner", runner
        )
        return runner

    def disable_scenario(self) -> Optional[Any]:
        """Remove the scenario runner and control loop surfaces."""
        runner = self.graph.set_scenario(None)
        self.graph.set_control(None)
        if self._scenario_registration is not None:
            self._scenario_registration.unregister()
            self._scenario_registration = None
        return runner

    def trace(self, position: Optional[Datum]) -> Optional[FlowTrace]:
        """The component path (with timestamps) behind a delivered datum.

        The runtime twin of the PCL data tree: for a position the
        application received, this returns the exact source-to-sink
        component sequence that produced it, or None when the datum was
        produced while tracing was off.
        """
        return trace_of(position)

    # -- sensors ---------------------------------------------------------------

    def attach_sensor(
        self,
        sensor: SimulatedSensor,
        capabilities: Sequence[str],
        kind_of: Optional[Callable[[SensorReading], str]] = None,
        source_name: Optional[str] = None,
    ) -> SourceComponent:
        """Wrap a simulated sensor as a source component in the graph.

        ``kind_of`` maps each reading to a data kind; by default the
        reading's ``attributes['format']`` is looked up in
        :data:`DEFAULT_KIND_MAP`.  The emulator sensor of §3.2 plugs in
        through exactly this method, "taking the place of the sensors".
        """
        name = source_name or sensor.sensor_id
        source = SourceComponent(name, capabilities)
        self.graph.add(source)

        def _default_kind(reading: SensorReading) -> str:
            fmt = reading.attributes.get("format", "")
            try:
                return DEFAULT_KIND_MAP[fmt]
            except KeyError:
                raise ValueError(
                    f"reading from {reading.sensor_id} has unmapped format"
                    f" {fmt!r}; pass kind_of explicitly"
                ) from None

        self._sensors.append((sensor, source, kind_of or _default_kind))
        return source

    def detach_sensor(self, source_name: str) -> None:
        """Remove a sensor and its source component from the graph."""
        for entry in list(self._sensors):
            if entry[1].name == source_name:
                self._sensors.remove(entry)
                self.graph.remove(source_name)
                return
        raise KeyError(f"no sensor attached as {source_name!r}")

    def pump(self, now: Optional[float] = None) -> int:
        """Sample every sensor and inject due readings into the graph.

        Returns the number of readings injected.  ``now`` defaults to the
        middleware clock's current time.
        """
        t = self.clock.now if now is None else now
        injected = 0
        for sensor, source, kind_of in list(self._sensors):
            for reading in sensor.sample(t):
                source.inject(
                    Datum(
                        kind=kind_of(reading),
                        payload=reading.payload,
                        timestamp=reading.timestamp,
                        producer=source.name,
                        attributes=reading.attributes,
                    )
                )
                injected += 1
        return injected

    def run_until(self, deadline: float, step_s: float = 1.0) -> None:
        """Advance the clock to ``deadline``, pumping sensors every step."""
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        while self.clock.now < deadline:
            target = min(self.clock.now + step_s, deadline)
            self.clock.run_until(target)
            self.pump()

    # -- positioning layer conveniences ----------------------------------------

    def create_provider(
        self,
        name: str,
        accepts: Sequence[str],
        technologies: Sequence[str] = (),
    ) -> LocationProvider:
        """Create an application sink + provider and register both."""
        sink = ApplicationSink(name, accepts)
        self.graph.add(sink)
        provider = LocationProvider(name, sink, self.pcl, technologies)
        self.positioning.register_provider(provider)
        return provider

    def get_provider(self, criteria: Criteria) -> LocationProvider:
        """JSR-179-style provider lookup by criteria."""
        return self.positioning.get_provider(criteria)
