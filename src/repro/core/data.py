"""The data envelope that flows along processing-graph edges.

Edges in the PerPos graph "represent the data that flows between
components" (paper §2).  Every element on an edge is a :class:`Datum`: a
typed payload with a wall-clock timestamp and provenance.  The ``kind``
string is the unit of capability matching -- output ports declare the
kinds they can produce, input ports the kinds they accept -- and of
feature-added data routing (paper §2.1 "Adding Data": generated data is
only propagated if the next component explicitly accepts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


class Kind:
    """Well-known data kinds used by the built-in components.

    Kinds are plain strings so applications can mint their own; these
    constants just name the ones the stock pipeline speaks.
    """

    NMEA_RAW = "nmea-raw"  # serial string fragments from a GPS device
    NMEA_SENTENCE = "nmea-sentence"  # parsed NMEA sentence values
    POSITION_WGS84 = "position-wgs84"  # geodetic positions
    POSITION_GRID = "position-grid"  # building-grid positions
    ROOM_ID = "room-id"  # symbolic locations
    WIFI_SCAN = "wifi-scan"  # WiFi RSSI scans
    BEACON_SCAN = "beacon-scan"  # BLE beacon sightings
    ACCEL_VARIANCE = "accel-variance"  # accelerometer motion energy
    HDOP = "hdop"  # feature-added dilution of precision
    NUM_SATELLITES = "num-satellites"  # feature-added satellite count
    SEGMENT = "trajectory-segment"  # windowed position sequences
    SEGMENT_FEATURES = "segment-features"  # motion statistics per segment
    TRANSPORT_MODE = "transport-mode"  # classified movement mode


@dataclass(frozen=True)
class Datum:
    """One unit of data travelling through the processing graph.

    Parameters
    ----------
    kind:
        Capability string; drives routing and port compatibility.
    payload:
        The value itself (an NMEA sentence, a position, a scan, ...).
    timestamp:
        Simulation wall-clock time the underlying observation was made.
    producer:
        Name of the component (or feature) that produced this datum.
    attributes:
        Free-form annotations; features use this to associate extra data
        with an element without changing its type.
    """

    kind: str
    payload: Any
    timestamp: float
    producer: str = ""
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def attribute(self, key: str, default: Any = None) -> Any:
        """Look one annotation up; how trace/feature data is read back.

        Attributes are the envelope's extension point (features and the
        observability layer both ride on them), so reads go through one
        accessor instead of poking the mapping directly.
        """
        return self.attributes.get(key, default)

    def with_payload(self, payload: Any) -> "Datum":
        """Copy with a different payload (same kind/time/provenance).

        Component Features use this in ``consume``/``produce`` hooks: the
        paper allows them to alter data but not to change its type.
        """
        return Datum(
            kind=self.kind,
            payload=payload,
            timestamp=self.timestamp,
            producer=self.producer,
            attributes=self.attributes,
        )

    def annotated(self, **annotations: Any) -> "Datum":
        """Copy with extra attributes merged in."""
        merged = dict(self.attributes)
        merged.update(annotations)
        return Datum(
            kind=self.kind,
            payload=self.payload,
            timestamp=self.timestamp,
            producer=self.producer,
            attributes=merged,
        )

    def from_producer(self, producer: str) -> "Datum":
        """Copy re-attributed to ``producer``."""
        return Datum(
            kind=self.kind,
            payload=self.payload,
            timestamp=self.timestamp,
            producer=producer,
            attributes=self.attributes,
        )
