"""PerPos core: the paper's primary contribution (system S9).

The middleware reifies the positioning process as a graph of
:class:`~repro.core.component.ProcessingComponent` nodes and exposes it
through three layers of increasing abstraction:

* :class:`~repro.core.psl.ProcessStructureLayer` -- full structural
  reflection: insert/delete/connect, Component Features, method access;
* :class:`~repro.core.pcl.ProcessChannelLayer` -- source-to-merge
  channels with logical-time data trees and Channel Features;
* :class:`~repro.core.positioning.PositioningLayer` -- the traditional
  JSR-179-style provider API, with adaptations from below still
  reachable.

:class:`~repro.core.middleware.PerPos` bundles the three over one graph.
"""

from repro.core.assembly import AssemblyError, AutoAssembler
from repro.core.channel import Channel, ChannelFeature
from repro.core.config import (
    ComponentTypeRegistry,
    ConfigurationError,
    default_registry,
    load_configuration,
)
from repro.core.history import TrackHistoryService, TrackPoint
from repro.core.compile import CompiledPlan, FusedChain, compile_plan
from repro.core.component import (
    ApplicationSink,
    ComponentError,
    ComponentObserver,
    FunctionComponent,
    InputPort,
    OutputPort,
    ProcessingComponent,
    SourceComponent,
)
from repro.core.data import Datum, Kind
from repro.core.datatree import DataTree, DataTreeElement
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import Connection, GraphError, GraphObserver, ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import (
    Criteria,
    LocationProvider,
    PositioningError,
    PositioningLayer,
    Target,
)
from repro.core.psl import ProcessStructureLayer
from repro.core.report import infrastructure_snapshot, render_report
from repro.observability import (
    ChannelTracingFeature,
    FlowTrace,
    MetricsRegistry,
    NullMetricsRegistry,
    ObservabilityHub,
    TraceHop,
    TracingFeature,
    trace_of,
)
from repro.robustness import (
    FailureRecord,
    FaultInjected,
    FaultInjectionFeature,
    SupervisionError,
    SupervisionPolicy,
    Supervisor,
)

__all__ = [
    "AutoAssembler",
    "AssemblyError",
    "ComponentTypeRegistry",
    "ConfigurationError",
    "default_registry",
    "load_configuration",
    "TrackHistoryService",
    "TrackPoint",
    "infrastructure_snapshot",
    "render_report",
    "Datum",
    "Kind",
    "ProcessingComponent",
    "SourceComponent",
    "FunctionComponent",
    "ApplicationSink",
    "InputPort",
    "OutputPort",
    "ComponentError",
    "ComponentObserver",
    "ComponentFeature",
    "FeatureError",
    "ProcessingGraph",
    "GraphObserver",
    "GraphError",
    "Connection",
    "CompiledPlan",
    "FusedChain",
    "compile_plan",
    "DataTree",
    "DataTreeElement",
    "Channel",
    "ChannelFeature",
    "ProcessStructureLayer",
    "ProcessChannelLayer",
    "PositioningLayer",
    "LocationProvider",
    "Criteria",
    "Target",
    "PositioningError",
    "PerPos",
    "ChannelTracingFeature",
    "FlowTrace",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "ObservabilityHub",
    "TraceHop",
    "TracingFeature",
    "trace_of",
    "FailureRecord",
    "FaultInjected",
    "FaultInjectionFeature",
    "SupervisionError",
    "SupervisionPolicy",
    "Supervisor",
]
