"""The Process Channel Layer (paper §2.2).

"The middle layer is called the Process Channel Layer (PCL) and it is a
view of the position processing where only data sources and merging
processing components and the data-flow between them are represented."

The PCL derives :class:`~repro.core.channel.Channel` objects from the
current graph: one channel per single-strained flow from a PCL node (a
data source or a merge component) to the next PCL node or application.
Channels are "dynamically created when the PerPos middleware assembles
the Processing Components" -- here, recomputed on every topology change,
preserving the channel objects (their logical-time state and attached
Channel Features) whose member chain is unchanged.

Derivation walks the graph's adjacency indexes
(:meth:`~repro.core.graph.ProcessingGraph.upstream_map` /
``downstream_map``) rather than issuing per-node edge scans, and the PCL
registers as the graph's *single* observer for all of its channels: data
events are forwarded through a member-name index to just the channels
whose strand contains the producing/consuming component, so event cost
scales with strand membership, not with the total channel count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.channel import Channel, ChannelFeature
from repro.core.component import ProcessingComponent
from repro.core.data import Datum
from repro.core.graph import GraphError, GraphObserver, ProcessingGraph

ChannelKey = Tuple[Tuple[str, ...], str]

_NO_CHANNELS: Tuple[Channel, ...] = ()


class ProcessChannelLayer(GraphObserver):
    """Maintains the channel decomposition of the processing graph."""

    def __init__(self, graph: ProcessingGraph) -> None:
        self.graph = graph
        self._channels: Dict[ChannelKey, Channel] = {}
        # Member component name -> channels whose strand contains it;
        # rebuilt with the decomposition, consulted per data event.
        self._member_channels: Dict[str, Tuple[Channel, ...]] = {}
        self._unsubscribe = graph.add_observer(self)
        self._rebuild()

    def close(self) -> None:
        """Stop observing the graph and close every channel."""
        self._unsubscribe()
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()
        self._member_channels = {}

    # -- channel derivation -----------------------------------------------------

    def topology_changed(self, graph: ProcessingGraph) -> None:
        """Graph observation: re-derive the channel decomposition."""
        self._rebuild()

    # -- event forwarding (hot path) --------------------------------------------

    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None:
        """Forward the consume event to the channels containing the member."""
        for channel in self._member_channels.get(component.name, _NO_CHANNELS):
            channel.data_consumed(component, port_name, datum)

    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None:
        """Forward the produce event to the channels containing the member."""
        for channel in self._member_channels.get(component.name, _NO_CHANNELS):
            channel.data_produced(component, datum)

    # -- derivation internals ---------------------------------------------------

    def _is_pcl_node(self, name: str) -> bool:
        """PCL nodes: data sources, merge components, and applications.

        Components flagged ``pcl_node`` (fusion by role) count as merge
        components regardless of their current in-degree.
        """
        return self._classify(
            name, self.graph.upstream_map(), self.graph.downstream_map()
        )

    def _classify(
        self,
        name: str,
        upstream: Mapping[str, Sequence[str]],
        downstream: Mapping[str, Sequence[str]],
    ) -> bool:
        if self.graph.component(name).pcl_node:
            return True
        if len(upstream.get(name, ())) != 1:
            return True  # source (0) or merge (>= 2)
        return not downstream.get(name)  # application/sink

    def _derive_keys(self) -> List[ChannelKey]:
        graph = self.graph
        upstream = graph.upstream_map()
        downstream = graph.downstream_map()
        is_pcl_node = {
            component.name: self._classify(
                component.name, upstream, downstream
            )
            for component in graph.components()
        }
        keys = []
        for name, node_is_pcl in is_pcl_node.items():
            if not node_is_pcl:
                continue
            # Walk each inbound strand up to the previous PCL node.
            for producer in upstream.get(name, ()):
                chain = [producer]
                node = producer
                while not is_pcl_node[node]:
                    node = upstream[node][0]
                    chain.append(node)
                keys.append((tuple(reversed(chain)), name))
        return keys

    def _rebuild(self) -> None:
        wanted = set(self._derive_keys())
        current = set(self._channels)
        for key in current - wanted:
            self._channels.pop(key).close()
        for key in wanted - current:
            member_names, endpoint = key
            members = [self.graph.component(n) for n in member_names]
            self._channels[key] = Channel(
                self.graph, members, endpoint, subscribe=False
            )
        member_channels: Dict[str, List[Channel]] = {}
        for channel in self._channels.values():
            for member in channel.members:
                member_channels.setdefault(member.name, []).append(channel)
        self._member_channels = {
            name: tuple(channels)
            for name, channels in member_channels.items()
        }

    # -- inspection ----------------------------------------------------------------

    def channels(self) -> List[Channel]:
        """All channels, ordered by id for deterministic iteration."""
        return sorted(self._channels.values(), key=lambda c: c.id)

    def channel(self, channel_id: str) -> Channel:
        """Look a channel up by its ``source->endpoint`` id."""
        for ch in self._channels.values():
            if ch.id == channel_id:
                return ch
        raise GraphError(f"no channel {channel_id!r}")

    def channels_into(self, endpoint: str) -> List[Channel]:
        """Channels delivering into the named PCL node."""
        return sorted(
            (c for c in self._channels.values() if c.endpoint == endpoint),
            key=lambda c: c.id,
        )

    def channel_delivering(
        self, consumer: str, producer: str
    ) -> Optional[Channel]:
        """The channel whose last member is ``producer`` feeding ``consumer``.

        This resolves the paper's "current input port" to its channel:
        when a merge component receives a datum it can ask which channel
        carried it (Fig. 5 snippet 1) and fetch that channel's features.
        """
        for ch in self._channels.values():
            if ch.endpoint == consumer and ch.last_component.name == producer:
                return ch
        return None

    def describe(self) -> List[Dict[str, Any]]:
        """Reflective summary of the channel view (Fig. 2, middle layer)."""
        return [ch.describe() for ch in self.channels()]

    # -- runtime observability ------------------------------------------------

    def channel_metrics(self, channel_id: str) -> Dict[str, Any]:
        """Live runtime statistics for one channel (see ``Channel.stats``)."""
        return self.channel(channel_id).stats()

    def flow_summary(self) -> List[Dict[str, Any]]:
        """Outputs delivered + latest flow trace per channel.

        The channel-layer view of runtime behaviour: how much each
        strand has delivered, how often its Channel Features failed, and
        the concrete component path behind its most recent output (None
        while tracing is disabled).
        """
        summary = []
        for channel in self.channels():
            trace = channel.latest_trace()
            summary.append(
                {
                    "id": channel.id,
                    "outputs_delivered": channel.stats()[
                        "outputs_delivered"
                    ],
                    "feature_errors": channel.feature_error_count,
                    "latest_path": trace.path if trace else None,
                }
            )
        return summary

    def render(self) -> str:
        """ASCII rendering of the channel view."""
        lines = []
        for ch in self.channels():
            features = (
                " [" + ", ".join(f.name for f in ch.features) + "]"
                if ch.features
                else ""
            )
            path = " -> ".join(m.name for m in ch.members)
            lines.append(f"{path} ==> {ch.endpoint}{features}")
        return "\n".join(lines)

    # -- channel features --------------------------------------------------------------

    def attach_feature(self, channel_id: str, feature: ChannelFeature) -> None:
        """Attach a Channel Feature to the identified channel."""
        self.channel(channel_id).attach_feature(feature)

    def detach_feature(
        self, channel_id: str, feature_name: str
    ) -> ChannelFeature:
        """Detach a Channel Feature from the identified channel."""
        return self.channel(channel_id).detach_feature(feature_name)
