"""Plan compilation: fusing linear stage chains into flat dispatch plans.

The paper's translucency promise is that reflection must cost nothing
while unused -- yet interpreted dispatch still walks the graph
component-by-component, paying a routing lookup, a supervision check and
an observability hook at every hop.  This module is the classic
interpreter->compiler move applied to that walk (RAFDA separates
application logic from dispatch policy; OpenHPS compiles positioning
pipelines into process networks): maximal *linear* chains of
single-in/single-out components are collapsed into a
:class:`FusedChain` -- a flat, pre-resolved call list executed with one
routing lookup per chain instead of one per hop.

Fusion eligibility (the rules DESIGN.md §12 documents):

* **Global gates** -- while any of these holds, the plan compiles to
  zero chains and records the reason: compilation disabled
  (``graph.set_compilation(False)``), a supervisor installed (every
  delivery must cross the supervised boundary), a tracing-enabled hub
  (every hop must extend a flow trace), or graph observers subscribed
  (the PCL reconstructs logical time from per-hop events).  A
  metrics-only hub does *not* gate fusion: fused execution keeps the
  per-component ``items_in``/``items_out``/``errors`` counters exact.
* **Per-node rules** -- a component can be a chain member only if it has
  exactly one inbound and one outbound edge, no Component Features
  attached, and opts into fusion through
  :meth:`~repro.core.component.ProcessingComponent.fused_fn` (stock
  :class:`~repro.core.component.FunctionComponent` instances do).
* Chains must have at least :data:`MIN_CHAIN_LENGTH` members --
  anything shorter is not a chain.

Invalidation is driven by one **plan epoch** on the graph, bumped by
every structural mutation (alongside the topology version) *and* by the
reflection seams that do not touch topology: feature attach/detach,
hub/supervisor install, observer (un)subscription.  A
:class:`FusedChain` snapshots the epoch it was compiled at and
re-checks it at every member boundary; the moment reflection goes live
mid-delivery the chain *decompiles in flight* -- the surviving batch is
handed back to interpreted dispatch from the last completed member, so
compiled and interpreted execution stay observationally equivalent
(pinned by ``tests/test_property_compile.py``).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.core.component import ComponentError, ProcessingComponent
from repro.core.data import Datum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.graph import ProcessingGraph
    from repro.observability.instrumentation import ObservabilityHub

#: A chain shorter than this is not fused: single nodes gain little and
#: would flood the reflective surface with degenerate "chains".
MIN_CHAIN_LENGTH = 2

# -- fallback reasons (the translucency vocabulary of ``describe()``) -----
REASON_DISABLED = "compilation-disabled"
REASON_SUPERVISOR = "supervisor-installed"
REASON_TRACING = "tracing-hub-installed"
REASON_OBSERVERS = "graph-observers-subscribed"

# per-node exclusion reasons
EXCLUDE_FEATURES = "features-attached"
EXCLUDE_FAN_IN = "fan-in"
EXCLUDE_FAN_OUT = "fan-out"
EXCLUDE_OPAQUE = "no-fused-step"
EXCLUDE_SHORT = "chain-too-short"

#: One flat step: ``(component, fn, accepts_set, capabilities_set, name)``
#: -- everything a member's execution needs, resolved at compile time.
FusedStep = Tuple[ProcessingComponent, Any, frozenset, frozenset, str]


class FusedChain:
    """A compiled super-step for one maximal linear chain.

    Executing the chain is observationally equivalent to interpreted
    dispatch through its members: the same kind/capability checks run
    (accept mismatches drop silently exactly where routing would have
    found no entry; capability violations raise from the producing
    member), producer stamping matches
    :meth:`~repro.core.component.ProcessingComponent.produce`, and with
    a metrics hub installed the per-component counters advance
    identically -- including the nested ``errors`` increments an
    exception unwinds through.  Only the hand-off *between* members is
    flattened: no ``receive``/``produce``/dispatch frames, no routing
    lookup, no per-hop seam checks.
    """

    __slots__ = (
        "head",
        "members",
        "ports",
        "steps",
        "epoch",
        "_ops",
        "_instruments",
        "_fused_counter",
    )

    def __init__(
        self,
        steps: List[FusedStep],
        ports: List[str],
        epoch: int,
    ) -> None:
        self.steps: Tuple[FusedStep, ...] = tuple(steps)
        self.ports: Tuple[str, ...] = tuple(ports)
        self.head: str = steps[0][4]
        self.members: Tuple[str, ...] = tuple(step[4] for step in steps)
        self.epoch = epoch
        # The execution form: ``(fn, caps, filter, name)`` per member,
        # where ``filter`` is the accept-set to screen inbound kinds
        # against, or ``None`` when screening is provably unnecessary --
        # the head's batch is already kind-routed, and a mid-chain member
        # whose accept-set covers everything its upstream can produce
        # never sees a rejectable kind.  Skipping the screen saves a full
        # pass over the batch per member on homogeneous pipelines.
        ops: List[Tuple[Any, frozenset, Optional[frozenset], str]] = []
        prev_caps: Optional[frozenset] = None
        for _comp, fn, accepts, caps, name in self.steps:
            screen: Optional[frozenset]
            if prev_caps is None or prev_caps <= accepts:
                screen = None
            else:
                screen = accepts
            ops.append((fn, caps, screen, name))
            prev_caps = caps
        self._ops = tuple(ops)
        # Lazily resolved per-member hub instruments; the plan (and this
        # chain with it) is invalidated whenever the hub changes, so the
        # cache never goes stale.
        self._instruments: Optional[List[Tuple[Any, Any, Any, Any]]] = None
        self._fused_counter: Any = None

    # -- reflective surface --------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        return {
            "head": self.head,
            "members": list(self.members),
            "length": len(self.members),
        }

    def __repr__(self) -> str:
        return f"FusedChain({' -> '.join(self.members)})"

    # -- hub instruments -----------------------------------------------------

    def _hub_instruments(
        self, hub: "ObservabilityHub"
    ) -> List[Tuple[Any, Any, Any, Any]]:
        instruments = self._instruments
        if instruments is None:
            registry = hub.registry
            instruments = self._instruments = [
                (
                    registry.counter("items_in", component=name),
                    registry.counter("items_out", component=name),
                    registry.counter("errors", component=name),
                    registry.histogram("hop_latency_s", component=name),
                )
                for _c, _fn, _a, _caps, name in self.steps
            ]
            self._fused_counter = registry.counter("graph_fused_dispatches")
        return instruments

    # -- execution (per-datum path) -------------------------------------------

    def run_datum(
        self,
        graph: "ProcessingGraph",
        datum: Datum,
        hub: Optional["ObservabilityHub"],
    ) -> None:
        """Run one datum through the flat call list.

        Mirrors depth-first interpreted delivery exactly: a member that
        fans a datum out into several results hands them back to
        interpreted dispatch (``graph._route``) so each result still
        propagates fully before the next, and a mid-delivery epoch bump
        decompiles the chain in flight.
        """
        if hub is not None:
            if hub.tracing:
                # Tracing flipped on in place (without re-install): the
                # plan is stale by definition; fall back entirely.
                self._bail_datum(graph, datum, 0, hub)
            else:
                self._run_datum_hub(graph, datum, hub)
            return
        graph._fused_dispatches += 1
        epoch = self.epoch
        ops = self._ops
        for index, (fn, caps, screen, name) in enumerate(ops):
            if graph._plan_epoch != epoch:
                self._bail_datum(graph, datum, index, None)
                return
            if screen is not None and datum.kind not in screen:
                # Interpreted routing would find no entry for this
                # kind: the datum stops here, silently.
                return
            result = fn(datum)
            if result is None:
                return
            if result.__class__ is Datum or isinstance(result, Datum):
                if result.kind not in caps:
                    raise _capability_error(self.steps[index][0], result)
                if not result.producer:
                    result = result.from_producer(name)
                datum = result
            else:
                self._fan_out(graph, index, result, None)
                return
        graph._route(ops[-1][3], datum)

    def _run_datum_hub(
        self,
        graph: "ProcessingGraph",
        datum: Datum,
        hub: "ObservabilityHub",
    ) -> None:
        """Per-datum execution with live (non-tracing) metrics."""
        graph._fused_dispatches += 1
        epoch = self.epoch
        ops = self._ops
        instruments = self._hub_instruments(hub)
        self._fused_counter.inc()
        time_fn = hub._time
        index = 0
        try:
            for index, (fn, caps, screen, name) in enumerate(ops):
                if graph._plan_epoch != epoch:
                    self._bail_datum(graph, datum, index, hub)
                    return
                if screen is not None and datum.kind not in screen:
                    return
                items_in, items_out, _errors, latency = instruments[index]
                items_in.inc()
                start = time_fn()
                result = fn(datum)
                latency.observe(time_fn() - start)
                if result is None:
                    return
                if result.__class__ is Datum or isinstance(result, Datum):
                    if result.kind not in caps:
                        raise _capability_error(self.steps[index][0], result)
                    if not result.producer:
                        result = result.from_producer(name)
                    items_out.inc()
                    datum = result
                else:
                    self._fan_out(graph, index, result, items_out)
                    return
            graph._route(ops[-1][3], datum)
        except Exception:
            # Interpreted delivery is nested: an exception raised at (or
            # below) member k unwinds through every enclosing delivery
            # boundary, incrementing each member's error counter.
            for j in range(index + 1):
                instruments[j][2].inc()
            raise

    def _fan_out(
        self,
        graph: "ProcessingGraph",
        index: int,
        result: Any,
        items_out: Any,
    ) -> None:
        """A member returned several datums: stamp + check each result,
        then continue depth-first through interpreted dispatch, exactly
        as ``process`` + ``produce`` would -- item by item, so a
        capability violation on a later item still routes the earlier
        ones first (interpreted ``process`` loops ``produce``)."""
        comp, _fn, _accepts, caps, name = self.steps[index]
        route = graph._route
        for item in result:
            if item.kind not in caps:
                raise _capability_error(comp, item)
            if not item.producer:
                item = item.from_producer(name)
            if items_out is not None:
                items_out.inc()
            route(name, item)

    def _bail_datum(
        self,
        graph: "ProcessingGraph",
        datum: Datum,
        index: int,
        hub: Optional["ObservabilityHub"],
    ) -> None:
        """Decompile in flight: resume interpreted dispatch at ``index``.

        At ``index == 0`` the head's delivery mirrors what the
        interpreted routing loop would have done with its *hoisted*
        seam references -- bare or hub delivery, never supervised: a
        chain only exists because no supervisor was installed when the
        route memo was built, and interpreted dispatch does not consult
        a supervisor installed mid-loop either.
        """
        if index:
            # Re-route from the last completed member through the *live*
            # tables -- identical to what its ``produce`` would do now.
            graph._route(self.steps[index - 1][4], datum)
            return
        comp, _fn, _accepts, _caps, name = self.steps[0]
        if graph._components.get(name) is not comp:  # pragma: no cover
            # Defensive: removal always bumps the topology version, so
            # the routing loops skip the stale entry before the chain
            # is ever entered.
            return
        if hub is None:
            comp.receive(self.ports[0], datum)
        else:
            hub.deliver(comp, self.ports[0], datum)

    # -- execution (batched path) ----------------------------------------------

    def run_batch(
        self,
        graph: "ProcessingGraph",
        datums: List[Datum],
        hub: Optional["ObservabilityHub"],
    ) -> None:
        """Run a whole batch through the flat call list, stage by stage.

        The batch twin of :meth:`run_datum` and the fast path the
        scale-out runtime drains into: per member the loop is one flat
        pass over the surviving datums (stage-major, exactly the order
        interpreted ``receive_batch``/``produce_batch`` chains produce),
        and the chain's tail hands the final batch to
        :meth:`~repro.core.graph.ProcessingGraph.route_batch` -- one
        routing lookup per chain per kind group.
        """
        if hub is not None:
            if hub.tracing:
                self._bail_batch(graph, datums, 0, hub)
            else:
                self._run_batch_hub(graph, datums, hub)
            return
        graph._fused_dispatches += 1
        epoch = self.epoch
        ops = self._ops
        batch = datums
        for index, (fn, caps, screen, name) in enumerate(ops):
            if graph._plan_epoch != epoch:
                self._bail_batch(graph, batch, index, None)
                return
            if screen is not None:
                # Mid-chain kind screen: interpreted routing drops
                # non-accepted kinds silently (no route entry).
                batch = [d for d in batch if d.kind in screen]
            out: List[Datum] = []
            append = out.append
            for datum in batch:
                result = fn(datum)
                if result is None:
                    continue
                if result.__class__ is Datum or isinstance(result, Datum):
                    if result.kind not in caps:
                        raise _capability_error(self.steps[index][0], result)
                    if not result.producer:
                        result = result.from_producer(name)
                    append(result)
                else:
                    self._fan_into(index, result, append)
            if not out:
                return
            batch = out
        graph.route_batch(ops[-1][3], batch)

    def _run_batch_hub(
        self,
        graph: "ProcessingGraph",
        datums: List[Datum],
        hub: "ObservabilityHub",
    ) -> None:
        """Batched execution with live (non-tracing) metrics."""
        graph._fused_dispatches += 1
        epoch = self.epoch
        ops = self._ops
        instruments = self._hub_instruments(hub)
        self._fused_counter.inc()
        time_fn = hub._time
        batch = datums
        index = 0
        try:
            for index, (fn, caps, screen, name) in enumerate(ops):
                if graph._plan_epoch != epoch:
                    self._bail_batch(graph, batch, index, hub)
                    return
                if screen is not None:
                    batch = [d for d in batch if d.kind in screen]
                items_in, items_out, _errors, latency = instruments[index]
                items_in.inc(len(batch))
                start = time_fn()
                out: List[Datum] = []
                append = out.append
                for datum in batch:
                    result = fn(datum)
                    if result is None:
                        continue
                    if result.__class__ is Datum or isinstance(result, Datum):
                        if result.kind not in caps:
                            raise _capability_error(
                                self.steps[index][0], result
                            )
                        if not result.producer:
                            result = result.from_producer(name)
                        append(result)
                    else:
                        self._fan_into(index, result, append)
                latency.observe(time_fn() - start)
                items_out.inc(len(out))
                if not out:
                    return
                batch = out
            graph.route_batch(ops[-1][3], batch)
        except Exception:
            for j in range(index + 1):
                instruments[j][2].inc()
            raise

    def _fan_into(
        self, index: int, result: Any, append: Any
    ) -> None:
        """Stamp + check a member's multi-datum result into the batch."""
        comp, _fn, _accepts, caps, name = self.steps[index]
        for item in result:
            if item.kind not in caps:
                raise _capability_error(comp, item)
            if not item.producer:
                item = item.from_producer(name)
            append(item)

    def _bail_batch(
        self,
        graph: "ProcessingGraph",
        batch: List[Datum],
        index: int,
        hub: Optional["ObservabilityHub"],
    ) -> None:
        """Decompile a batch in flight: resume interpreted dispatch
        (see :meth:`_bail_datum` for the ``index == 0`` contract)."""
        if index:
            graph.route_batch(self.steps[index - 1][4], batch)
            return
        comp, _fn, _accepts, _caps, name = self.steps[0]
        if graph._components.get(name) is not comp:  # pragma: no cover
            return  # defensive: see _bail_datum
        if hub is None:
            comp.receive_batch(self.ports[0], batch)
        else:
            hub.deliver_batch(comp, self.ports[0], batch)


class CompiledPlan:
    """The compiled dispatch plan of one graph at one plan epoch.

    ``chains`` maps a chain's *head* component name to its
    :class:`FusedChain`; routing consults it when (re)building route
    memo entries, so steady-state dispatch pays nothing for the plan
    beyond one ``is None`` check per entry.  ``fallback_reason`` is the
    global gate that suppressed fusion (or ``None``), and ``excluded``
    records why individual components stayed interpreted -- the
    translucency surface ``psl.compiled_plans()`` renders.
    """

    __slots__ = ("epoch", "version", "chains", "fallback_reason", "excluded")

    def __init__(
        self,
        epoch: int,
        version: int,
        chains: Dict[str, FusedChain],
        fallback_reason: Optional[str],
        excluded: Dict[str, str],
    ) -> None:
        self.epoch = epoch
        self.version = version
        self.chains = chains
        self.fallback_reason = fallback_reason
        self.excluded = excluded

    def describe(self) -> Dict[str, Any]:
        return {
            "chains": [
                chain.describe()
                for _head, chain in sorted(self.chains.items())
            ],
            "fused_components": sum(
                len(chain.members) for chain in self.chains.values()
            ),
            "fallback_reason": self.fallback_reason,
            "excluded": dict(sorted(self.excluded.items())),
            "version": self.version,
        }

    def __repr__(self) -> str:
        if self.fallback_reason:
            return f"CompiledPlan(fallback={self.fallback_reason!r})"
        return f"CompiledPlan(chains={len(self.chains)})"


def compile_plan(graph: "ProcessingGraph") -> CompiledPlan:
    """Compile the graph's current topology into a dispatch plan.

    Pure function of the graph's structure plus the live reflection
    seams; called lazily by the graph whenever routing finds no fresh
    plan.  Gated configurations still return a (chain-less) plan so the
    reflective surface can show *why* dispatch stays interpreted.
    """
    epoch = graph._plan_epoch
    version = graph._version
    reason = _global_gate(graph)
    if reason is not None:
        return CompiledPlan(epoch, version, {}, reason, {})

    upstream, downstream = graph._adjacency()
    components = graph._components
    routing = graph._routing_table()

    excluded: Dict[str, str] = {}

    def fusable(name: str) -> bool:
        comp = components[name]
        ups = upstream.get(name, ())
        downs = downstream.get(name, ())
        if len(ups) != 1:
            if len(ups) > 1:
                excluded[name] = EXCLUDE_FAN_IN
            return False
        if len(downs) != 1:
            if len(downs) > 1:
                excluded[name] = EXCLUDE_FAN_OUT
            return False
        if comp.features:
            excluded[name] = EXCLUDE_FEATURES
            return False
        if comp.fused_fn() is None:
            excluded[name] = EXCLUDE_OPAQUE
            return False
        return True

    eligible = {name for name in components if fusable(name)}

    chains: Dict[str, FusedChain] = {}
    for name in eligible:
        producer = upstream[name][0]
        if producer in eligible:
            continue  # not a head: the chain starts further upstream
        members: List[str] = [name]
        current = name
        while True:
            nxt = downstream[current][0]
            if nxt not in eligible:
                break
            members.append(nxt)
            current = nxt
        if len(members) < MIN_CHAIN_LENGTH:
            excluded[name] = EXCLUDE_SHORT
            continue
        steps: List[FusedStep] = []
        ports: List[str] = []
        broken = False
        for member in members:
            comp = components[member]
            fn = comp.fused_fn()
            entry = _inbound_entry(routing, upstream[member][0], member)
            if fn is None or entry is None:  # pragma: no cover - defensive
                broken = True
                break
            port_name, accepts = entry
            steps.append(
                (
                    comp,
                    fn,
                    accepts,
                    comp.output_port._capabilities_set,
                    member,
                )
            )
            ports.append(port_name)
        if broken:  # pragma: no cover - defensive
            continue
        chains[name] = FusedChain(steps, ports, epoch)

    return CompiledPlan(epoch, version, chains, None, excluded)


def _capability_error(
    comp: ProcessingComponent, datum: Datum
) -> ComponentError:
    """The exact error ``produce`` would raise for this violation."""
    return ComponentError(
        f"component {comp.name} declared capabilities"
        f" {list(comp.output_port.capabilities)}, cannot produce"
        f" kind {datum.kind!r}"
    )


def _global_gate(graph: "ProcessingGraph") -> Optional[str]:
    """The first graph-wide condition that forces interpreted dispatch."""
    if not graph._compile_enabled:
        return REASON_DISABLED
    if graph._supervisor is not None:
        return REASON_SUPERVISOR
    hub = graph._instrumentation
    if hub is not None and hub.tracing:
        return REASON_TRACING
    if graph._observer_tuple:
        return REASON_OBSERVERS
    return None


def _inbound_entry(
    routing: Dict[str, List[Tuple[ProcessingComponent, str, frozenset]]],
    producer: str,
    consumer: str,
) -> Optional[Tuple[str, frozenset]]:
    """The (port, accepts) of the single edge ``producer -> consumer``."""
    for comp, port_name, accepts in routing.get(producer, ()):
        if comp.name == consumer:
            return port_name, accepts
    return None  # pragma: no cover - adjacency and routing agree
