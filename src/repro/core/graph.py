"""The reified processing graph and its manipulation API.

Paper §2: "the PerPos middleware is designed around the central idea of
representing individual steps of the actual positioning process explicitly
as a directed acyclic graph based on the flow of information from sensors
to application code."  §2.1: "Applications can manipulate the composition
of components in the tree through the API of the PSL, e.g., insert,
delete and connect."

This graph *is* the positioning process -- there is no second, shadow
structure to keep causally connected: components hand produced data to the
graph, and the graph routes it along the current edge set.  Manipulating
the graph therefore changes the live process, which is exactly the causal
connection the paper's reflection design calls for.

Dispatch fast path
------------------
Reflection makes the *structure* mutable; it must not make every datum
pay for that mutability.  The graph therefore keeps the authoritative
edge list (`_connections`, the slow/reflective representation) and a set
of derived, lazily rebuilt indexes used on the per-datum hot path:

* a **routing table** keyed by producer name whose entries carry the
  consumer component object, the port name, and the port's accept-set;
* a per-``(producer, kind)`` **route memo** of the entries that accept
  that kind, so steady-state routing is one dict lookup;
* **adjacency indexes** (``upstream``/``downstream`` name maps) backing
  traversal, channel derivation and source/sink/merge queries;
* cached **reachability** (``descendants``/``ancestors``) for the
  acyclicity check in :meth:`connect`.

On top of the per-datum path, :meth:`ProcessingGraph.route_batch` routes
whole batches: route resolution happens once per ``(producer, kind)``
group and consumers receive through the ``receive_batch`` seam, which is
what the scale-out runtime's ingestion queues drain into.

All of them are invalidated by a single monotonically increasing
**topology version** bumped by every structural mutation
(``add``/``remove``/``connect``/``disconnect`` and the operations built
on them).  Reflective manipulation stays exactly as expressive -- it
just pays the (lazy) rebuild once per mutation instead of a linear scan
per datum.  Input-port accept-sets are treated as immutable after
component construction, which is what makes the memo sound.

On top of the indexes sits the **compiled dispatch plan**
(:mod:`repro.core.compile`): maximal linear chains of
single-in/single-out components are fused into
:class:`~repro.core.compile.FusedChain` super-steps, and route-memo
entries carry the fused chain (or ``None``) alongside the consumer, so
steady-state routing jumps a whole chain with one lookup.  The plan is
keyed on a **plan epoch** bumped by every structural mutation *and* by
the reflection seams that leave the topology alone -- feature
attach/detach, hub/supervisor install, observer (un)subscription --
via :meth:`ProcessingGraph.invalidate_plan`.  Whenever reflection is
live, routing falls back to the interpreted walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.compile import CompiledPlan, FusedChain, compile_plan
from repro.core.component import ComponentObserver, ProcessingComponent
from repro.core.data import Datum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.observability.instrumentation import ObservabilityHub
    from repro.robustness.supervision import Supervisor
    from repro.runtime.engine import PositioningEngine


class GraphError(Exception):
    """Raised on illegal graph manipulation."""


@dataclass(frozen=True)
class Connection:
    """A directed edge: producer's output into one consumer input port."""

    producer: str
    consumer: str
    port: str


#: One precompiled routing-table entry: the live consumer component, the
#: input port name, and the port's accept-set frozen for O(1) matching.
RouteEntry = Tuple[ProcessingComponent, str, FrozenSet[str]]

#: One memoized route: the live consumer, the input port name, and the
#: fused chain headed by that consumer (``None`` -> interpreted hop).
MemoEntry = Tuple[ProcessingComponent, str, Optional[FusedChain]]


class GraphObserver:
    """Callbacks for observing the live graph; all optional.

    Channels (PCL) subscribe to reconstruct logical time; the overhead
    ablation benchmark subscribes to count traffic.
    """

    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None:  # pragma: no cover - default no-op
        pass

    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None:  # pragma: no cover - default no-op
        pass

    def data_dropped(
        self,
        component: ProcessingComponent,
        port_name: str,
        datum: Datum,
        feature_name: str,
    ) -> None:  # pragma: no cover - default no-op
        pass

    def topology_changed(self, graph: "ProcessingGraph") -> None:  # pragma: no cover
        pass


class ProcessingGraph(ComponentObserver):
    """A mutable DAG of processing components with synchronous delivery."""

    def __init__(self) -> None:
        self._components: Dict[str, ProcessingComponent] = {}
        self._connections: List[Connection] = []
        self._observers: List[GraphObserver] = []
        # Immutable fan-out snapshot, rebuilt on (un)subscription only;
        # the hot path iterates it without a per-event list copy.
        self._observer_tuple: Tuple[GraphObserver, ...] = ()
        # Optional runtime instrumentation; None keeps the hot path bare.
        self._instrumentation: Optional["ObservabilityHub"] = None
        # Optional failure supervision; None keeps the hot path bare.
        self._supervisor: Optional["Supervisor"] = None
        # Optional scale-out runtime engine (ingestion queues + fair
        # scheduler); inspection-only -- never consulted on the per-datum
        # hot path.
        self._engine: Optional["PositioningEngine"] = None
        # Optional ingestion gateway (wire validation + DLQ edge layer);
        # inspection-only, like the engine slot.
        self._gateway: Optional[Any] = None
        # Optional durability manager (snapshot/restore/journal store);
        # inspection-only, like the engine and gateway slots.
        self._durability: Optional[Any] = None
        # Optional scenario runner + closed-loop controller set
        # (repro.scenario); inspection-only, like the slots above.
        self._scenario: Optional[Any] = None
        self._control: Optional[Any] = None
        # -- derived indexes (dispatch fast path) -------------------------
        # Bumped by every structural mutation; compared by in-flight
        # routing loops to detect reentrant manipulation.
        self._version: int = 0
        self._routing: Optional[Dict[str, List[RouteEntry]]] = None
        self._route_memo: Dict[
            Tuple[str, str], Tuple[MemoEntry, ...]
        ] = {}
        self._upstream_index: Optional[Dict[str, List[str]]] = None
        self._downstream_index: Optional[Dict[str, List[str]]] = None
        self._descendants_cache: Dict[str, FrozenSet[str]] = {}
        self._ancestors_cache: Dict[str, FrozenSet[str]] = {}
        # -- compiled dispatch plan (repro.core.compile) -------------------
        # The plan epoch covers strictly more than the topology version:
        # reflection seams that leave the structure alone (feature
        # attach/detach, hub/supervisor install, observers) bump it too.
        self._compile_enabled: bool = True
        self._plan: Optional[CompiledPlan] = None
        self._plan_epoch: int = 0
        self._plan_invalidations: int = 0
        # Fused super-step executions (chain entries, not member hops);
        # kept as a plain int so bare graphs pay no instrument lookup.
        self._fused_dispatches: int = 0

    # -- instrumentation ------------------------------------------------------

    @property
    def instrumentation(self) -> Optional["ObservabilityHub"]:
        """The installed observability hub, or None while disabled."""
        return self._instrumentation

    def set_instrumentation(
        self, hub: Optional["ObservabilityHub"]
    ) -> Optional["ObservabilityHub"]:
        """Install (or, with None, remove) the observability hub.

        Returns the previously installed hub.  The hub immediately
        receives the current topology so its gauges start correct.
        """
        previous = self._instrumentation
        self._instrumentation = hub
        # Fusion eligibility (tracing gate) and the chains' cached hub
        # instruments both depend on which hub is installed.
        self.invalidate_plan()
        if hub is not None:
            hub.topology_changed(
                len(self._components), len(self._connections), self._version
            )
        return previous

    # -- supervision ----------------------------------------------------------

    @property
    def supervisor(self) -> Optional["Supervisor"]:
        """The installed supervisor, or None while supervision is off."""
        return self._supervisor

    def set_supervisor(
        self, supervisor: Optional["Supervisor"]
    ) -> Optional["Supervisor"]:
        """Install (or, with None, remove) the failure supervisor.

        Returns the previously installed supervisor.  While one is
        installed every delivery crosses
        :meth:`~repro.robustness.supervision.Supervisor.deliver`; while
        none is, routing is the bare fast path plus one ``is None``
        check per routed datum.
        """
        previous = self._supervisor
        if previous is not None:
            previous._graph = None
        self._supervisor = supervisor
        if supervisor is not None:
            supervisor._graph = self
        # Supervision gates fusion entirely: every delivery must cross
        # the supervised boundary (breakers, quarantine, isolation).
        self.invalidate_plan()
        return previous

    # -- scale-out runtime -----------------------------------------------------

    @property
    def engine(self) -> Optional["PositioningEngine"]:
        """The installed runtime engine, or None while scale-out is off."""
        return self._engine

    def set_engine(
        self, engine: Optional["PositioningEngine"]
    ) -> Optional["PositioningEngine"]:
        """Install (or, with None, remove) the scale-out runtime engine.

        Returns the previously installed engine.  Unlike the hub and the
        supervisor the engine sits *in front of* the graph -- queues and
        the scheduler feed :meth:`route_batch` -- so installing one costs
        the per-datum path nothing; the reference only exists so the PSL
        and the infrastructure report can reach ingestion state.
        """
        previous = self._engine
        self._engine = engine
        return previous

    @property
    def gateway(self) -> Optional[Any]:
        """The installed ingestion gateway, or None while the edge is off."""
        return self._gateway

    def set_gateway(self, gateway: Optional[Any]) -> Optional[Any]:
        """Install (or, with None, remove) the ingestion gateway.

        Like the engine, the gateway sits *in front of* the graph (it
        feeds the engine's lanes, which feed :meth:`route_batch`), so
        the slot is inspection-only: it exists so the PSL ``describe``
        and the infrastructure report can reach wire-format, admission
        and dead-letter state without threading a second handle around.
        """
        previous = self._gateway
        self._gateway = gateway
        return previous

    @property
    def durability(self) -> Optional[Any]:
        """The installed durability manager, or None while state is volatile."""
        return self._durability

    def set_durability(self, durability: Optional[Any]) -> Optional[Any]:
        """Install (or, with None, remove) the durability manager.

        Inspection-only like the engine and gateway slots: the manager
        journals through the engine and persists through its store; the
        graph reference only exists so the PSL and the infrastructure
        report can reach snapshot/journal state.
        """
        previous = self._durability
        self._durability = durability
        return previous

    @property
    def scenario(self) -> Optional[Any]:
        """The installed scenario runner, or None while no scenario runs."""
        return self._scenario

    def set_scenario(self, scenario: Optional[Any]) -> Optional[Any]:
        """Install (or, with None, remove) the scenario runner.

        Inspection-only like the engine/gateway/durability slots: the
        runner drives the engine from outside; the graph reference only
        exists so ``psl.scenario()`` and the infrastructure report can
        reach workload state (devices, churn, bursts, progress).
        """
        previous = self._scenario
        self._scenario = scenario
        return previous

    @property
    def control(self) -> Optional[Any]:
        """The installed control loop, or None while adaptation is manual."""
        return self._control

    def set_control(self, control: Optional[Any]) -> Optional[Any]:
        """Install (or, with None, remove) the closed-loop controller set.

        Inspection-only: controllers actuate through the existing
        adaptation seams (``set_backpressure``, EnTracked thresholds,
        supervision policies, shard rebalancing); the slot exists so
        ``psl.controllers()`` and the report can read the decision
        ledger.
        """
        previous = self._control
        self._control = control
        return previous

    # -- derived indexes -------------------------------------------------------

    @property
    def topology_version(self) -> int:
        """Monotonic counter, bumped by every structural mutation."""
        return self._version

    def _invalidate(self) -> None:
        """Structural mutation: bump the version, drop derived indexes."""
        # The plan goes first: even if a later step failed, no stale
        # fused chain may survive a structural mutation.
        self.invalidate_plan()
        self._version += 1
        self._routing = None
        self._upstream_index = None
        self._downstream_index = None
        if self._descendants_cache:
            self._descendants_cache = {}
        if self._ancestors_cache:
            self._ancestors_cache = {}

    def invalidate_plan(self) -> None:
        """Reflection went live: decompile, drop chain-bearing memos.

        Bumped-epoch comparison is what lets an in-flight
        :class:`~repro.core.compile.FusedChain` detect mid-delivery
        mutation and decompile on the spot; the route memo is dropped
        with the plan because its entries embed the chains.  Called by
        every structural mutation (via :meth:`_invalidate`) and by the
        non-structural reflection seams: feature attach/detach
        (:meth:`component_reconfigured`), hub/supervisor install,
        observer (un)subscription, and :meth:`set_compilation`.
        """
        self._plan_epoch += 1
        self._plan = None
        self._plan_invalidations += 1
        if self._route_memo:
            self._route_memo = {}
        hub = self._instrumentation
        if hub is not None:
            hub.plan_invalidated()

    def _compiled_plan(self) -> CompiledPlan:
        """The current plan, compiling lazily at the live epoch."""
        plan = self._plan
        if plan is None or plan.epoch != self._plan_epoch:
            plan = self._plan = compile_plan(self)
            hub = self._instrumentation
            if hub is not None:
                hub.plan_compiled(
                    len(plan.chains),
                    sum(len(c.members) for c in plan.chains.values()),
                )
        return plan

    def set_compilation(self, enabled: bool) -> bool:
        """Enable/disable plan compilation; returns the previous setting.

        Disabling forces every delivery onto the interpreted walk --
        the translucency escape hatch (and what the E14 benchmark uses
        as its interpreted baseline).
        """
        previous = self._compile_enabled
        if previous != enabled:
            self._compile_enabled = enabled
            self.invalidate_plan()
        return previous

    def plan_snapshot(self) -> Dict[str, Any]:
        """Reflective summary of the compiled plan (compiles if stale)."""
        snapshot = self._compiled_plan().describe()
        snapshot.update(
            enabled=self._compile_enabled,
            invalidations=self._plan_invalidations,
            fused_dispatches=self._fused_dispatches,
        )
        return snapshot

    def _routing_table(self) -> Dict[str, List[RouteEntry]]:
        table = self._routing
        if table is None:
            table = {}
            components = self._components
            for connection in self._connections:
                consumer = components[connection.consumer]
                port = consumer.input_port(connection.port)
                table.setdefault(connection.producer, []).append(
                    (consumer, connection.port, frozenset(port.accepts))
                )
            self._routing = table
        return table

    def _route_entries(
        self, producer: str, kind: str
    ) -> Tuple[MemoEntry, ...]:
        # Consult the compiled plan while building the memo entry: a
        # consumer heading a fused chain carries its chain, so the hot
        # loops pay one ``is None`` check to jump the whole chain.
        chains = self._compiled_plan().chains
        entries = tuple(
            (consumer, port_name, chains.get(consumer.name))
            for consumer, port_name, accepts in self._routing_table().get(
                producer, ()
            )
            if kind in accepts
        )
        self._route_memo[(producer, kind)] = entries
        return entries

    def _adjacency(
        self,
    ) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        up = self._upstream_index
        if up is None:
            up = {}
            down: Dict[str, List[str]] = {}
            for c in self._connections:
                up.setdefault(c.consumer, []).append(c.producer)
                down.setdefault(c.producer, []).append(c.consumer)
            self._upstream_index = up
            self._downstream_index = down
        return up, self._downstream_index  # type: ignore[return-value]

    def upstream_map(self) -> Mapping[str, List[str]]:
        """Consumer name -> producer names, in edge order.

        A live snapshot of the adjacency index: valid until the next
        structural mutation, must not be mutated by callers.  Components
        without inbound edges are absent.  The PCL derives its channel
        decomposition from this map instead of per-node scans.
        """
        return self._adjacency()[0]

    def downstream_map(self) -> Mapping[str, List[str]]:
        """Producer name -> consumer names, in edge order (see
        :meth:`upstream_map` for the snapshot contract)."""
        return self._adjacency()[1]

    # -- membership ----------------------------------------------------------

    def add(self, component: ProcessingComponent) -> ProcessingComponent:
        """Add a component to the graph (unconnected)."""
        if component.name in self._components:
            raise GraphError(
                f"graph already contains a component named"
                f" {component.name!r}"
            )
        self._components[component.name] = component
        component._observer = self
        # partial() dispatches without an extra interpreter frame per
        # produced datum (vs. a capturing lambda).
        component._deliver = partial(self._dispatch, component)
        component._deliver_batch = partial(self._dispatch_batch, component)
        self._invalidate()
        self._notify_topology()
        return component

    def remove(self, name: str, reconnect: bool = False) -> ProcessingComponent:
        """Remove a component, optionally splicing its neighbours together.

        With ``reconnect=True`` every upstream producer is connected to
        every downstream consumer port that is compatible, which is how
        the PSL "delete" keeps a pipeline flowing when a filter is taken
        out.
        """
        component = self.component(name)
        try:
            upstream, _down = self._adjacency()
            producers = list(upstream.get(name, ()))
            downstream_ports = [
                (consumer.name, port_name)
                for consumer, port_name, _accepts in self._routing_table().get(
                    name, ()
                )
            ]
            if producers or downstream_ports:
                self._connections = [
                    c
                    for c in self._connections
                    if c.producer != name and c.consumer != name
                ]
            del self._components[name]
            self._invalidate()
            component._observer = None
            component._deliver = None
            component._deliver_batch = None
            if reconnect:
                for up in producers:
                    for consumer, port in downstream_ports:
                        if up == consumer:
                            # Splicing out a node must never wire a
                            # component to itself; skip instead of relying
                            # on the cycle check to reject the self-loop.
                            continue
                        try:
                            self.connect(up, consumer, port)
                        except GraphError:
                            continue
        except BaseException:
            # An error escaping mid-removal (e.g. a non-GraphError out of
            # a reconnect attempt) may leave the mutation half-applied
            # without reaching another version bump; no stale fused chain
            # may survive that, so decompile unconditionally.
            self.invalidate_plan()
            raise
        self._notify_topology()
        return component

    def component(self, name: str) -> ProcessingComponent:
        """Look a component up by name."""
        try:
            return self._components[name]
        except KeyError:
            raise GraphError(f"no component named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def components(self) -> List[ProcessingComponent]:
        """All components currently in the graph."""
        return list(self._components.values())

    def connections(self) -> List[Connection]:
        """All current edges."""
        return list(self._connections)

    # -- wiring ---------------------------------------------------------------

    def connect(
        self,
        producer: str,
        consumer: str,
        port: Optional[str] = None,
    ) -> Connection:
        """Connect ``producer``'s output to an input port of ``consumer``.

        When ``port`` is omitted the first compatible input port is used.
        The connection is validated: kind overlap, required Component
        Features present on the producer, and acyclicity.
        """
        src = self.component(producer)
        dst = self.component(consumer)
        if port is None:
            port = self._pick_port(src, dst)
        in_port = dst.input_port(port)
        if not set(in_port.accepts) & set(src.output_port.capabilities):
            raise GraphError(
                f"no kind overlap: {producer} produces"
                f" {list(src.output_port.capabilities)},"
                f" {consumer}.{port} accepts {list(in_port.accepts)}"
            )
        missing = [
            f
            for f in in_port.required_features
            if not src.has_feature(f)
        ]
        if missing:
            raise GraphError(
                f"{consumer}.{port} requires features {missing} that"
                f" {producer} does not provide"
            )
        connection = Connection(producer, consumer, port)
        if connection in self._connections:
            raise GraphError(f"duplicate connection {connection}")
        if producer == consumer or producer in self.descendants(consumer):
            raise GraphError(
                f"connecting {producer} -> {consumer} would create a cycle"
            )
        self._connections.append(connection)
        self._invalidate()
        self._notify_topology()
        return connection

    def _pick_port(
        self, src: ProcessingComponent, dst: ProcessingComponent
    ) -> str:
        for in_port in dst.input_ports:
            if set(in_port.accepts) & set(src.output_port.capabilities):
                return in_port.name
        raise GraphError(
            f"no input port of {dst.name} accepts anything {src.name}"
            " produces"
        )

    def disconnect(
        self, producer: str, consumer: str, port: Optional[str] = None
    ) -> None:
        """Remove matching edges; raises if none existed."""
        before = len(self._connections)
        self._connections = [
            c
            for c in self._connections
            if not (
                c.producer == producer
                and c.consumer == consumer
                and (port is None or c.port == port)
            )
        ]
        if len(self._connections) == before:
            raise GraphError(
                f"no connection {producer} -> {consumer}"
                + (f".{port}" if port else "")
            )
        self._invalidate()
        self._notify_topology()

    def insert_between(
        self,
        producer: str,
        consumer: str,
        component: ProcessingComponent,
        port: Optional[str] = None,
    ) -> None:
        """Splice ``component`` into an existing edge.

        This is the paper's §3.1 operation: "We insert the filter
        component after the Parser component."
        """
        existing = [
            c
            for c in self._connections
            if c.producer == producer
            and c.consumer == consumer
            and (port is None or c.port == port)
        ]
        if not existing:
            raise GraphError(
                f"no existing connection {producer} -> {consumer} to"
                " splice into"
            )
        try:
            if component.name not in self._components:
                self.add(component)
            for edge in existing:
                self.disconnect(edge.producer, edge.consumer, edge.port)
            already_fed = component.name in self.downstream_map().get(
                producer, ()
            )
            if not already_fed:
                # Splicing the same component into several edges of one
                # producer (insert_after) shares a single feeding
                # connection.
                self.connect(producer, component.name)
            for edge in existing:
                self.connect(component.name, edge.consumer, edge.port)
        except BaseException:
            # Same guarantee as :meth:`remove`: a splice failing between
            # its constituent mutations must not leave a stale compiled
            # plan behind, whichever step short-circuited.
            self.invalidate_plan()
            raise

    # -- traversal --------------------------------------------------------------

    def upstream(self, name: str) -> List[str]:
        """Direct producers feeding ``name``."""
        self.component(name)
        return list(self._adjacency()[0].get(name, ()))

    def downstream(self, name: str) -> List[str]:
        """Direct consumers of ``name``'s output."""
        self.component(name)
        return list(self._adjacency()[1].get(name, ()))

    def ancestors(self, name: str) -> Set[str]:
        """All transitive producers feeding ``name``."""
        self.component(name)
        cached = self._ancestors_cache.get(name)
        if cached is None:
            cached = self._reachable(name, self._adjacency()[0])
            self._ancestors_cache[name] = cached
        return set(cached)

    def descendants(self, name: str) -> Set[str]:
        """All transitive consumers of ``name``'s output."""
        self.component(name)
        cached = self._descendants_cache.get(name)
        if cached is None:
            cached = self._reachable(name, self._adjacency()[1])
            self._descendants_cache[name] = cached
        return set(cached)

    @staticmethod
    def _reachable(
        name: str, index: Dict[str, List[str]]
    ) -> FrozenSet[str]:
        seen: Set[str] = set()
        frontier = list(index.get(name, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(index.get(node, ()))
        return frozenset(seen)

    def sources(self) -> List[ProcessingComponent]:
        """Leaf nodes: components with no inbound connections."""
        upstream, _down = self._adjacency()
        return [
            comp
            for name, comp in self._components.items()
            if not upstream.get(name)
        ]

    def sinks(self) -> List[ProcessingComponent]:
        """Root nodes: components with no outbound connections."""
        _up, downstream = self._adjacency()
        return [
            comp
            for name, comp in self._components.items()
            if not downstream.get(name)
        ]

    def merge_points(self) -> List[ProcessingComponent]:
        """Components combining data from two or more producers."""
        upstream, _down = self._adjacency()
        return [
            comp
            for name, comp in self._components.items()
            if len(upstream.get(name, ())) >= 2
        ]

    # -- delivery -----------------------------------------------------------------

    def _dispatch(self, component: ProcessingComponent, datum: Datum) -> None:
        """Take one produced datum from a component into the graph.

        Instrumentation runs first so observers and consumers all see
        the (possibly trace-annotated) datum the application will
        eventually receive.
        """
        hub = self._instrumentation
        if hub is not None:
            datum = hub.datum_dispatched(component.name, datum)
        for observer in self._observer_tuple:
            observer.data_produced(component, datum)
        self._route(component.name, datum)

    def _route(self, producer: str, datum: Datum) -> None:
        entries = self._route_memo.get((producer, datum.kind))
        if entries is None:
            entries = self._route_entries(producer, datum.kind)
        if not entries:
            return
        # The entry tuple is a snapshot: consumers connected *during*
        # this delivery wait for the next datum (same as the pre-index
        # edge-list snapshot).  If a reentrant mutation bumps the
        # version mid-loop, stale entries whose consumer has left the
        # graph are skipped -- removal semantics are checked against the
        # live component table, exactly as the linear scan did.
        version = self._version
        components = self._components
        hub = self._instrumentation
        supervisor = self._supervisor
        if supervisor is not None:
            # Supervised delivery: the supervisor wraps each consumer's
            # receive (and the hub, when installed, stays inside the
            # wrap so error counters keep recording) in the policy.
            # Chains are never compiled under supervision, so the memo
            # entries here always carry ``None``.
            for consumer, port_name, _chain in entries:
                if (
                    version != self._version
                    and components.get(consumer.name) is not consumer
                ):
                    continue
                supervisor.deliver(consumer, port_name, datum, hub)
        elif hub is None:
            for consumer, port_name, chain in entries:
                if (
                    version != self._version
                    and components.get(consumer.name) is not consumer
                ):
                    continue
                if chain is not None:
                    chain.run_datum(self, datum, None)
                else:
                    consumer.receive(port_name, datum)
        else:
            for consumer, port_name, chain in entries:
                if (
                    version != self._version
                    and components.get(consumer.name) is not consumer
                ):
                    continue
                if chain is not None:
                    chain.run_datum(self, datum, hub)
                else:
                    hub.deliver(consumer, port_name, datum)

    # -- batched delivery (scale-out runtime) ------------------------------------

    def _dispatch_batch(
        self, component: ProcessingComponent, datums: List[Datum]
    ) -> None:
        """Take a batch of produced datums from a component into the graph.

        The batch twin of :meth:`_dispatch`: instrumentation and observer
        events stay per datum (traces, PCL logical time), the routing
        itself is resolved once per batch.
        """
        hub = self._instrumentation
        if hub is not None:
            dispatched = hub.datum_dispatched
            name = component.name
            datums = [dispatched(name, datum) for datum in datums]
        observers = self._observer_tuple
        if observers:
            for datum in datums:
                for observer in observers:
                    observer.data_produced(component, datum)
        self.route_batch(component.name, datums)

    def route_batch(self, producer: str, datums: List[Datum]) -> None:
        """Route a batch of datums from ``producer`` in one pass.

        The routing table and the per-``(producer, kind)`` route memo
        are resolved once per kind-group instead of once per datum, and
        each consumer receives its whole group through the
        :meth:`~repro.core.component.ProcessingComponent.receive_batch`
        seam.  Supervision and observability semantics are preserved by
        construction: with a supervisor installed every datum still
        crosses :meth:`~repro.robustness.supervision.Supervisor
        .deliver_batch` (per-datum isolation), and with flow tracing on
        the hub delivers per datum so every trace keeps its own context.

        Ordering: datums of one batch reach each consumer in submission
        order (per-route FIFO), but the batch moves through the graph
        stage-by-stage -- across fan-out branches the interleaving
        differs from per-datum routing.  Sink outputs and trace hops are
        the same multiset either way (pinned by
        ``tests/test_property_runtime.py``).
        """
        if not datums:
            return
        # Group by kind, preserving order within each group.  Ingestion
        # batches are usually homogeneous, so the single-kind fast path
        # avoids the grouping dict entirely.
        first_kind = datums[0].kind
        groups: List[Tuple[str, List[Datum]]]
        if all(datum.kind == first_kind for datum in datums):
            groups = [(first_kind, datums)]
        else:
            by_kind: Dict[str, List[Datum]] = {}
            for datum in datums:
                by_kind.setdefault(datum.kind, []).append(datum)
            groups = list(by_kind.items())
        memo = self._route_memo
        version = self._version
        components = self._components
        hub = self._instrumentation
        supervisor = self._supervisor
        for kind, group in groups:
            entries = memo.get((producer, kind))
            if entries is None:
                entries = self._route_entries(producer, kind)
            if not entries:
                continue
            for consumer, port_name, chain in entries:
                if (
                    version != self._version
                    and components.get(consumer.name) is not consumer
                ):
                    continue
                if supervisor is not None:
                    supervisor.deliver_batch(
                        consumer, port_name, group, hub
                    )
                elif chain is not None:
                    chain.run_batch(self, group, hub)
                elif hub is None:
                    consumer.receive_batch(port_name, group)
                else:
                    hub.deliver_batch(consumer, port_name, group)

    # -- observation ----------------------------------------------------------------

    def add_observer(self, observer: GraphObserver) -> Callable[[], None]:
        """Subscribe to graph events; returns an unsubscribe callable.

        Observers gate plan compilation (they must see every per-hop
        event), so (un)subscription invalidates the compiled plan.
        """
        self._observers.append(observer)
        self._observer_tuple = tuple(self._observers)
        self.invalidate_plan()

        def _remove() -> None:
            if observer in self._observers:
                self._observers.remove(observer)
                self._observer_tuple = tuple(self._observers)
                self.invalidate_plan()

        return _remove

    def component_reconfigured(self, component: ProcessingComponent) -> None:
        """Component callback: a feature attached/detached (or the
        output port otherwise changed) -- decompile, the member's fused
        step and its chain's eligibility are both stale."""
        self.invalidate_plan()

    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None:
        """Component callback: fan the consume event out to observers."""
        for observer in self._observer_tuple:
            observer.data_consumed(component, port_name, datum)

    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None:
        """Fan the produce event out to observers (from :meth:`_dispatch`)."""
        for observer in self._observer_tuple:
            observer.data_produced(component, datum)

    def data_dropped(
        self,
        component: ProcessingComponent,
        port_name: str,
        datum: Datum,
        feature_name: str,
    ) -> None:
        """Component callback: a feature vetoed an inbound datum."""
        hub = self._instrumentation
        if hub is not None:
            hub.datum_dropped(component, port_name, datum, feature_name)
        for observer in self._observer_tuple:
            observer.data_dropped(component, port_name, datum, feature_name)

    def _notify_topology(self) -> None:
        hub = self._instrumentation
        if hub is not None:
            hub.topology_changed(
                len(self._components), len(self._connections), self._version
            )
        for observer in self._observer_tuple:
            observer.topology_changed(self)

    # -- display -----------------------------------------------------------------------

    def render_tree(self, root: Optional[str] = None, indent: str = "") -> str:
        """ASCII rendering of the processing tree, root at the top.

        Matches the paper's presentation of the graph "as a tree where
        data is traveling from leaf nodes toward the root".
        """
        roots = [root] if root else [c.name for c in self.sinks()]
        lines: List[str] = []

        def _walk(name: str, depth: int) -> None:
            comp = self._components[name]
            feature_note = (
                " [" + ", ".join(f.name for f in comp.features) + "]"
                if comp.features
                else ""
            )
            lines.append("  " * depth + f"{name}{feature_note}")
            for producer in sorted(self.upstream(name)):
                _walk(producer, depth + 1)

        for r in sorted(roots):
            _walk(r, 0)
        return "\n".join(lines)
