"""The reified processing graph and its manipulation API.

Paper §2: "the PerPos middleware is designed around the central idea of
representing individual steps of the actual positioning process explicitly
as a directed acyclic graph based on the flow of information from sensors
to application code."  §2.1: "Applications can manipulate the composition
of components in the tree through the API of the PSL, e.g., insert,
delete and connect."

This graph *is* the positioning process -- there is no second, shadow
structure to keep causally connected: components hand produced data to the
graph, and the graph routes it along the current edge set.  Manipulating
the graph therefore changes the live process, which is exactly the causal
connection the paper's reflection design calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.component import ComponentObserver, ProcessingComponent
from repro.core.data import Datum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.observability.instrumentation import ObservabilityHub


class GraphError(Exception):
    """Raised on illegal graph manipulation."""


@dataclass(frozen=True)
class Connection:
    """A directed edge: producer's output into one consumer input port."""

    producer: str
    consumer: str
    port: str


class GraphObserver:
    """Callbacks for observing the live graph; all optional.

    Channels (PCL) subscribe to reconstruct logical time; the overhead
    ablation benchmark subscribes to count traffic.
    """

    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None:  # pragma: no cover - default no-op
        pass

    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None:  # pragma: no cover - default no-op
        pass

    def data_dropped(
        self,
        component: ProcessingComponent,
        port_name: str,
        datum: Datum,
        feature_name: str,
    ) -> None:  # pragma: no cover - default no-op
        pass

    def topology_changed(self, graph: "ProcessingGraph") -> None:  # pragma: no cover
        pass


class ProcessingGraph(ComponentObserver):
    """A mutable DAG of processing components with synchronous delivery."""

    def __init__(self) -> None:
        self._components: Dict[str, ProcessingComponent] = {}
        self._connections: List[Connection] = []
        self._observers: List[GraphObserver] = []
        # Optional runtime instrumentation; None keeps the hot path bare.
        self._instrumentation: Optional["ObservabilityHub"] = None

    # -- instrumentation ------------------------------------------------------

    @property
    def instrumentation(self) -> Optional["ObservabilityHub"]:
        """The installed observability hub, or None while disabled."""
        return self._instrumentation

    def set_instrumentation(
        self, hub: Optional["ObservabilityHub"]
    ) -> Optional["ObservabilityHub"]:
        """Install (or, with None, remove) the observability hub.

        Returns the previously installed hub.  The hub immediately
        receives the current topology so its gauges start correct.
        """
        previous = self._instrumentation
        self._instrumentation = hub
        if hub is not None:
            hub.topology_changed(
                len(self._components), len(self._connections)
            )
        return previous

    # -- membership ----------------------------------------------------------

    def add(self, component: ProcessingComponent) -> ProcessingComponent:
        """Add a component to the graph (unconnected)."""
        if component.name in self._components:
            raise GraphError(
                f"graph already contains a component named"
                f" {component.name!r}"
            )
        self._components[component.name] = component
        component._observer = self
        component._deliver = lambda datum, _component=component: (
            self._dispatch(_component, datum)
        )
        self._notify_topology()
        return component

    def remove(self, name: str, reconnect: bool = False) -> ProcessingComponent:
        """Remove a component, optionally splicing its neighbours together.

        With ``reconnect=True`` every upstream producer is connected to
        every downstream consumer port that is compatible, which is how
        the PSL "delete" keeps a pipeline flowing when a filter is taken
        out.
        """
        component = self.component(name)
        upstream = [c for c in self._connections if c.consumer == name]
        downstream = [c for c in self._connections if c.producer == name]
        self._connections = [
            c
            for c in self._connections
            if c.producer != name and c.consumer != name
        ]
        del self._components[name]
        component._observer = None
        component._deliver = None
        if reconnect:
            for up in upstream:
                for down in downstream:
                    try:
                        self.connect(up.producer, down.consumer, down.port)
                    except GraphError:
                        continue
        self._notify_topology()
        return component

    def component(self, name: str) -> ProcessingComponent:
        """Look a component up by name."""
        try:
            return self._components[name]
        except KeyError:
            raise GraphError(f"no component named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def components(self) -> List[ProcessingComponent]:
        """All components currently in the graph."""
        return list(self._components.values())

    def connections(self) -> List[Connection]:
        """All current edges."""
        return list(self._connections)

    # -- wiring ---------------------------------------------------------------

    def connect(
        self,
        producer: str,
        consumer: str,
        port: Optional[str] = None,
    ) -> Connection:
        """Connect ``producer``'s output to an input port of ``consumer``.

        When ``port`` is omitted the first compatible input port is used.
        The connection is validated: kind overlap, required Component
        Features present on the producer, and acyclicity.
        """
        src = self.component(producer)
        dst = self.component(consumer)
        if port is None:
            port = self._pick_port(src, dst)
        in_port = dst.input_port(port)
        if not set(in_port.accepts) & set(src.output_port.capabilities):
            raise GraphError(
                f"no kind overlap: {producer} produces"
                f" {list(src.output_port.capabilities)},"
                f" {consumer}.{port} accepts {list(in_port.accepts)}"
            )
        missing = [
            f
            for f in in_port.required_features
            if not src.has_feature(f)
        ]
        if missing:
            raise GraphError(
                f"{consumer}.{port} requires features {missing} that"
                f" {producer} does not provide"
            )
        connection = Connection(producer, consumer, port)
        if connection in self._connections:
            raise GraphError(f"duplicate connection {connection}")
        if producer in self.descendants(consumer) or producer == consumer:
            raise GraphError(
                f"connecting {producer} -> {consumer} would create a cycle"
            )
        self._connections.append(connection)
        self._notify_topology()
        return connection

    def _pick_port(
        self, src: ProcessingComponent, dst: ProcessingComponent
    ) -> str:
        for in_port in dst.input_ports:
            if set(in_port.accepts) & set(src.output_port.capabilities):
                return in_port.name
        raise GraphError(
            f"no input port of {dst.name} accepts anything {src.name}"
            " produces"
        )

    def disconnect(
        self, producer: str, consumer: str, port: Optional[str] = None
    ) -> None:
        """Remove matching edges; raises if none existed."""
        before = len(self._connections)
        self._connections = [
            c
            for c in self._connections
            if not (
                c.producer == producer
                and c.consumer == consumer
                and (port is None or c.port == port)
            )
        ]
        if len(self._connections) == before:
            raise GraphError(
                f"no connection {producer} -> {consumer}"
                + (f".{port}" if port else "")
            )
        self._notify_topology()

    def insert_between(
        self,
        producer: str,
        consumer: str,
        component: ProcessingComponent,
        port: Optional[str] = None,
    ) -> None:
        """Splice ``component`` into an existing edge.

        This is the paper's §3.1 operation: "We insert the filter
        component after the Parser component."
        """
        existing = [
            c
            for c in self._connections
            if c.producer == producer
            and c.consumer == consumer
            and (port is None or c.port == port)
        ]
        if not existing:
            raise GraphError(
                f"no existing connection {producer} -> {consumer} to"
                " splice into"
            )
        if component.name not in self._components:
            self.add(component)
        for edge in existing:
            self.disconnect(edge.producer, edge.consumer, edge.port)
        already_fed = any(
            c.producer == producer and c.consumer == component.name
            for c in self._connections
        )
        if not already_fed:
            # Splicing the same component into several edges of one
            # producer (insert_after) shares a single feeding connection.
            self.connect(producer, component.name)
        for edge in existing:
            self.connect(component.name, edge.consumer, edge.port)

    # -- traversal --------------------------------------------------------------

    def upstream(self, name: str) -> List[str]:
        """Direct producers feeding ``name``."""
        self.component(name)
        return [c.producer for c in self._connections if c.consumer == name]

    def downstream(self, name: str) -> List[str]:
        """Direct consumers of ``name``'s output."""
        self.component(name)
        return [c.consumer for c in self._connections if c.producer == name]

    def ancestors(self, name: str) -> Set[str]:
        """All transitive producers feeding ``name``."""
        seen: Set[str] = set()
        frontier = list(self.upstream(name))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.upstream(node))
        return seen

    def descendants(self, name: str) -> Set[str]:
        """All transitive consumers of ``name``'s output."""
        seen: Set[str] = set()
        frontier = list(self.downstream(name))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.downstream(node))
        return seen

    def sources(self) -> List[ProcessingComponent]:
        """Leaf nodes: components with no inbound connections."""
        consumers = {c.consumer for c in self._connections}
        have_inputs = {
            name
            for name, comp in self._components.items()
            if comp.input_ports
        }
        return [
            comp
            for name, comp in self._components.items()
            if name not in consumers or name not in have_inputs
            if not self.upstream(name)
        ]

    def sinks(self) -> List[ProcessingComponent]:
        """Root nodes: components with no outbound connections."""
        producers = {c.producer for c in self._connections}
        return [
            comp
            for name, comp in self._components.items()
            if name not in producers
        ]

    def merge_points(self) -> List[ProcessingComponent]:
        """Components combining data from two or more producers."""
        return [
            comp
            for name, comp in self._components.items()
            if len(self.upstream(name)) >= 2
        ]

    # -- delivery -----------------------------------------------------------------

    def _dispatch(self, component: ProcessingComponent, datum: Datum) -> None:
        """Take one produced datum from a component into the graph.

        Instrumentation runs first so observers and consumers all see
        the (possibly trace-annotated) datum the application will
        eventually receive.
        """
        hub = self._instrumentation
        if hub is not None:
            datum = hub.datum_dispatched(component.name, datum)
        self.data_produced(component, datum)
        self._route(component.name, datum)

    def _route(self, producer: str, datum: Datum) -> None:
        hub = self._instrumentation
        for connection in list(self._connections):
            if connection.producer != producer:
                continue
            consumer = self._components.get(connection.consumer)
            if consumer is None:
                continue
            port = consumer.input_port(connection.port)
            if port.accepts_kind(datum.kind):
                if hub is None:
                    consumer.receive(connection.port, datum)
                else:
                    hub.deliver(consumer, connection.port, datum)

    # -- observation ----------------------------------------------------------------

    def add_observer(self, observer: GraphObserver) -> Callable[[], None]:
        """Subscribe to graph events; returns an unsubscribe callable."""
        self._observers.append(observer)

        def _remove() -> None:
            if observer in self._observers:
                self._observers.remove(observer)

        return _remove

    def data_consumed(
        self, component: ProcessingComponent, port_name: str, datum: Datum
    ) -> None:
        """Component callback: fan the consume event out to observers."""
        for observer in list(self._observers):
            observer.data_consumed(component, port_name, datum)

    def data_produced(
        self, component: ProcessingComponent, datum: Datum
    ) -> None:
        """Fan the produce event out to observers (from :meth:`_dispatch`)."""
        for observer in list(self._observers):
            observer.data_produced(component, datum)

    def data_dropped(
        self,
        component: ProcessingComponent,
        port_name: str,
        datum: Datum,
        feature_name: str,
    ) -> None:
        """Component callback: a feature vetoed an inbound datum."""
        hub = self._instrumentation
        if hub is not None:
            hub.datum_dropped(component, port_name, datum, feature_name)
        for observer in list(self._observers):
            observer.data_dropped(component, port_name, datum, feature_name)

    def _notify_topology(self) -> None:
        hub = self._instrumentation
        if hub is not None:
            hub.topology_changed(
                len(self._components), len(self._connections)
            )
        for observer in list(self._observers):
            observer.topology_changed(self)

    # -- display -----------------------------------------------------------------------

    def render_tree(self, root: Optional[str] = None, indent: str = "") -> str:
        """ASCII rendering of the processing tree, root at the top.

        Matches the paper's presentation of the graph "as a tree where
        data is traveling from leaf nodes toward the root".
        """
        roots = [root] if root else [c.name for c in self.sinks()]
        lines: List[str] = []

        def _walk(name: str, depth: int) -> None:
            comp = self._components[name]
            feature_note = (
                " [" + ", ".join(f.name for f in comp.features) + "]"
                if comp.features
                else ""
            )
            lines.append("  " * depth + f"{name}{feature_note}")
            for producer in sorted(self.upstream(name)):
                _walk(producer, depth + 1)

        for r in sorted(roots):
            _walk(r, 0)
        return "\n".join(lines)
