"""The Positioning Layer: the traditional high-level API (paper §2.3).

"The top layer of the PerPos middleware exposes high-level position data
... It presents a view of the position data processing that contains the
Channel end-points including their features."  The API follows the shape
of JSR-179: applications request a :class:`LocationProvider` matching a
:class:`Criteria`, then pull positions, subscribe for push delivery, and
set up proximity notifications.

What distinguishes PerPos from a closed middleware is that adaptations
made below remain reachable here: :meth:`LocationProvider.get_feature`
surfaces Channel Features and Component Features of the channels that end
at the provider, with the logical-time coupling to the concrete position
handled by the layers below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.component import ApplicationSink
from repro.core.data import Datum, Kind
from repro.core.pcl import ProcessChannelLayer
from repro.geo.wgs84 import Wgs84Position


class PositioningError(Exception):
    """Raised when no provider satisfies a criteria, or on bad use."""


@dataclass(frozen=True)
class Criteria:
    """Functional requirements for a location provider (JSR-179 style).

    ``kind`` is the output data kind the application wants; ``technology``
    restricts to providers fed by a given sensing technology;
    ``required_features`` names features (channel or component) that must
    be reachable through the provider; ``horizontal_accuracy_m`` requires
    the provider's most recent fix to carry an accuracy estimate at or
    below the bound (providers without a fix yet do not match -- JSR-179
    lets selection fail rather than guess).
    """

    kind: str = Kind.POSITION_WGS84
    technology: Optional[str] = None
    required_features: Tuple[str, ...] = ()
    horizontal_accuracy_m: Optional[float] = None


@dataclass
class _ProximityWatch:
    center: Wgs84Position
    radius_m: float
    callback: Callable[[str, Datum], None]
    inside: Optional[bool] = None


class LocationProvider:
    """Push/pull access to positions delivered to one application sink."""

    def __init__(
        self,
        name: str,
        sink: ApplicationSink,
        pcl: ProcessChannelLayer,
        technologies: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.sink = sink
        self.pcl = pcl
        self.technologies = tuple(technologies)
        self._watches: List[_ProximityWatch] = []
        self.sink.add_listener(self._check_proximity)

    # -- pull ------------------------------------------------------------------

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(self.sink.input_port("in").accepts)

    def last_known(self, kind: Optional[str] = None) -> Optional[Datum]:
        """Most recent datum delivered, optionally filtered by kind."""
        return self.sink.last(kind)

    def last_position(self) -> Optional[Wgs84Position]:
        """Most recent WGS84 position payload, or None before first fix."""
        datum = self.sink.last(Kind.POSITION_WGS84)
        return datum.payload if datum else None

    def last_trace(self, kind: Optional[str] = None):
        """Flow trace of the most recent delivery (of ``kind``).

        The positioning-layer end of the runtime translucency stack:
        which components, in order and at what times, produced the
        position the application last saw.  None before the first
        delivery or while tracing is disabled.
        """
        from repro.observability.tracing import trace_of

        return trace_of(self.sink.last(kind))

    # -- push ------------------------------------------------------------------

    def add_listener(
        self,
        callback: Callable[[Datum], None],
        kind: Optional[str] = None,
    ) -> Callable[[], None]:
        """Invoke ``callback`` for every delivered datum (of ``kind``)."""
        if kind is None:
            return self.sink.add_listener(callback)

        def _filtered(datum: Datum) -> None:
            if datum.kind == kind:
                callback(datum)

        return self.sink.add_listener(_filtered)

    def add_interval_listener(
        self,
        clock: "SimulationClock",
        interval_s: float,
        callback: Callable[[Optional[Datum]], None],
    ) -> Callable[[], None]:
        """JSR-179-style periodic delivery of the last known position.

        Every ``interval_s`` simulated seconds ``callback`` receives the
        freshest WGS84 datum, or ``None`` when no fix exists yet --
        JSR-179 delivers explicitly invalid locations in that case, and
        hiding the gap would bury a seam.
        """
        if interval_s <= 0:
            raise PositioningError("interval must be positive")

        def _tick(_now: float) -> None:
            callback(self.last_known(Kind.POSITION_WGS84))

        return clock.call_every(interval_s, _tick)

    # -- proximity notifications (JSR-179 style) ----------------------------------

    def add_proximity_listener(
        self,
        center: Wgs84Position,
        radius_m: float,
        callback: Callable[[str, Datum], None],
    ) -> Callable[[], None]:
        """Notify ``callback('entered'|'left', datum)`` on boundary crossing."""
        if radius_m <= 0:
            raise PositioningError("radius must be positive")
        watch = _ProximityWatch(center, radius_m, callback)
        self._watches.append(watch)

        def _remove() -> None:
            if watch in self._watches:
                self._watches.remove(watch)

        return _remove

    def _check_proximity(self, datum: Datum) -> None:
        if datum.kind != Kind.POSITION_WGS84:
            return
        position = datum.payload
        if not isinstance(position, Wgs84Position):
            return
        for watch in list(self._watches):
            inside = (
                watch.center.distance_to(position) <= watch.radius_m
            )
            if watch.inside is None:
                watch.inside = inside
                if inside:
                    watch.callback("entered", datum)
            elif inside and not watch.inside:
                watch.inside = True
                watch.callback("entered", datum)
            elif not inside and watch.inside:
                watch.inside = False
                watch.callback("left", datum)

    def add_geofence_listener(
        self,
        polygon: Sequence[Tuple[float, float]],
        grid,
        callback: Callable[[str, Datum], None],
        floor: int = 0,
    ) -> Callable[[], None]:
        """Polygon geofence in building-grid coordinates.

        ``polygon`` is a sequence of ``(x, y)`` grid vertices (e.g. a
        room outline); each delivered WGS84 position is projected through
        ``grid`` and tested for containment.  Boundary crossings fire
        ``callback('entered'|'left', datum)``.
        """
        from repro.model.geometry import point_in_polygon

        if len(polygon) < 3:
            raise PositioningError("a geofence needs at least 3 vertices")
        state: Dict[str, Optional[bool]] = {"inside": None}

        def _on_position(datum: Datum) -> None:
            position = datum.payload
            if not isinstance(position, Wgs84Position):
                return
            projected = grid.to_grid(position)
            inside = projected.floor == floor and point_in_polygon(
                projected.x_m, projected.y_m, polygon
            )
            previous = state["inside"]
            state["inside"] = inside
            if previous is None:
                if inside:
                    callback("entered", datum)
            elif inside and not previous:
                callback("entered", datum)
            elif not inside and previous:
                callback("left", datum)

        return self.add_listener(_on_position, kind=Kind.POSITION_WGS84)

    # -- translucency: reach features from the top layer ----------------------------

    def channels(self):
        """Every channel in the process feeding this provider's sink.

        Traversal is transitive: channels into the sink, then channels
        into each of those channels' source nodes, and so on -- the
        whole tree of strands behind the application.
        """
        collected = []
        seen_endpoints = set()
        frontier = [self.sink.name]
        while frontier:
            endpoint = frontier.pop()
            if endpoint in seen_endpoints:
                continue
            seen_endpoints.add(endpoint)
            for channel in self.pcl.channels_into(endpoint):
                collected.append(channel)
                frontier.append(channel.source.name)
        return collected

    def get_feature(self, key: Union[str, type]) -> Optional[Any]:
        """Find a feature by name or class on any channel ending here.

        Channel Features are searched first, then Component Features of
        the channels' members -- "all the features originally implemented
        in the PerPos middleware are visible as well as all available
        Channel Features" (paper §2.3).
        """
        for channel in self.channels():
            feature = channel.get_feature(key)
            if feature is not None:
                return feature
        for channel in self.channels():
            for member in channel.members:
                feature = member.get_feature(key)
                if feature is not None:
                    return feature
        return None

    def available_features(self) -> List[str]:
        """Names of every feature reachable through this provider."""
        names: List[str] = []
        for channel in self.channels():
            names.extend(f.name for f in channel.features)
            for member in channel.members:
                names.extend(f.name for f in member.features)
        return sorted(set(names))

    # -- health (supervision seam) --------------------------------------------

    def quarantined_components(self) -> List[str]:
        """Backing components currently quarantined by the supervisor.

        Walks the provider's whole channel tree (plus the sink itself)
        and intersects it with the supervisor's quarantine set.  Empty
        while supervision is disabled or everything is healthy.
        """
        supervisor = self.pcl.graph.supervisor
        if supervisor is None:
            return []
        quarantined = set(supervisor.quarantined())
        if not quarantined:
            return []
        names = {self.sink.name}
        for channel in self.channels():
            names.update(member.name for member in channel.members)
        return sorted(names & quarantined)

    def is_degraded(self) -> bool:
        """Whether any backing component is quarantined right now."""
        return bool(self.quarantined_components())

    def describe(self) -> Dict[str, Any]:
        """Reflective summary of this provider."""
        quarantined = self.quarantined_components()
        return {
            "name": self.name,
            "kinds": list(self.kinds),
            "technologies": list(self.technologies),
            "features": self.available_features(),
            "channels": [c.id for c in self.channels()],
            "health": "degraded" if quarantined else "ok",
            "quarantined": quarantined,
        }


class Target:
    """A tracked entity that may have several providers attached.

    Paper §2.3: the layer supports "definition of tracked targets, which
    may have several sensors attached to them".
    """

    def __init__(self, target_id: str) -> None:
        self.target_id = target_id
        self._providers: List[LocationProvider] = []
        self._lane: Optional[Any] = None

    def attach_provider(self, provider: LocationProvider) -> None:
        if provider not in self._providers:
            self._providers.append(provider)

    @property
    def providers(self) -> List[LocationProvider]:
        return list(self._providers)

    # -- scale-out runtime binding -------------------------------------------

    def attach_lane(self, lane: Any) -> None:
        """Bind this target to its engine ingestion lane.

        Called by :meth:`repro.runtime.engine.PositioningEngine.track`
        when the target object (rather than a bare id) is tracked; the
        binding makes ingestion state reachable from the positioning
        layer without the application holding the engine.
        """
        self._lane = lane

    @property
    def lane(self) -> Optional[Any]:
        """The bound ingestion lane, or None while not engine-tracked."""
        return self._lane

    def queue_stats(self) -> Dict[str, Any]:
        """Ingestion-lane statistics; empty while not engine-tracked."""
        return self._lane.stats() if self._lane is not None else {}

    def last_position_datum(self) -> Optional[Datum]:
        """Freshest WGS84 datum over all attached providers."""
        freshest: Optional[Datum] = None
        for provider in self._providers:
            datum = provider.last_known(Kind.POSITION_WGS84)
            if datum is None:
                continue
            if freshest is None or datum.timestamp > freshest.timestamp:
                freshest = datum
        return freshest

    def last_position(self) -> Optional[Wgs84Position]:
        datum = self.last_position_datum()
        return datum.payload if datum else None


class PositioningLayer:
    """Registry of providers and targets; provider lookup by criteria."""

    def __init__(self) -> None:
        self._providers: Dict[str, LocationProvider] = {}
        self._targets: Dict[str, Target] = {}
        self._failover_listeners: List[
            Callable[[List[str], str], None]
        ] = []

    # -- providers ----------------------------------------------------------------

    def register_provider(self, provider: LocationProvider) -> None:
        """Add a provider to the layer's registry."""
        if provider.name in self._providers:
            raise PositioningError(
                f"provider {provider.name!r} already registered"
            )
        self._providers[provider.name] = provider

    def providers(self) -> List[LocationProvider]:
        """All registered providers, name-ordered."""
        return [self._providers[k] for k in sorted(self._providers)]

    def provider(self, name: str) -> LocationProvider:
        """Look a provider up by name."""
        try:
            return self._providers[name]
        except KeyError:
            raise PositioningError(f"no provider {name!r}") from None

    def get_provider(self, criteria: Criteria) -> LocationProvider:
        """First registered *healthy* provider matching the criteria.

        Providers whose backing components are quarantined by the graph
        supervisor are demoted: a criteria-matching fallback takes over
        and failover listeners are notified.  When every match is
        degraded the first one is returned anyway -- a degraded provider
        beats none, and the demotion is still announced so applications
        can react.  Raises :class:`PositioningError` when nothing
        matches at all (the JSR-179 contract for unsatisfiable
        criteria).
        """
        demoted: List[LocationProvider] = []
        for provider in self.providers():
            if not self._matches(provider, criteria):
                continue
            if provider.is_degraded():
                demoted.append(provider)
                continue
            if demoted:
                self._notify_failover(
                    [p.name for p in demoted], provider.name
                )
            return provider
        if demoted:
            fallback = demoted[0]
            self._notify_failover(
                [p.name for p in demoted], fallback.name
            )
            return fallback
        raise PositioningError(f"no provider satisfies {criteria}")

    @staticmethod
    def _matches(provider: LocationProvider, criteria: Criteria) -> bool:
        """Whether one provider satisfies the functional criteria."""
        if criteria.kind not in provider.kinds:
            return False
        if (
            criteria.technology is not None
            and criteria.technology not in provider.technologies
        ):
            return False
        if any(
            provider.get_feature(f) is None
            for f in criteria.required_features
        ):
            return False
        if criteria.horizontal_accuracy_m is not None:
            position = provider.last_position()
            if (
                position is None
                or position.accuracy_m is None
                or position.accuracy_m > criteria.horizontal_accuracy_m
            ):
                return False
        return True

    # -- failover notifications --------------------------------------------------

    def add_failover_listener(
        self, listener: Callable[[List[str], str], None]
    ) -> Callable[[], None]:
        """Notify ``listener(demoted_names, selected_name)`` on failover.

        Fired by :meth:`get_provider` whenever a matching provider was
        passed over because its backing components are quarantined.
        Returns an unsubscribe callable.
        """
        self._failover_listeners.append(listener)

        def _remove() -> None:
            if listener in self._failover_listeners:
                self._failover_listeners.remove(listener)

        return _remove

    def _notify_failover(
        self, demoted: List[str], selected: str
    ) -> None:
        for listener in list(self._failover_listeners):
            listener(demoted, selected)

    # -- targets --------------------------------------------------------------------

    def define_target(self, target_id: str) -> Target:
        """Create a tracked target (paper §2.3)."""
        if target_id in self._targets:
            raise PositioningError(f"target {target_id!r} already defined")
        target = Target(target_id)
        self._targets[target_id] = target
        return target

    def target(self, target_id: str) -> Target:
        """Look a target up by id."""
        try:
            return self._targets[target_id]
        except KeyError:
            raise PositioningError(f"no target {target_id!r}") from None

    def targets(self) -> List[Target]:
        """All defined targets, id-ordered."""
        return [self._targets[k] for k in sorted(self._targets)]

    def watch_target_proximity(
        self,
        observer: LocationProvider,
        target: Target,
        radius_m: float,
        callback: Callable[[str, Datum], None],
    ) -> Callable[[], None]:
        """Notify on proximity between a provider and a tracked target.

        Paper §2.3: notifications "based on proximity to a point or
        target".  Unlike point proximity the reference moves: each
        position delivered to ``observer`` is compared against the
        target's *latest* position; crossings fire
        ``callback('entered'|'left', datum)``.  Targets with no position
        yet produce no events.
        """
        if radius_m <= 0:
            raise PositioningError("radius must be positive")
        state: Dict[str, Optional[bool]] = {"inside": None}

        def _on_position(datum: Datum) -> None:
            position = datum.payload
            if not isinstance(position, Wgs84Position):
                return
            anchor = target.last_position()
            if anchor is None:
                return
            inside = anchor.distance_to(position) <= radius_m
            previous = state["inside"]
            state["inside"] = inside
            if previous is None:
                if inside:
                    callback("entered", datum)
            elif inside and not previous:
                callback("entered", datum)
            elif not inside and previous:
                callback("left", datum)

        return observer.add_listener(_on_position, kind=Kind.POSITION_WGS84)

    def k_nearest_targets(
        self, reference: Wgs84Position, k: int
    ) -> List[Tuple[Target, float]]:
        """The k targets nearest ``reference`` with their distances.

        Targets with no position yet are excluded (another "seam" the
        high-level API chooses to expose rather than hide).
        """
        if k <= 0:
            raise PositioningError("k must be positive")
        scored = []
        for target in self.targets():
            position = target.last_position()
            if position is None:
                continue
            scored.append((target, reference.distance_to(position)))
        scored.sort(key=lambda pair: pair[1])
        return scored[:k]
