"""Infrastructure reporting: the visualization use case of paper §1.

"Access to low-level information and the ability of inspection ... is
needed to visualize the positioning infrastructure when authoring
location-aware applications" (citing Oppermann et al.).  This module
aggregates what the three layers expose into one structured report: the
component tree, the channel decomposition, attached features, and the
*seam indicators* components choose to surface -- dropped NMEA lines,
filter rejection rates, interpreter yield, channel feature failures.

Components advertise seam indicators by convention: any public
zero-argument method listed in ``SEAM_PROBES`` plus any plain numeric
attribute listed in ``SEAM_COUNTERS`` is collected if present.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.middleware import PerPos

#: Zero-argument methods whose return value is a seam indicator.
SEAM_PROBES = (
    "rejection_rate",
    "yield_rate",
    "forward_rate",
    "effective_sample_size",
    "pending_bytes",
    "pending_positions",
    "map_size",
)

#: Plain numeric attributes that count seam-relevant events.
SEAM_COUNTERS = (
    "dropped_lines",
    "passed",
    "rejected",
    "suppressed",
    "forwarded",
    "sentences_seen",
    "positions_produced",
    "segments_emitted",
    "windows_dropped",
    "wall_vetoes",
    "resamples",
    "updates",
    "classified",
    "smoothed",
    "alerts_raised",
)


def component_seams(component: Any) -> Dict[str, Any]:
    """Collect the seam indicators one component exposes."""
    seams: Dict[str, Any] = {}
    for probe in SEAM_PROBES:
        fn = getattr(component, probe, None)
        if callable(fn):
            try:
                seams[probe] = fn()
            except Exception as exc:  # noqa: BLE001 - a probe failing is itself a seam
                # The failed probe is itself inspectable: report what
                # went wrong instead of collapsing it to a marker.
                seams[probe] = {
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
    for counter in SEAM_COUNTERS:
        value = getattr(component, counter, None)
        if isinstance(value, (int, float)):
            seams[counter] = value
    return seams


def infrastructure_snapshot(middleware: PerPos) -> Dict[str, Any]:
    """Structured snapshot of the whole positioning infrastructure."""
    supervisor = middleware.graph.supervisor
    components = []
    for component in middleware.graph.components():
        info = component.describe()
        info["seams"] = component_seams(component)
        if supervisor is not None:
            info["health"] = supervisor.health(component.name)
        components.append(info)
    channels = []
    for channel in middleware.pcl.channels():
        info = channel.describe()
        info["feature_errors"] = [
            f"{name}: {exc!r}" for name, exc in channel.feature_errors
        ]
        latest = channel.latest_output()
        info["outputs_delivered"] = (
            latest.logical_time if latest is not None else 0
        )
        channels.append(info)
    hub = middleware.graph.instrumentation
    return {
        "components": components,
        "connections": [
            f"{c.producer} -> {c.consumer}.{c.port}"
            for c in middleware.graph.connections()
        ],
        "channels": channels,
        "providers": [
            p.describe() for p in middleware.positioning.providers()
        ],
        # Runtime behaviour (None while observability is disabled): the
        # live twin of the structural sections above.
        "observability": hub.snapshot() if hub is not None else None,
        # Failure seams (None while supervision is disabled): policy,
        # per-component breaker health, and the reified failure ring.
        "supervision": (
            supervisor.snapshot() if supervisor is not None else None
        ),
        # Scale-out runtime (None while no engine is installed):
        # scheduler, drain rounds, and per-target ingestion lanes.
        "runtime": (
            middleware.graph.engine.snapshot()
            if middleware.graph.engine is not None
            else None
        ),
        # Sharded runtime (None while sharding is disabled): placement,
        # per-shard health/engine state, and contained failures.
        "sharding": (
            middleware.sharding.snapshot()
            if middleware.sharding is not None
            else None
        ),
        # Ingestion edge (None while no gateway is installed): wire
        # formats, per-adapter counters, admission queue, DLQ state.
        "gateway": (
            middleware.graph.gateway.snapshot()
            if middleware.graph.gateway is not None
            else None
        ),
        # Durable state (None while no durability manager is
        # installed): store backend, snapshot/journal counters, and
        # the warm-handoff migration history.
        "durability": (
            middleware.durability.describe()
            if middleware.durability is not None
            else None
        ),
        # City scenario workload (None while no runner is installed):
        # population, churn/burst/zone counters, run progress.
        "scenario": (
            middleware.graph.scenario.snapshot()
            if middleware.graph.scenario is not None
            else None
        ),
        # Closed-loop adaptation (None while no control loop is
        # installed): controllers, decision counts, recent ledger tail.
        "control": (
            middleware.graph.control.snapshot()
            if middleware.graph.control is not None
            else None
        ),
        # Compiled dispatch plan of this middleware's graph (always
        # present: a gated plan reports its fallback reason instead of
        # chains).  Shard-private plans ride along inside "sharding".
        "compiled": middleware.graph.plan_snapshot(),
    }


def render_report(middleware: PerPos) -> str:
    """Human-readable infrastructure report."""
    snapshot = infrastructure_snapshot(middleware)
    lines: List[str] = ["POSITIONING INFRASTRUCTURE", ""]
    lines.append("process structure:")
    lines.append(_indent(middleware.psl.structure()))
    lines.append("")
    lines.append("channels:")
    for channel in snapshot["channels"]:
        path = " -> ".join(channel["members"])
        features = ", ".join(channel["features"]) or "-"
        lines.append(
            f"  {path} ==> {channel['endpoint']}"
            f"  [features: {features};"
            f" outputs: {channel['outputs_delivered']}]"
        )
        for error in channel["feature_errors"]:
            lines.append(f"    ! feature error: {error}")
    lines.append("")
    lines.append("seam indicators:")
    for component in snapshot["components"]:
        if not component["seams"]:
            continue
        rendered = ", ".join(
            f"{key}={_fmt(value)}"
            for key, value in sorted(component["seams"].items())
        )
        lines.append(f"  {component['name']}: {rendered}")
    lines.append("")
    lines.append("providers:")
    for provider in snapshot["providers"]:
        lines.append(
            f"  {provider['name']}: kinds={provider['kinds']}"
            f" features={provider['features']}"
        )
    supervision = snapshot["supervision"]
    lines.append("")
    lines.append("supervision:")
    if supervision is None:
        lines.append("  (supervision disabled)")
    else:
        lines.append(f"  policy: {supervision['policy']['mode']}")
        if not supervision["components"]:
            lines.append("  all components healthy")
        for name, state in sorted(supervision["components"].items()):
            lines.append(
                f"  {name}: {state['health']}"
                f" (failures={state['failures']},"
                f" skipped={state['skipped']}, trips={state['trips']})"
            )
        for record in supervision["records"][-5:]:
            lines.append(
                f"    ! failure #{record['seq']} {record['component']}"
                f".{record['port']}: {record['error_type']}:"
                f" {record['message']}"
            )
    runtime = snapshot["runtime"]
    lines.append("")
    lines.append("ingestion:")
    if runtime is None:
        lines.append("  (no positioning engine)")
    else:
        scheduler = runtime["scheduler"]
        detail = ", ".join(
            f"{key}={_fmt(value)}"
            for key, value in sorted(scheduler.items())
            if key != "type"
        )
        lines.append(
            f"  scheduler: {scheduler['type']}"
            + (f" ({detail})" if detail else "")
            + f"; rounds={runtime['rounds']},"
            f" drained={runtime['drained_total']},"
            f" pending={runtime['pending']}"
        )
        for target_id, lane in sorted(runtime["lanes"].items()):
            dropped = lane["dropped_oldest"] + lane["dropped_newest"]
            lines.append(
                f"  {target_id} @{lane['source']}: {lane['policy']}"
                f" depth={lane['depth']}/{lane['capacity']}"
                f" (hw={lane['high_water']}),"
                f" accepted={lane['accepted']}, dropped={dropped},"
                f" rejected={lane['rejected']},"
                f" coalesced={lane['coalesced']}"
            )
    gateway = snapshot["gateway"]
    lines.append("")
    lines.append("gateway:")
    if gateway is None:
        lines.append("  (no ingestion gateway)")
    else:
        lines.append(
            f"  source={gateway['source']},"
            f" formats={gateway['formats']},"
            f" policy={gateway['device_policy']['policy']},"
            f" devices={gateway['devices']}"
        )
        lines.append(
            f"  submitted={gateway['submitted']},"
            f" accepted={gateway['accepted']},"
            f" rejected={gateway['rejected']},"
            f" shed={gateway['shed']},"
            f" rate_limited={gateway['rate_limited']},"
            f" pending={gateway['pending']}"
        )
        limiter = gateway["rate_limit"]
        if limiter is not None:
            lines.append(
                f"  rate limit: {_fmt(limiter['rate'])}/s"
                f" (burst {_fmt(limiter['burst'])}),"
                f" devices={limiter['keys']},"
                f" allowed={limiter['allowed']},"
                f" limited={limiter['limited']}"
            )
        dlq = gateway["dlq"]
        lines.append(
            f"  dlq: depth={dlq['depth']}/{dlq['capacity']}"
            f" (evicted={dlq['evicted']}),"
            f" replayed={dlq['total_replayed']},"
            f" exhausted={dlq['total_exhausted']}"
        )
        for stage, count in dlq["by_stage"].items():
            lines.append(f"    {stage}: {count}")
    sharding = snapshot["sharding"]
    lines.append("")
    lines.append("sharding:")
    if sharding is None:
        lines.append("  (sharding disabled)")
    else:
        placement = sharding["placement"]
        lines.append(
            f"  {sharding['shards']} shards ({sharding['executor']}),"
            f" placement={placement['type']};"
            f" targets={sharding['targets']},"
            f" rounds={sharding['rounds']},"
            f" drained={sharding['drained_total']},"
            f" pending={sharding['pending']}"
        )
        for entry in sharding["per_shard"]:
            engine_snap = entry["engine"]
            if engine_snap is None:
                detail = "(unreadable)"
            else:
                detail = (
                    f"lanes={len(engine_snap['lanes'])},"
                    f" drained={engine_snap['drained_total']},"
                    f" pending={engine_snap['pending']}"
                )
                if engine_snap["last_drain_truncated"]:
                    detail += " TRUNCATED"
            line = f"  shard {entry['shard']}: {entry['status']}, {detail}"
            lines.append(line)
            if entry["error"]:
                lines.append(f"    ! {entry['error']}")
    durability = snapshot["durability"]
    lines.append("")
    lines.append("durability:")
    if durability is None:
        lines.append("  (durability disabled)")
    else:
        store = durability["store"]
        every = durability["snapshot_every"]
        lines.append(
            f"  store={store['backend']}"
            f" (snapshots={store['snapshots']},"
            f" entries={store['entries']});"
            f" auto_snapshot="
            + (f"every {every} entries" if every else "off")
        )
        lines.append(
            f"  snapshots_taken={durability['snapshots_taken']}"
            f" (last={durability['last_snapshot_bytes']}B),"
            f" restores={durability['restores']},"
            f" migrations={durability['migrations']}"
        )
    scenario = snapshot["scenario"]
    lines.append("")
    lines.append("scenario:")
    if scenario is None:
        lines.append("  (no scenario installed)")
    else:
        generator = scenario["generator"]
        progress = scenario["progress"]
        loop = "closed" if scenario["closed_loop"] else "open"
        lines.append(
            f"  seed={generator['seed']}, devices={generator['devices']}"
            f" (joined={generator['joined_total']},"
            f" left={generator['left_total']}),"
            f" loop={loop}"
        )
        lines.append(
            f"  ticks={progress['ticks']},"
            f" submitted={progress['submitted']},"
            f" drained={progress['drained']},"
            f" pending={progress['pending']},"
            f" high_water={progress['high_water']}"
        )
        lines.append(
            f"  suppressed_fixes={generator['suppressed_total']},"
            f" zone_lost={generator['zone_lost_total']},"
            f" burst_extra={generator['burst_extra_total']},"
            f" gps_threshold_m={_fmt(generator['gps_threshold_m'])}"
        )
    control = snapshot["control"]
    lines.append("")
    lines.append("control:")
    if control is None:
        lines.append("  (no control loop installed)")
    else:
        names = ", ".join(c["name"] for c in control["controllers"]) or "-"
        lines.append(
            f"  controllers=[{names}],"
            f" decisions={control['decisions_total']},"
            f" ledger={control['ledger_depth']}/{control['ledger_limit']}"
        )
        for record in control["recent"]:
            target = f" {record['target']}" if record.get("target") else ""
            lines.append(
                f"    t={record['tick']} {record['controller']}:"
                f" {record['action']}{target} ({record['reason']})"
            )
    lines.append("")
    lines.append("compiled:")
    lines.append("  graph: " + _plan_line(snapshot["compiled"]))
    if sharding is not None:
        for entry in sharding["per_shard"]:
            engine_snap = entry["engine"]
            plan = (
                engine_snap.get("plan") if engine_snap is not None else None
            )
            if plan is not None:
                lines.append(
                    f"  shard {entry['shard']}: " + _plan_line(plan)
                )
    observability = snapshot["observability"]
    lines.append("")
    lines.append("live metrics:")
    if observability is None:
        lines.append("  (observability disabled)")
    else:
        for name, stats in sorted(observability["components"].items()):
            parts = [
                f"in={stats.get('items_in', 0)}",
                f"out={stats.get('items_out', 0)}",
            ]
            if stats.get("items_dropped"):
                parts.append(f"dropped={stats['items_dropped']}")
            if stats.get("errors"):
                parts.append(f"errors={stats['errors']}")
            latency = stats.get("latency")
            if latency and latency["count"]:
                parts.append(f"mean_latency_s={_fmt(latency['mean'])}")
            lines.append(f"  {name}: " + ", ".join(parts))
    return "\n".join(lines)


def _plan_line(plan: Dict[str, Any]) -> str:
    """One-line rendering of a graph's compiled dispatch plan."""
    if not plan["enabled"]:
        state = "compilation disabled"
    elif plan["fallback_reason"]:
        state = f"interpreted ({plan['fallback_reason']})"
    elif not plan["chains"]:
        state = "0 chains (nothing fusable)"
    else:
        rendered = ", ".join(
            " -> ".join(chain["members"]) for chain in plan["chains"][:3]
        )
        more = len(plan["chains"]) - 3
        if more > 0:
            rendered += f", +{more} more"
        state = (
            f"{len(plan['chains'])} chains"
            f" / {plan['fused_components']} components fused"
            f" ({rendered})"
        )
    return (
        state
        + f"; invalidations={plan['invalidations']},"
        + f" fused_dispatches={plan['fused_dispatches']}"
    )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
