"""Logical time and the per-output data tree (paper §2.2, Fig. 4).

"To support extension a Channel groups the output of every internal
processing step into logically coherent groups.  For each data element
produced by a Channel it collects all intermediate data elements that
logically contributed to that element and places them in a hierarchical
data structure. ... the data is presented as tuples with three elements:
the data, the logical time of the current layer, the time range of the
data used to generate the element."

:class:`DataTreeElement` is that tuple (plus provenance); a
:class:`DataTree` is the per-output grouping handed to Channel Features'
``apply``.  The paper's Fig. 4 example -- one WGS84 position over two NMEA
sentences over five raw strings, where the first sentence held no valid
fix -- renders exactly via :meth:`DataTree.render`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.data import Datum


class DataTreeElement:
    """One ``(data, logical time, time range)`` tuple of Fig. 4.

    ``time_range`` is the inclusive span of logical times at the layer
    below whose elements contributed to this one; ``None`` for layer 0
    (the paper renders it "N/A").

    A hand-rolled ``__slots__`` class rather than a dataclass: channels
    mint one element per produce event on the graph's hot path, and the
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per field)
    measurably drags on dispatch throughput.  Treat instances as
    immutable.
    """

    __slots__ = ("datum", "logical_time", "time_range", "layer", "producer")

    def __init__(
        self,
        datum: Datum,
        logical_time: int,
        time_range: Optional[Tuple[int, int]],
        layer: int,
        producer: str,
    ) -> None:
        self.datum = datum
        self.logical_time = logical_time
        self.time_range = time_range
        self.layer = layer
        self.producer = producer

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTreeElement):
            return NotImplemented
        return (
            self.datum == other.datum
            and self.logical_time == other.logical_time
            and self.time_range == other.time_range
            and self.layer == other.layer
            and self.producer == other.producer
        )

    def __repr__(self) -> str:
        return (
            f"DataTreeElement(datum={self.datum!r},"
            f" logical_time={self.logical_time!r},"
            f" time_range={self.time_range!r}, layer={self.layer!r},"
            f" producer={self.producer!r})"
        )

    def describe(self) -> str:
        span = (
            "N/A"
            if self.time_range is None
            else f"{self.time_range[0]}-{self.time_range[1]}"
        )
        return f"({self.datum.kind}, {self.logical_time}, {span})"


class DataTree:
    """The contributing elements behind one channel output.

    ``layers`` is ordered source-first: ``layers[0]`` holds the raw
    sensor elements, ``layers[-1]`` holds exactly the output element.
    Channel Features must not assume a fixed number of layers or a fixed
    number of elements per layer (paper §2.2: "the feature must handle
    the complexity of not knowing for example the number of layers in the
    data tree or the number of data chunks of each kind").
    """

    def __init__(
        self,
        layers: Sequence[Sequence[DataTreeElement]],
        layer_names: Sequence[str],
    ) -> None:
        if not layers or not layers[-1]:
            raise ValueError("a data tree needs a root output element")
        if len(layers) != len(layer_names):
            raise ValueError("one name per layer required")
        self._layers: List[List[DataTreeElement]] = [
            list(layer) for layer in layers
        ]
        self.layer_names = list(layer_names)

    @property
    def root(self) -> DataTreeElement:
        """The channel output this tree explains."""
        return self._layers[-1][0]

    @property
    def depth(self) -> int:
        return len(self._layers)

    def layer(self, index: int) -> List[DataTreeElement]:
        return list(self._layers[index])

    def elements(self) -> List[DataTreeElement]:
        """Every element, source layer first."""
        return [e for layer in self._layers for e in layer]

    def get_data(self, kind: str) -> List[Tuple[str, Any]]:
        """``(producer, payload)`` pairs for every element of ``kind``.

        This is the paper's ``dataTree.getData(NMEASentence.class)``
        lookup from the Likelihood feature (Fig. 5, snippet 2).
        """
        return [
            (e.producer, e.datum.payload)
            for e in self.elements()
            if e.datum.kind == kind
        ]

    def contributors(
        self, element: DataTreeElement
    ) -> List[DataTreeElement]:
        """Elements at the layer below within ``element``'s time range."""
        if element.layer == 0 or element.time_range is None:
            return []
        low, high = element.time_range
        return [
            e
            for e in self._layers[element.layer - 1]
            if low <= e.logical_time <= high
        ]

    def render(self) -> str:
        """ASCII rendering in the style of Fig. 4 (source layer last)."""
        lines = []
        for index in range(self.depth - 1, -1, -1):
            cells = "   ".join(
                e.describe() for e in self._layers[index]
            )
            lines.append(f"L{index} {self.layer_names[index]:<14} {cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DataTree(root={self.root.datum.kind!r},"
            f" depth={self.depth},"
            f" elements={len(self.elements())})"
        )
