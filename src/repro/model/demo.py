"""A ready-made office building shared by examples, tests and benchmarks.

The paper's figures are set in a university building: corridors, offices,
a WiFi deployment.  ``demo_building()`` programmatically constructs an
equivalent (DESIGN.md §4 substitution for the authors' CAD/map data): one
floor, 40 m x 15 m, a central east-west corridor with four offices on each
side, doors onto the corridor and an entrance at the west end.
"""

from __future__ import annotations

from typing import List

from repro.geo.grid import GridPosition, LocalGrid
from repro.geo.wgs84 import Wgs84Position
from repro.model.building import Building, Floor, Room, Wall
from repro.sensors.wifi import AccessPoint, RadioEnvironment

#: Geodetic anchor of the demo building (Aarhus university campus area).
DEMO_ORIGIN = Wgs84Position(56.1718, 10.1903)

#: Building extents in metres.
WIDTH = 40.0
DEPTH = 15.0
CORRIDOR_SOUTH = 6.0
CORRIDOR_NORTH = 9.0
ROOM_WIDTH = 10.0
DOOR_HALF = 0.75  # doors are 1.5 m wide


def _corridor_wall_segments(y: float) -> List[Wall]:
    """A corridor wall at height ``y`` with a door gap per room."""
    door_centres = [5.0, 15.0, 25.0, 35.0]
    walls = []
    cursor = 0.0
    for centre in door_centres:
        left = centre - DOOR_HALF
        if left > cursor:
            walls.append(Wall(cursor, y, left, y))
        cursor = centre + DOOR_HALF
    if cursor < WIDTH:
        walls.append(Wall(cursor, y, WIDTH, y))
    return walls


def demo_building(building_id: str = "hopper") -> Building:
    """Construct the demo office building.

    Room ids follow the paper's "room number" usage: ``N1``..``N4`` along
    the north side, ``S1``..``S4`` along the south side, and ``CORR`` for
    the corridor.
    """
    rooms = []
    for i in range(4):
        x0 = i * ROOM_WIDTH
        x1 = x0 + ROOM_WIDTH
        rooms.append(
            Room(
                room_id=f"N{i + 1}",
                name=f"Office N{i + 1}",
                floor=0,
                polygon=(
                    (x0, CORRIDOR_NORTH),
                    (x1, CORRIDOR_NORTH),
                    (x1, DEPTH),
                    (x0, DEPTH),
                ),
            )
        )
        rooms.append(
            Room(
                room_id=f"S{i + 1}",
                name=f"Office S{i + 1}",
                floor=0,
                polygon=((x0, 0.0), (x1, 0.0), (x1, CORRIDOR_SOUTH), (x0, CORRIDOR_SOUTH)),
            )
        )
    rooms.append(
        Room(
            room_id="CORR",
            name="Corridor",
            floor=0,
            polygon=(
                (0.0, CORRIDOR_SOUTH),
                (WIDTH, CORRIDOR_SOUTH),
                (WIDTH, CORRIDOR_NORTH),
                (0.0, CORRIDOR_NORTH),
            ),
        )
    )

    walls: List[Wall] = []
    # Exterior shell; the west wall has the entrance gap at the corridor.
    walls.append(Wall(0.0, 0.0, WIDTH, 0.0))  # south
    walls.append(Wall(0.0, DEPTH, WIDTH, DEPTH))  # north
    walls.append(Wall(WIDTH, 0.0, WIDTH, DEPTH))  # east
    walls.append(Wall(0.0, 0.0, 0.0, CORRIDOR_SOUTH))  # west below entrance
    walls.append(Wall(0.0, CORRIDOR_NORTH, 0.0, DEPTH))  # west above entrance
    # Corridor walls with doors.
    walls.extend(_corridor_wall_segments(CORRIDOR_SOUTH))
    walls.extend(_corridor_wall_segments(CORRIDOR_NORTH))
    # Partitions between neighbouring offices.
    for x in (10.0, 20.0, 30.0):
        walls.append(Wall(x, 0.0, x, CORRIDOR_SOUTH))
        walls.append(Wall(x, CORRIDOR_NORTH, x, DEPTH))

    floor = Floor(level=0, rooms=rooms, walls=walls)
    grid = LocalGrid(origin=DEMO_ORIGIN, rotation_deg=0.0)
    return Building(building_id, grid, [floor])


def demo_two_floor_building(building_id: str = "hopper-2f") -> Building:
    """A two-storey variant of the demo building.

    The ground floor matches :func:`demo_building`; the first floor has
    the same corridor but only two large offices per side.  Room ids are
    floor-prefixed (``1N1`` etc.) so resolution results are unambiguous.
    """
    ground = demo_building(building_id).floor(0)

    rooms = []
    for i in range(2):
        x0 = i * 2 * ROOM_WIDTH
        x1 = x0 + 2 * ROOM_WIDTH
        rooms.append(
            Room(
                room_id=f"1N{i + 1}",
                name=f"Upper office N{i + 1}",
                floor=1,
                polygon=(
                    (x0, CORRIDOR_NORTH),
                    (x1, CORRIDOR_NORTH),
                    (x1, DEPTH),
                    (x0, DEPTH),
                ),
            )
        )
        rooms.append(
            Room(
                room_id=f"1S{i + 1}",
                name=f"Upper office S{i + 1}",
                floor=1,
                polygon=(
                    (x0, 0.0),
                    (x1, 0.0),
                    (x1, CORRIDOR_SOUTH),
                    (x0, CORRIDOR_SOUTH),
                ),
            )
        )
    rooms.append(
        Room(
            room_id="1CORR",
            name="Upper corridor",
            floor=1,
            polygon=(
                (0.0, CORRIDOR_SOUTH),
                (WIDTH, CORRIDOR_SOUTH),
                (WIDTH, CORRIDOR_NORTH),
                (0.0, CORRIDOR_NORTH),
            ),
        )
    )
    walls = [
        Wall(0.0, 0.0, WIDTH, 0.0, floor=1),
        Wall(0.0, DEPTH, WIDTH, DEPTH, floor=1),
        Wall(0.0, 0.0, 0.0, DEPTH, floor=1),
        Wall(WIDTH, 0.0, WIDTH, DEPTH, floor=1),
        Wall(ROOM_WIDTH * 2, 0.0, ROOM_WIDTH * 2, CORRIDOR_SOUTH, floor=1),
        Wall(ROOM_WIDTH * 2, CORRIDOR_NORTH, ROOM_WIDTH * 2, DEPTH, floor=1),
    ]
    corridor_walls = [
        Wall(w.x1, w.y1, w.x2, w.y2, floor=1)
        for w in _corridor_wall_segments(CORRIDOR_SOUTH)
        + _corridor_wall_segments(CORRIDOR_NORTH)
    ]
    upper = Floor(level=1, rooms=rooms, walls=walls + corridor_walls)
    grid = LocalGrid(origin=DEMO_ORIGIN, rotation_deg=0.0)
    return Building(building_id, grid, [ground, upper])


def demo_access_points() -> List[AccessPoint]:
    """The demo WiFi deployment: one AP per pair of offices plus corridor."""
    return [
        AccessPoint("ap:corr:west", GridPosition(8.0, 7.5)),
        AccessPoint("ap:corr:east", GridPosition(32.0, 7.5)),
        AccessPoint("ap:north:1", GridPosition(5.0, 12.0)),
        AccessPoint("ap:north:3", GridPosition(25.0, 12.0)),
        AccessPoint("ap:south:2", GridPosition(15.0, 3.0)),
        AccessPoint("ap:south:4", GridPosition(35.0, 3.0)),
    ]


def demo_beacons() -> "List":
    """One BLE beacon per office plus two corridor beacons."""
    from repro.sensors.ble import Beacon

    beacons = [
        Beacon("bcn:corr:west", GridPosition(10.0, 7.5)),
        Beacon("bcn:corr:east", GridPosition(30.0, 7.5)),
    ]
    for i in range(4):
        x = 5.0 + 10.0 * i
        beacons.append(Beacon(f"bcn:N{i + 1}", GridPosition(x, 12.0)))
        beacons.append(Beacon(f"bcn:S{i + 1}", GridPosition(x, 3.0)))
    return beacons


def demo_radio_environment(building: Building) -> RadioEnvironment:
    """Radio environment over the demo building's wall model."""
    return RadioEnvironment(
        access_points=demo_access_points(),
        wall_counter=building.walls_between,
    )


def demo_survey_positions(spacing_m: float = 2.0) -> List[GridPosition]:
    """A survey lattice covering the demo floor for radio-map calibration."""
    positions = []
    y = 1.0
    while y < DEPTH:
        x = 1.0
        while x < WIDTH:
            positions.append(GridPosition(x, y, 0))
            x += spacing_m
        y += spacing_m
    return positions
