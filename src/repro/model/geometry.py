"""Plane geometry for the building model.

Pure functions over ``(x, y)`` tuples: containment, intersection,
centroids.  Kept dependency-free so both the building model and the
particle filter's wall tests can use them in inner loops.
"""

from __future__ import annotations

from typing import Sequence, Tuple

Point = Tuple[float, float]


def point_in_polygon(x: float, y: float, polygon: Sequence[Point]) -> bool:
    """Ray-casting containment test; points on edges count as inside.

    ``polygon`` is an ordered sequence of vertices (closing edge implied).
    """
    if len(polygon) < 3:
        return False
    inside = False
    n = len(polygon)
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        if _on_segment(x, y, x1, y1, x2, y2):
            return True
        if (y1 > y) != (y2 > y):
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            if x < x_cross:
                inside = not inside
    return inside


def _on_segment(
    px: float, py: float, x1: float, y1: float, x2: float, y2: float,
    eps: float = 1e-9,
) -> bool:
    cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
    if abs(cross) > eps * max(1.0, abs(x2 - x1) + abs(y2 - y1)):
        return False
    dot = (px - x1) * (x2 - x1) + (py - y1) * (y2 - y1)
    length_sq = (x2 - x1) ** 2 + (y2 - y1) ** 2
    return -eps <= dot <= length_sq + eps


def _orientation(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Sign of the cross product (b-a) x (c-a): 1 ccw, -1 cw, 0 collinear."""
    value = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if value > 1e-12:
        return 1
    if value < -1e-12:
        return -1
    return 0


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Whether closed segments ``p1p2`` and ``q1q2`` intersect."""
    o1 = _orientation(*p1, *p2, *q1)
    o2 = _orientation(*p1, *p2, *q2)
    o3 = _orientation(*q1, *q2, *p1)
    o4 = _orientation(*q1, *q2, *p2)
    if o1 != o2 and o3 != o4:
        return True
    # Collinear overlap cases.
    if o1 == 0 and _on_segment(q1[0], q1[1], p1[0], p1[1], p2[0], p2[1]):
        return True
    if o2 == 0 and _on_segment(q2[0], q2[1], p1[0], p1[1], p2[0], p2[1]):
        return True
    if o3 == 0 and _on_segment(p1[0], p1[1], q1[0], q1[1], q2[0], q2[1]):
        return True
    if o4 == 0 and _on_segment(p2[0], p2[1], q1[0], q1[1], q2[0], q2[1]):
        return True
    return False


def polygon_area(polygon: Sequence[Point]) -> float:
    """Signed shoelace area (positive for counter-clockwise winding)."""
    if len(polygon) < 3:
        return 0.0
    total = 0.0
    n = len(polygon)
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def polygon_centroid(polygon: Sequence[Point]) -> Point:
    """Area-weighted centroid; falls back to vertex mean for slivers."""
    area = polygon_area(polygon)
    if abs(area) < 1e-12:
        xs = [p[0] for p in polygon]
        ys = [p[1] for p in polygon]
        return sum(xs) / len(xs), sum(ys) / len(ys)
    cx = cy = 0.0
    n = len(polygon)
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        factor = x1 * y2 - x2 * y1
        cx += (x1 + x2) * factor
        cy += (y1 + y2) * factor
    return cx / (6.0 * area), cy / (6.0 * area)


def bounding_box(polygon: Sequence[Point]) -> Tuple[float, float, float, float]:
    """``(min_x, min_y, max_x, max_y)`` of the vertex set."""
    xs = [p[0] for p in polygon]
    ys = [p[1] for p in polygon]
    return min(xs), min(ys), max(xs), max(ys)
