"""Buildings, floors, rooms and walls.

The building model answers the three questions the middleware asks of it:

* *which room is this position in?* -- the Resolver component (Fig. 1)
  producing "Positions (RoomID)";
* *does this movement cross a wall?* -- the particle filter's motion
  constraint (§3.2, Fig. 6);
* *how many walls lie between two points?* -- attenuation input for the
  WiFi radio model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.grid import GridPosition, LocalGrid
from repro.geo.wgs84 import Wgs84Position
from repro.model.geometry import (
    Point,
    bounding_box,
    point_in_polygon,
    polygon_centroid,
    segments_intersect,
)


@dataclass(frozen=True)
class Wall:
    """A wall segment in grid coordinates on one floor."""

    x1: float
    y1: float
    x2: float
    y2: float
    floor: int = 0

    @property
    def start(self) -> Point:
        return (self.x1, self.y1)

    @property
    def end(self) -> Point:
        return (self.x2, self.y2)


@dataclass(frozen=True)
class Room:
    """A named room bounded by a polygon in grid coordinates."""

    room_id: str
    name: str
    floor: int
    polygon: Tuple[Point, ...]

    def contains(self, position: GridPosition) -> bool:
        if position.floor != self.floor:
            return False
        return point_in_polygon(position.x_m, position.y_m, self.polygon)

    @property
    def centroid(self) -> GridPosition:
        cx, cy = polygon_centroid(self.polygon)
        return GridPosition(cx, cy, self.floor)


@dataclass(frozen=True)
class SymbolicLocation:
    """A room-level position: the output of the Resolver component."""

    building_id: str
    room_id: Optional[str]
    floor: int
    timestamp: Optional[float] = None

    @property
    def is_inside(self) -> bool:
        return self.room_id is not None


class Floor:
    """One building storey: rooms plus interior/exterior walls."""

    def __init__(
        self, level: int, rooms: Sequence[Room], walls: Sequence[Wall]
    ) -> None:
        self.level = level
        self.rooms = list(rooms)
        self.walls = [w for w in walls if w.floor == level]
        for room in self.rooms:
            if room.floor != level:
                raise ValueError(
                    f"room {room.room_id} declared for floor {room.floor},"
                    f" placed on floor {level}"
                )

    def room_at(self, position: GridPosition) -> Optional[Room]:
        for room in self.rooms:
            if room.contains(position):
                return room
        return None


class Building:
    """A building anchored in the world by a :class:`LocalGrid`.

    The grid makes the building usable from both sides of the middleware:
    geodetic positions from GPS resolve into rooms, and grid positions
    from the WiFi engine lift back to WGS84.
    """

    def __init__(
        self, building_id: str, grid: LocalGrid, floors: Sequence[Floor]
    ) -> None:
        if not floors:
            raise ValueError("a building needs at least one floor")
        self.building_id = building_id
        self.grid = grid
        self._floors: Dict[int, Floor] = {f.level: f for f in floors}
        if len(self._floors) != len(floors):
            raise ValueError("duplicate floor levels")

    @property
    def floors(self) -> List[Floor]:
        return [self._floors[k] for k in sorted(self._floors)]

    def floor(self, level: int) -> Floor:
        try:
            return self._floors[level]
        except KeyError:
            raise KeyError(
                f"building {self.building_id} has no floor {level}"
            ) from None

    def rooms(self) -> List[Room]:
        return [room for floor in self.floors for room in floor.rooms]

    def room_by_id(self, room_id: str) -> Room:
        for room in self.rooms():
            if room.room_id == room_id:
                return room
        raise KeyError(f"no room {room_id!r} in {self.building_id}")

    # -- spatial queries ---------------------------------------------------

    def room_at(self, position: GridPosition) -> Optional[Room]:
        floor = self._floors.get(position.floor)
        return floor.room_at(position) if floor else None

    def room_at_wgs84(self, position: Wgs84Position) -> Optional[Room]:
        return self.room_at(self.grid.to_grid(position))

    def resolve(self, position: Wgs84Position) -> SymbolicLocation:
        """Resolver semantics: position to room id (None when outside)."""
        grid_pos = self.grid.to_grid(position)
        room = self.room_at(grid_pos)
        return SymbolicLocation(
            building_id=self.building_id,
            room_id=room.room_id if room else None,
            floor=grid_pos.floor,
            timestamp=position.timestamp,
        )

    def contains(self, position: GridPosition) -> bool:
        return self.room_at(position) is not None

    def crosses_wall(self, a: GridPosition, b: GridPosition) -> bool:
        """Whether the straight move from ``a`` to ``b`` crosses any wall.

        Moves between floors are always considered blocked: the model has
        no stairwells, and the particle filter treats floor changes as
        impossible within one step.
        """
        if a.floor != b.floor:
            return True
        floor = self._floors.get(a.floor)
        if floor is None:
            return False
        p1 = (a.x_m, a.y_m)
        p2 = (b.x_m, b.y_m)
        return any(
            segments_intersect(p1, p2, w.start, w.end) for w in floor.walls
        )

    def walls_between(self, a: GridPosition, b: GridPosition) -> int:
        """Number of wall segments crossed by the straight line a->b."""
        if a.floor != b.floor:
            # One slab per floor of separation approximates inter-floor
            # attenuation for the radio model.
            return 2 * abs(a.floor - b.floor)
        floor = self._floors.get(a.floor)
        if floor is None:
            return 0
        p1 = (a.x_m, a.y_m)
        p2 = (b.x_m, b.y_m)
        return sum(
            1
            for w in floor.walls
            if segments_intersect(p1, p2, w.start, w.end)
        )

    def footprint(self, level: int = 0) -> Tuple[float, float, float, float]:
        """Bounding box ``(min_x, min_y, max_x, max_y)`` of a floor."""
        floor = self.floor(level)
        points: List[Point] = []
        for room in floor.rooms:
            points.extend(room.polygon)
        for wall in floor.walls:
            points.extend([wall.start, wall.end])
        if not points:
            return (0.0, 0.0, 0.0, 0.0)
        return bounding_box(points)
