"""Location model substrate (system S7 in DESIGN.md).

The paper's Resolver component translates positions into room numbers
(Fig. 1), and the particle filter uses "location models to impose
restrictions on possible movements in the environment" (§1).  This package
provides both: a building model with floors, rooms and walls
(:mod:`repro.model.building`), the 2-D geometry beneath it
(:mod:`repro.model.geometry`), and a ready-made office building used by
examples and benchmarks (:mod:`repro.model.demo`).
"""

from repro.model.building import Building, Floor, Room, SymbolicLocation, Wall
from repro.model.demo import demo_building
from repro.model.geometry import (
    point_in_polygon,
    polygon_area,
    polygon_centroid,
    segments_intersect,
)

__all__ = [
    "Building",
    "Floor",
    "Room",
    "Wall",
    "SymbolicLocation",
    "demo_building",
    "point_in_polygon",
    "polygon_area",
    "polygon_centroid",
    "segments_intersect",
]
