"""Declarative service components with dynamic dependency resolution.

Paper §2.1: component connections are established "either by direct calls
to the graph manipulation API, based on explicitly defined system level
configurations or through **dynamic resolution of dependencies between
components**.  ... As custom components are added to the PerPos middleware
the dependencies are resolved and when satisfied the components are added
to the processing graph appropriately and the classes implementing the
Processing Component functionality is instantiated."

This module supplies that mechanism, modelled on OSGi Declarative
Services: a :class:`ComponentDescriptor` names required service
interfaces; the :class:`ComponentRuntime` instantiates the component when
every mandatory reference is satisfiable, registers what it provides, and
deactivates it again when a dependency goes away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.services.registry import (
    ServiceEvent,
    ServiceEventType,
    ServiceFilter,
    ServiceRegistration,
    ServiceRegistry,
)


@dataclass(frozen=True)
class Reference:
    """One declared dependency of a component.

    ``name`` becomes the keyword argument passed to the factory.
    Optional references are passed as ``None`` when unsatisfied and do not
    gate activation.
    """

    name: str
    interface: str
    flt: ServiceFilter = None
    optional: bool = False


@dataclass(frozen=True)
class ComponentDescriptor:
    """A component declaration: what it needs, what it provides."""

    name: str
    factory: Callable[..., Any]
    provides: Tuple[str, ...] = ()
    references: Tuple[Reference, ...] = ()
    properties: Mapping[str, Any] = field(default_factory=dict)


class _ManagedComponent:
    """Runtime state of one declared component."""

    def __init__(self, descriptor: ComponentDescriptor) -> None:
        self.descriptor = descriptor
        self.instance: Optional[Any] = None
        self.registration: Optional[ServiceRegistration] = None
        self.bound: Dict[str, Any] = {}

    @property
    def active(self) -> bool:
        return self.instance is not None


class ComponentRuntime:
    """Activates declared components as their dependencies resolve.

    The runtime listens to registry events; any registration or
    unregistration triggers a reconciliation pass.  Passes repeat until a
    fixpoint, so a chain of components (A provides what B needs, B provides
    what C needs) activates in one ``add`` call regardless of declaration
    order -- exactly how the PerPos processing tree self-assembles.
    """

    def __init__(self, registry: ServiceRegistry) -> None:
        self.registry = registry
        self._components: List[_ManagedComponent] = []
        self._pending: List[Optional[ServiceEvent]] = []
        self._dying: set = set()
        self._reconciling = False
        self._unsubscribe = registry.add_listener(self._on_event)

    def close(self) -> None:
        """Deactivate everything and stop listening."""
        self._unsubscribe()
        for managed in reversed(self._components):
            self._deactivate(managed)

    def add(self, descriptor: ComponentDescriptor) -> None:
        """Declare a component; it activates as soon as satisfiable."""
        if any(
            m.descriptor.name == descriptor.name for m in self._components
        ):
            raise ValueError(f"component {descriptor.name!r} already added")
        self._components.append(_ManagedComponent(descriptor))
        self._reconcile()

    def remove(self, name: str) -> None:
        """Withdraw a component declaration, deactivating its instance."""
        for managed in self._components:
            if managed.descriptor.name == name:
                self._deactivate(managed)
                self._components.remove(managed)
                self._reconcile()
                return
        raise KeyError(f"no component {name!r}")

    def component_instance(self, name: str) -> Optional[Any]:
        for managed in self._components:
            if managed.descriptor.name == name:
                return managed.instance
        raise KeyError(f"no component {name!r}")

    def active_components(self) -> List[str]:
        return [
            m.descriptor.name for m in self._components if m.active
        ]

    # -- internals -----------------------------------------------------

    def _on_event(self, event: ServiceEvent) -> None:
        if event.event_type is ServiceEventType.REGISTERED:
            self._reconcile()
        elif event.event_type is ServiceEventType.UNREGISTERING:
            self._reconcile(unregistering=event)

    def _reconcile(self, unregistering: Optional[ServiceEvent] = None) -> None:
        # Deactivating a component can unregister what it provides, which
        # re-enters this method; those nested events are queued and drained
        # here so that cascades (c needs b needs a) fully propagate.
        self._pending.append(unregistering)
        if self._reconciling:
            return
        self._reconciling = True
        try:
            while self._pending:
                self._reconcile_once(self._pending.pop(0))
        finally:
            self._reconciling = False
            # The drain runs inside the registry's event dispatch, before
            # the dying services are actually removed; the exclusion set
            # must therefore live exactly as long as the drain.
            self._dying.clear()

    def _reconcile_once(
        self, unregistering: Optional[ServiceEvent]
    ) -> None:
        # UNREGISTERING fires before the registry drops the service, so
        # the dying service must be excluded from re-resolution or a
        # deactivated component would immediately re-bind it.
        if unregistering is not None:
            gone_id = unregistering.reference.service_id
            self._dying.add(gone_id)
            for managed in self._components:
                if managed.active and self._binds_service(
                    managed, gone_id
                ):
                    self._deactivate(managed)
        # Then activate whatever has become satisfiable, to fixpoint.
        progress = True
        while progress:
            progress = False
            for managed in self._components:
                if not managed.active and self._try_activate(managed):
                    progress = True

    def _binds_service(
        self, managed: _ManagedComponent, service_id: int
    ) -> bool:
        return any(
            ref is not None and ref.service_id == service_id
            for ref in managed.bound.values()
        )

    def _resolve(
        self, managed: _ManagedComponent
    ) -> Optional[Dict[str, Any]]:
        """Resolve references to service references, or None if unmet."""
        resolution: Dict[str, Any] = {}
        for ref_decl in managed.descriptor.references:
            candidates = self.registry.get_references(
                ref_decl.interface, ref_decl.flt
            )
            service_ref = next(
                (c for c in candidates if c.service_id not in self._dying),
                None,
            )
            if service_ref is None:
                if not ref_decl.optional:
                    return None
                resolution[ref_decl.name] = None
            else:
                resolution[ref_decl.name] = service_ref
        return resolution

    def _try_activate(self, managed: _ManagedComponent) -> bool:
        resolution = self._resolve(managed)
        if resolution is None:
            return False
        kwargs = {}
        for name, service_ref in resolution.items():
            kwargs[name] = (
                None
                if service_ref is None
                else self.registry.get_service(service_ref)
            )
        instance = managed.descriptor.factory(**kwargs)
        managed.instance = instance
        managed.bound = resolution
        if managed.descriptor.provides:
            props = dict(managed.descriptor.properties)
            props["component"] = managed.descriptor.name
            managed.registration = self.registry.register(
                managed.descriptor.provides, instance, props
            )
        return True

    def _deactivate(self, managed: _ManagedComponent) -> None:
        if not managed.active:
            return
        if managed.registration is not None:
            managed.registration.unregister()
            managed.registration = None
        deactivate = getattr(managed.instance, "deactivate", None)
        if callable(deactivate):
            deactivate()
        managed.instance = None
        managed.bound = {}
