"""Distribution across simulated hosts (the D-OSGi substitute).

Paper §3.3: "Because OSGi supports transparent distribution of services
through the D-OSGi specification the processing graph can span several
hosts with little added configuration overhead."  The EnTracked
experiment needs exactly that -- a Sensor Wrapper on the mobile device,
Parser/Interpreter on a server -- plus something the real system gets for
free: every remote call costs radio energy, so the network must *count
messages and bytes per link* for the energy model to integrate.

A :class:`Host` owns a framework; exported services are callable from
other hosts through :class:`RemoteProxy`, which forwards method calls
synchronously while recording traffic on the :class:`Network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.clock import SimulationClock
from repro.services.bundle import Framework
from repro.services.registry import ServiceFilter


@dataclass(frozen=True)
class MessageRecord:
    """One message on the simulated network."""

    time_s: float
    source: str
    destination: str
    size_bytes: int
    description: str


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for remote calls.

    ``max_attempts`` counts the first try: 3 means one call plus at most
    two retries.  Between attempts the *simulation* clock advances by
    ``backoff_s`` (growing by ``multiplier`` each retry) -- no real
    sleeps, and a network without a clock retries immediately while
    still recording every attempt on the ledger.
    """

    max_attempts: int = 3
    backoff_s: float = 0.1
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")


def _estimate_size(value: Any) -> int:
    """Crude wire-size estimate: length of the repr, floor 8 bytes.

    The energy model only needs message *counts* and a size roughly
    proportional to payload complexity; repr length provides both without
    a serialisation dependency.
    """
    try:
        return max(8, len(repr(value)))
    except Exception:
        return 64


class Network:
    """Records traffic between hosts; delivery is synchronous.

    ``latency_s`` is bookkeeping (reported in summaries) rather than a
    delivery delay: the simulation is turn-based, and the paper's
    evaluation depends on message counts, not on reordering effects.
    """

    def __init__(
        self,
        clock: Optional[SimulationClock] = None,
        latency_s: float = 0.05,
    ) -> None:
        self.clock = clock
        self.latency_s = latency_s
        self.messages: List[MessageRecord] = []

    @property
    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def record(
        self, source: str, destination: str, payload: Any, description: str
    ) -> None:
        self.messages.append(
            MessageRecord(
                time_s=self.now,
                source=source,
                destination=destination,
                size_bytes=_estimate_size(payload),
                description=description,
            )
        )

    # -- accounting ----------------------------------------------------

    def message_count(
        self, source: Optional[str] = None, destination: Optional[str] = None
    ) -> int:
        return sum(1 for m in self._filtered(source, destination))

    def bytes_sent(
        self, source: Optional[str] = None, destination: Optional[str] = None
    ) -> int:
        return sum(m.size_bytes for m in self._filtered(source, destination))

    def _filtered(
        self, source: Optional[str], destination: Optional[str]
    ) -> List[MessageRecord]:
        return [
            m
            for m in self.messages
            if (source is None or m.source == source)
            and (destination is None or m.destination == destination)
        ]

    def reset(self) -> None:
        self.messages.clear()


class RemoteProxy:
    """Call-forwarding proxy for a service exported on another host.

    Each method call records a request message, invokes the target
    synchronously, and records either a response or an ``:error``
    message on the network -- a raising target therefore leaves a
    *matched* request/error pair on the ledger plus a per-method entry
    in ``failure_counts``, instead of an unmatched request and no
    accounting.  With a :class:`RetryPolicy` each failed attempt is
    retried after a simulated backoff (injected clock, no real sleeps).
    Only plain method calls are proxied -- attribute reads of
    non-callables raise, keeping accidental chatty access patterns
    visible.
    """

    def __init__(
        self,
        target: Any,
        network: Network,
        source_host: str,
        target_host: str,
        interface: str,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._target = target
        self._network = network
        self._source_host = source_host
        self._target_host = target_host
        self._interface = interface
        self._retry = retry
        self.call_counts: Dict[str, int] = {}
        #: Per-method count of raising attempts (retries included).
        self.failure_counts: Dict[str, int] = {}

    def __getattr__(self, name: str) -> Callable[..., Any]:
        attr = getattr(self._target, name)
        if not callable(attr):
            raise AttributeError(
                f"remote access to non-callable attribute {name!r} of"
                f" {self._interface}"
            )

        def _remote_call(*args: Any, **kwargs: Any) -> Any:
            retry = self._retry
            attempts = retry.max_attempts if retry is not None else 1
            backoff = retry.backoff_s if retry is not None else 0.0
            for attempt in range(1, attempts + 1):
                self.call_counts[name] = self.call_counts.get(name, 0) + 1
                self._network.record(
                    self._source_host,
                    self._target_host,
                    (args, kwargs),
                    f"{self._interface}.{name}:request",
                )
                try:
                    result = attr(*args, **kwargs)
                except Exception as exc:
                    self.failure_counts[name] = (
                        self.failure_counts.get(name, 0) + 1
                    )
                    self._network.record(
                        self._target_host,
                        self._source_host,
                        repr(exc),
                        f"{self._interface}.{name}:error",
                    )
                    if attempt == attempts:
                        raise
                    clock = self._network.clock
                    if clock is not None and backoff > 0:
                        clock.advance(backoff)
                    backoff *= retry.multiplier
                    continue
                self._network.record(
                    self._target_host,
                    self._source_host,
                    result,
                    f"{self._interface}.{name}:response",
                )
                return result

        return _remote_call


class Host:
    """A machine running its own framework, attached to a network."""

    def __init__(self, name: str, network: Network) -> None:
        self.name = name
        self.network = network
        self.framework = Framework()
        self._exports: Dict[str, Tuple[Any, Mapping[str, Any]]] = {}

    def export(
        self,
        interface: str,
        service: Any,
        properties: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Make a local service callable from other hosts."""
        props = dict(properties or {})
        props["remote.host"] = self.name
        self.framework.registry.register(interface, service, props)
        self._exports[interface] = (service, props)

    def import_service(
        self,
        remote: "Host",
        interface: str,
        flt: ServiceFilter = None,
        retry: Optional[RetryPolicy] = None,
    ) -> RemoteProxy:
        """Import an exported service from ``remote`` as a proxy.

        Pass ``retry`` to wrap every proxied call in bounded
        retry-with-backoff (simulated-clock delays, each attempt on the
        ledger).
        """
        try:
            service, _props = remote._exports[interface]
        except KeyError:
            raise LookupError(
                f"host {remote.name!r} exports no service {interface!r}"
            ) from None
        proxy = RemoteProxy(
            target=service,
            network=self.network,
            source_host=self.name,
            target_host=remote.name,
            interface=interface,
            retry=retry,
        )
        # Imported services appear in the local registry, as D-OSGi does.
        props = {"remote.host": remote.name, "service.imported": True}
        self.framework.registry.register(interface, proxy, props)
        return proxy

    def __repr__(self) -> str:
        return f"Host({self.name!r})"
