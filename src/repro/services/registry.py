"""The service registry: registration, lookup, events.

A trimmed-down OSGi service registry.  Services are arbitrary Python
objects registered under one or more interface names with a property
dictionary; consumers look references up by interface and property
filter, and can subscribe to registration lifecycle events -- which is
what lets the PerPos graph assembly react to components appearing and
disappearing at runtime.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union


class ServiceEventType(Enum):
    REGISTERED = "registered"
    MODIFIED = "modified"
    UNREGISTERING = "unregistering"


@dataclass(frozen=True)
class ServiceEvent:
    """Delivered to listeners on every registry state change."""

    event_type: ServiceEventType
    reference: "ServiceReference"


#: A filter is a property dict (all entries must match) or a predicate
#: over the reference's properties.
ServiceFilter = Union[
    Mapping[str, Any], Callable[[Mapping[str, Any]], bool], None
]


def _matches(properties: Mapping[str, Any], flt: ServiceFilter) -> bool:
    if flt is None:
        return True
    if callable(flt):
        return bool(flt(properties))
    return all(properties.get(k) == v for k, v in flt.items())


class ServiceReference:
    """A handle to a registered service; comparison follows OSGi ranking.

    Higher ``service.ranking`` wins; ties break toward the older (lower)
    service id, so lookups are deterministic.
    """

    def __init__(
        self,
        service_id: int,
        interfaces: Tuple[str, ...],
        properties: Dict[str, Any],
    ) -> None:
        self.service_id = service_id
        self.interfaces = interfaces
        self._properties = properties

    @property
    def properties(self) -> Mapping[str, Any]:
        return dict(self._properties)

    @property
    def ranking(self) -> int:
        return int(self._properties.get("service.ranking", 0))

    # Defined after the decorated attributes: a method named ``property``
    # would otherwise shadow the builtin for the rest of the class body.
    def property(self, key: str, default: Any = None) -> Any:
        return self._properties.get(key, default)

    def sort_key(self) -> Tuple[int, int]:
        return (-self.ranking, self.service_id)

    def __repr__(self) -> str:
        return (
            f"ServiceReference(id={self.service_id},"
            f" interfaces={list(self.interfaces)})"
        )


class ServiceRegistration:
    """Returned to the registering party; allows update and unregister."""

    def __init__(
        self, registry: "ServiceRegistry", reference: ServiceReference
    ) -> None:
        self._registry = registry
        self.reference = reference
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def set_properties(self, properties: Mapping[str, Any]) -> None:
        if not self._active:
            raise RuntimeError("registration already unregistered")
        self._registry._update_properties(self.reference, properties)

    def unregister(self) -> None:
        if not self._active:
            return
        self._active = False
        self._registry._unregister(self.reference)


class ServiceRegistry:
    """Registry of live services with lookup by interface and filter."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._services: Dict[int, Any] = {}
        self._references: Dict[int, ServiceReference] = {}
        self._listeners: List[Callable[[ServiceEvent], None]] = []

    # -- registration ------------------------------------------------------

    def register(
        self,
        interfaces: Union[str, Sequence[str]],
        service: Any,
        properties: Optional[Mapping[str, Any]] = None,
    ) -> ServiceRegistration:
        """Register ``service`` under one or more interface names."""
        if isinstance(interfaces, str):
            interfaces = (interfaces,)
        if not interfaces:
            raise ValueError("at least one interface name required")
        service_id = next(self._ids)
        props = dict(properties or {})
        props["service.id"] = service_id
        reference = ServiceReference(service_id, tuple(interfaces), props)
        self._services[service_id] = service
        self._references[service_id] = reference
        registration = ServiceRegistration(self, reference)
        self._fire(ServiceEventType.REGISTERED, reference)
        return registration

    def _update_properties(
        self, reference: ServiceReference, properties: Mapping[str, Any]
    ) -> None:
        merged = dict(reference._properties)
        merged.update(properties)
        merged["service.id"] = reference.service_id
        reference._properties = merged
        self._fire(ServiceEventType.MODIFIED, reference)

    def _unregister(self, reference: ServiceReference) -> None:
        if reference.service_id not in self._services:
            return
        self._fire(ServiceEventType.UNREGISTERING, reference)
        del self._services[reference.service_id]
        del self._references[reference.service_id]

    # -- lookup ------------------------------------------------------------

    def get_references(
        self, interface: Optional[str] = None, flt: ServiceFilter = None
    ) -> List[ServiceReference]:
        """References matching ``interface`` and ``flt``, best first."""
        refs = [
            ref
            for ref in self._references.values()
            if (interface is None or interface in ref.interfaces)
            and _matches(ref._properties, flt)
        ]
        refs.sort(key=ServiceReference.sort_key)
        return refs

    def get_reference(
        self, interface: str, flt: ServiceFilter = None
    ) -> Optional[ServiceReference]:
        refs = self.get_references(interface, flt)
        return refs[0] if refs else None

    def get_service(self, reference: ServiceReference) -> Any:
        try:
            return self._services[reference.service_id]
        except KeyError:
            raise LookupError(
                f"service {reference.service_id} no longer registered"
            ) from None

    def find_service(
        self, interface: str, flt: ServiceFilter = None
    ) -> Optional[Any]:
        """Convenience: best matching service object, or None."""
        ref = self.get_reference(interface, flt)
        return self.get_service(ref) if ref else None

    # -- events ------------------------------------------------------------

    def add_listener(
        self, listener: Callable[[ServiceEvent], None]
    ) -> Callable[[], None]:
        """Subscribe to service events; returns an unsubscribe function."""
        self._listeners.append(listener)

        def _remove() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return _remove

    def _fire(
        self, event_type: ServiceEventType, reference: ServiceReference
    ) -> None:
        event = ServiceEvent(event_type, reference)
        for listener in list(self._listeners):
            listener(event)

    def __len__(self) -> int:
        return len(self._services)
