"""OSGi-like service platform (system S8 in DESIGN.md).

The paper realises PerPos "in the Java language and built ... on top of
the OSGi service platform" (§3), mapping processing components to service
components, using OSGi's dynamic composition to connect them, and D-OSGi
to span the processing graph over several hosts (§3.3).  This package is
the Python substitute:

* :mod:`repro.services.registry` -- service registry with properties,
  filters and service events;
* :mod:`repro.services.bundle` -- bundle lifecycle and a framework;
* :mod:`repro.services.declarative` -- declarative service components
  with dependency resolution (activate when satisfied);
* :mod:`repro.services.remote` -- distribution over simulated hosts with
  a message-counting network, standing in for D-OSGi.
"""

from repro.services.bundle import Bundle, BundleContext, BundleState, Framework
from repro.services.declarative import (
    ComponentDescriptor,
    ComponentRuntime,
    Reference,
)
from repro.services.registry import (
    ServiceEvent,
    ServiceReference,
    ServiceRegistration,
    ServiceRegistry,
)
from repro.services.remote import Host, Network, RemoteProxy

__all__ = [
    "ServiceRegistry",
    "ServiceReference",
    "ServiceRegistration",
    "ServiceEvent",
    "Framework",
    "Bundle",
    "BundleContext",
    "BundleState",
    "ComponentDescriptor",
    "ComponentRuntime",
    "Reference",
    "Host",
    "Network",
    "RemoteProxy",
]
