"""Binding the service platform to the processing graph (paper §3).

"We have ... realized the PerPos middleware in the Java language and
built it on top of the OSGi service platform.  The components of the
PerPos layers are mapped into the OSGi platform as service components
and the dynamic composition mechanisms of OSGi is used for connecting
the components."

:class:`GraphBinder` is that mapping for the reproduction: processing
components registered as services under :data:`COMPONENT_INTERFACE`
are mirrored into a processing graph and auto-wired by an
:class:`~repro.core.assembly.AutoAssembler`; unregistration (for example
a bundle stopping) removes them again.  Deployment-unit semantics --
"everything this bundle contributed disappears when it stops" -- thus
fall out of the service registry's own lifecycle rules.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.assembly import AutoAssembler
from repro.core.component import ProcessingComponent
from repro.core.graph import ProcessingGraph
from repro.services.registry import (
    ServiceEvent,
    ServiceEventType,
    ServiceRegistry,
)

#: Interface name under which processing components are registered.
COMPONENT_INTERFACE = "perpos.ProcessingComponent"


class GraphBinder:
    """Mirrors ProcessingComponent services into a live graph."""

    def __init__(
        self,
        registry: ServiceRegistry,
        graph: Optional[ProcessingGraph] = None,
    ) -> None:
        self.registry = registry
        self.assembler = AutoAssembler(graph)
        self._bound: Dict[int, str] = {}  # service id -> component name
        self._unsubscribe = registry.add_listener(self._on_event)
        # Adopt components registered before the binder existed.
        for reference in registry.get_references(COMPONENT_INTERFACE):
            self._bind(reference.service_id)

    @property
    def graph(self) -> ProcessingGraph:
        return self.assembler.graph

    def close(self) -> None:
        self._unsubscribe()

    # -- event handling ------------------------------------------------------

    def _on_event(self, event: ServiceEvent) -> None:
        if COMPONENT_INTERFACE not in event.reference.interfaces:
            return
        if event.event_type is ServiceEventType.REGISTERED:
            self._bind(event.reference.service_id)
        elif event.event_type is ServiceEventType.UNREGISTERING:
            self._unbind(event.reference.service_id)

    def _bind(self, service_id: int) -> None:
        reference = next(
            (
                r
                for r in self.registry.get_references(COMPONENT_INTERFACE)
                if r.service_id == service_id
            ),
            None,
        )
        if reference is None:
            return
        component = self.registry.get_service(reference)
        if not isinstance(component, ProcessingComponent):
            return
        if component.name in self.graph:
            return
        self.assembler.add(component)
        self._bound[service_id] = component.name

    def _unbind(self, service_id: int) -> None:
        name = self._bound.pop(service_id, None)
        if name is not None and name in self.graph:
            self.assembler.remove(name)

    def bound_components(self) -> Dict[int, str]:
        return dict(self._bound)
