"""Bundle lifecycle and the framework.

Bundles are the deployment unit of the paper's OSGi realisation: a named
activator whose registrations live exactly as long as the bundle is
active.  The :class:`Framework` owns the shared
:class:`~repro.services.registry.ServiceRegistry` and enforces the
INSTALLED -> ACTIVE -> STOPPED lifecycle, cleaning up a bundle's
registrations and listeners when it stops -- the property the PerPos
graph relies on when components come and go.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Union

from repro.services.registry import (
    ServiceEvent,
    ServiceFilter,
    ServiceReference,
    ServiceRegistration,
    ServiceRegistry,
)


class BundleState(Enum):
    INSTALLED = "installed"
    ACTIVE = "active"
    STOPPED = "stopped"


class BundleActivator(Protocol):
    """The start/stop hooks a bundle contributes."""

    def start(self, context: "BundleContext") -> None: ...

    def stop(self, context: "BundleContext") -> None: ...


class BundleContext:
    """A bundle's window onto the framework.

    Registrations and listeners created through the context are tracked
    and torn down automatically when the bundle stops.
    """

    def __init__(self, framework: "Framework", bundle: "Bundle") -> None:
        self._framework = framework
        self._bundle = bundle
        self._registrations: List[ServiceRegistration] = []
        self._listener_removers: List[Callable[[], None]] = []

    @property
    def bundle(self) -> "Bundle":
        return self._bundle

    @property
    def registry(self) -> ServiceRegistry:
        return self._framework.registry

    def register_service(
        self,
        interfaces: Union[str, Sequence[str]],
        service: Any,
        properties: Optional[Mapping[str, Any]] = None,
    ) -> ServiceRegistration:
        props = dict(properties or {})
        props.setdefault("bundle", self._bundle.name)
        registration = self.registry.register(interfaces, service, props)
        self._registrations.append(registration)
        return registration

    def get_service(
        self, interface: str, flt: ServiceFilter = None
    ) -> Optional[Any]:
        return self.registry.find_service(interface, flt)

    def get_references(
        self, interface: Optional[str] = None, flt: ServiceFilter = None
    ) -> List[ServiceReference]:
        return self.registry.get_references(interface, flt)

    def add_service_listener(
        self, listener: Callable[[ServiceEvent], None]
    ) -> None:
        self._listener_removers.append(self.registry.add_listener(listener))

    def _teardown(self) -> None:
        for remover in self._listener_removers:
            remover()
        self._listener_removers.clear()
        for registration in self._registrations:
            registration.unregister()
        self._registrations.clear()


class Bundle:
    """A named unit of deployment with an activator."""

    def __init__(
        self,
        name: str,
        activator: Optional[BundleActivator] = None,
    ) -> None:
        self.name = name
        self.activator = activator
        self.state = BundleState.INSTALLED
        self.context: Optional[BundleContext] = None

    def __repr__(self) -> str:
        return f"Bundle({self.name!r}, {self.state.value})"


class Framework:
    """Owns the registry and drives bundle lifecycles."""

    def __init__(self) -> None:
        self.registry = ServiceRegistry()
        self._bundles: Dict[str, Bundle] = {}

    def install(
        self, name: str, activator: Optional[BundleActivator] = None
    ) -> Bundle:
        if name in self._bundles:
            raise ValueError(f"bundle {name!r} already installed")
        bundle = Bundle(name, activator)
        self._bundles[name] = bundle
        return bundle

    def bundles(self) -> List[Bundle]:
        return list(self._bundles.values())

    def bundle(self, name: str) -> Bundle:
        try:
            return self._bundles[name]
        except KeyError:
            raise KeyError(f"no bundle {name!r} installed") from None

    def start(self, bundle: Union[str, Bundle]) -> None:
        bundle = self._coerce(bundle)
        if bundle.state is BundleState.ACTIVE:
            return
        context = BundleContext(self, bundle)
        bundle.context = context
        if bundle.activator is not None:
            try:
                bundle.activator.start(context)
            except Exception:
                context._teardown()
                bundle.context = None
                raise
        bundle.state = BundleState.ACTIVE

    def stop(self, bundle: Union[str, Bundle]) -> None:
        bundle = self._coerce(bundle)
        if bundle.state is not BundleState.ACTIVE:
            return
        assert bundle.context is not None
        if bundle.activator is not None:
            bundle.activator.stop(bundle.context)
        bundle.context._teardown()
        bundle.context = None
        bundle.state = BundleState.STOPPED

    def uninstall(self, bundle: Union[str, Bundle]) -> None:
        bundle = self._coerce(bundle)
        if bundle.state is BundleState.ACTIVE:
            self.stop(bundle)
        self._bundles.pop(bundle.name, None)

    def shutdown(self) -> None:
        """Stop every active bundle, newest first."""
        for bundle in reversed(list(self._bundles.values())):
            if bundle.state is BundleState.ACTIVE:
                self.stop(bundle)

    def _coerce(self, bundle: Union[str, Bundle]) -> Bundle:
        return bundle if isinstance(bundle, Bundle) else self.bundle(bundle)
