"""Robustness: supervised dispatch, quarantine, and fault injection.

Failures become first-class, inspectable seams of the positioning
process, the same way the PSL reifies structure and the observability
layer reifies behaviour.  See :mod:`repro.robustness.supervision` for
the policy/breaker machinery and :mod:`repro.robustness.fault_injection`
for deterministic chaos testing through the Component Feature seam.
"""

from repro.robustness.fault_injection import (
    FaultInjected,
    FaultInjectionFeature,
)
from repro.robustness.supervision import (
    CLOSED,
    HALF_OPEN,
    ISOLATE,
    OPEN,
    PROPAGATE,
    QUARANTINE,
    FailureRecord,
    SupervisionError,
    SupervisionPolicy,
    Supervisor,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "PROPAGATE",
    "ISOLATE",
    "QUARANTINE",
    "FailureRecord",
    "SupervisionError",
    "SupervisionPolicy",
    "Supervisor",
    "FaultInjected",
    "FaultInjectionFeature",
]
