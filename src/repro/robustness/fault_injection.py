"""Deterministic chaos testing through the paper's own extension seam.

:class:`FaultInjectionFeature` is an ordinary Component Feature (paper
§2.1, Fig. 3a): attached through ``psl.attach_feature`` it intercepts
the host component's ``consume`` chain and injects failures, drops and
delays -- either on a fixed cadence (``fail_every``/``drop_every``) or
probabilistically from a seeded RNG (``fail_rate``/``drop_rate``), so a
chaos run replays identically from the same seed.

* a *failure* raises :class:`FaultInjected` inside the host's
  ``receive``; under a graph :class:`~repro.robustness.supervision
  .Supervisor` this exercises exactly the isolation/quarantine path a
  genuinely broken component would;
* a *drop* vetoes the datum (the graph records ``data_dropped`` with
  this feature's name, like any feature veto);
* a *delay* withholds the datum and releases it ``delay_datums``
  consumed datums later -- a deterministic lag in logical datum time,
  with the in-flight window inspectable via :meth:`pending`;
* a *corruption* mangles a mapping payload in-flight -- dropping a
  field, replacing a value with garbage, or skewing the timestamp --
  the hostile-edge traffic shape the ingestion gateway has to survive.
  :meth:`maybe_corrupt` applies the same seeded cadence directly to raw
  wire payloads, so gateway storm tests corrupt *before* submission
  without attaching the feature to any component.

``arm()``/``disarm()`` surface through the component's reflective API,
so a chaos experiment can be switched off through the PSL
(``psl.invoke(name, "FaultInjection.disarm")``) without detaching the
feature -- which is how the end-to-end recovery tests let a quarantined
component heal.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, Mapping, Optional, Sequence

from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError


class FaultInjected(RuntimeError):
    """A failure deliberately injected by :class:`FaultInjectionFeature`."""


class FaultInjectionFeature(ComponentFeature):
    """Seeded, deterministic failure/drop/delay injection on ``consume``.

    Parameters
    ----------
    fail_every / drop_every:
        Inject on every Nth consumed datum (1 = every datum).
    fail_rate / drop_rate:
        Inject with this probability per datum, drawn from
        ``random.Random(seed)`` -- reruns with the same seed and the
        same traffic inject identically.
    delay_datums:
        Lag each datum by this many subsequently consumed datums.
    corrupt_every / corrupt_rate:
        Corrupt mapping payloads on a cadence / with a probability, like
        ``fail_every``/``fail_rate``.  Non-mapping payloads pass through
        untouched (corruption is a payload-shape fault, not a failure).
    corrupt_fields:
        Candidate fields for drop/mangle corruption (None = any field
        present in the payload).
    timestamp_skew_s:
        When positive, corruption may instead skew the payload's
        ``timestamp`` field by up to this many seconds either way --
        the stale/future traffic a freshness window must catch.
    fail_limit:
        Stop injecting failures after this many (None = unlimited);
        lets a test trip a breaker and then observe recovery without
        reaching into the feature.
    """

    name = "FaultInjection"

    def __init__(
        self,
        *,
        fail_every: Optional[int] = None,
        fail_rate: Optional[float] = None,
        drop_every: Optional[int] = None,
        drop_rate: Optional[float] = None,
        delay_datums: int = 0,
        corrupt_every: Optional[int] = None,
        corrupt_rate: Optional[float] = None,
        corrupt_fields: Optional[Sequence[str]] = None,
        timestamp_skew_s: float = 0.0,
        fail_limit: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        for label, every in (
            ("fail_every", fail_every),
            ("drop_every", drop_every),
            ("corrupt_every", corrupt_every),
        ):
            if every is not None and every < 1:
                raise FeatureError(f"{label} must be >= 1")
        for label, rate in (
            ("fail_rate", fail_rate),
            ("drop_rate", drop_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if rate is not None and not 0.0 <= rate <= 1.0:
                raise FeatureError(f"{label} must be within [0, 1]")
        if delay_datums < 0:
            raise FeatureError("delay_datums must be >= 0")
        if timestamp_skew_s < 0:
            raise FeatureError("timestamp_skew_s must be >= 0")
        if fail_limit is not None and fail_limit < 0:
            raise FeatureError("fail_limit must be >= 0")
        self._fail_every = fail_every
        self._fail_rate = fail_rate
        self._drop_every = drop_every
        self._drop_rate = drop_rate
        self._delay_datums = delay_datums
        self._corrupt_every = corrupt_every
        self._corrupt_rate = corrupt_rate
        self._corrupt_fields = (
            tuple(corrupt_fields) if corrupt_fields is not None else None
        )
        self._timestamp_skew_s = timestamp_skew_s
        self._fail_limit = fail_limit
        self._rng = random.Random(seed)
        self._armed = True
        self._consumed = 0
        self._held: Deque[Datum] = deque()
        #: Injection counters; plain ints so they surface as seams.
        self.injected_failures = 0
        self.injected_drops = 0
        self.injected_delays = 0
        self.injected_corruptions = 0

    # -- interception -------------------------------------------------------

    def consume(self, datum: Datum) -> Optional[Datum]:
        if not self._armed:
            return datum
        self._consumed += 1
        if self._should(self._fail_every, self._fail_rate) and (
            self._fail_limit is None
            or self.injected_failures < self._fail_limit
        ):
            self.injected_failures += 1
            raise FaultInjected(
                f"injected failure #{self.injected_failures} in"
                f" {self.component.name} (datum #{self._consumed},"
                f" kind {datum.kind!r})"
            )
        if self._should(self._drop_every, self._drop_rate):
            self.injected_drops += 1
            return None
        if self._should(
            self._corrupt_every, self._corrupt_rate
        ) and isinstance(datum.payload, Mapping):
            datum = datum.with_payload(self.corrupt(datum.payload))
        if self._delay_datums:
            self._held.append(datum)
            if len(self._held) <= self._delay_datums:
                self.injected_delays += 1
                return None
            return self._held.popleft()
        return datum

    def _should(
        self, every: Optional[int], rate: Optional[float]
    ) -> bool:
        if every is not None and self._consumed % every == 0:
            return True
        if rate is not None and self._rng.random() < rate:
            return True
        return False

    # -- payload corruption ---------------------------------------------------

    def maybe_corrupt(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Gateway-boundary hook: corrupt per the seeded cadence/rate.

        Counts the payload like a consumed datum and returns either a
        corrupted copy or the payload as a plain dict -- a raw-traffic
        mangler needing no host component, so storm tests can run a
        clean payload stream through it before ``gateway.submit``.
        """
        if not self._armed:
            return dict(payload)
        self._consumed += 1
        if self._should(self._corrupt_every, self._corrupt_rate):
            return self.corrupt(payload)
        return dict(payload)

    def corrupt(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Return a corrupted *copy* of ``payload`` (always corrupts).

        The seeded RNG picks one action: drop a candidate field, mangle
        a candidate field's value into out-of-domain garbage, or (when
        ``timestamp_skew_s`` is set and a ``timestamp`` field exists)
        skew the timestamp -- the three malformations the gateway's
        schema and freshness stages exist to catch.
        """
        out = dict(payload)
        self.injected_corruptions += 1
        actions = ["drop", "mangle"]
        if self._timestamp_skew_s > 0 and "timestamp" in out:
            actions.append("skew")
        action = self._rng.choice(actions)
        if action == "skew":
            skew = self._rng.uniform(
                -self._timestamp_skew_s, self._timestamp_skew_s
            )
            value = out["timestamp"]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out["timestamp"] = value + skew
            else:
                out["timestamp"] = skew
            return out
        fields = (
            self._corrupt_fields
            if self._corrupt_fields is not None
            else tuple(sorted(out))
        )
        candidates = [name for name in fields if name in out]
        if not candidates:
            # Nothing to target -- make the corruption visible anyway.
            out["__corrupted__"] = True
            return out
        field = self._rng.choice(candidates)
        if action == "drop":
            del out[field]
        else:
            out[field] = self._mangle(out[field])
        return out

    def _mangle(self, value: Any) -> Any:
        """A deterministically-chosen wrong value for ``value``."""
        if isinstance(value, bool):
            return "<corrupt>"
        if isinstance(value, (int, float)):
            # Wrong type, or wildly out of any plausible schema range.
            return self._rng.choice(["<corrupt>", None, value * 1e6 + 1e9])
        if isinstance(value, str):
            return self._rng.choice([12345, None, ["<corrupt>"]])
        return "<corrupt>"

    # -- reflective surface --------------------------------------------------

    def arm(self) -> None:
        """(Re-)enable injection."""
        self._armed = True

    def disarm(self) -> None:
        """Stop injecting; datums pass through untouched."""
        self._armed = False

    def armed(self) -> bool:
        return self._armed

    def pending(self) -> int:
        """Datums currently withheld by the delay window."""
        return len(self._held)

    def stats(self) -> Dict[str, Any]:
        """Injection accounting (also exposed as seam counters)."""
        return {
            "armed": self._armed,
            "consumed": self._consumed,
            "injected_failures": self.injected_failures,
            "injected_drops": self.injected_drops,
            "injected_delays": self.injected_delays,
            "injected_corruptions": self.injected_corruptions,
            "pending": len(self._held),
        }
