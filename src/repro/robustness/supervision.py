"""Supervised dispatch: failure isolation and component quarantine.

The paper's translucency requirements (R2/R3, §2.1-2.3) make the
positioning process an inspectable, adaptable seam -- but the seed
treated component *failures* as opaque: an exception raised inside
``consumer.receive`` unwound the whole synchronous delivery cascade,
killing sibling consumers and the sensor push loop with nothing reified
for the developer to inspect.  This module turns failures into
first-class seams, the same move the middleware makes for structure
(PSL), flow (PCL) and behaviour (observability):

* a :class:`SupervisionPolicy` decides what a raising component does to
  the rest of the delivery -- ``propagate`` (the historical behaviour),
  ``isolate`` (the failure is contained at the delivery boundary) or
  ``quarantine`` (isolation plus a circuit breaker);
* every caught failure is reified as an inspectable
  :class:`FailureRecord` (component, port, datum kind, time, traceback
  summary) on a bounded ring;
* under ``quarantine``, a component failing more than
  ``failure_threshold`` times within a sliding ``window_s`` trips a
  per-component circuit breaker: routing skips the component
  (``open``), a clock-driven probe window later admits one delivery
  (``half-open``), and a successful probe restores it (``closed``).

The :class:`Supervisor` is installed on a graph with
``graph.set_supervisor(...)`` (or ``PerPos.enable_supervision()``, which
injects the simulation clock).  While *no* supervisor is installed the
graph's dispatch loop is byte-for-byte the PR-2 fast path plus one
``is None`` check per routed datum -- supervision is free when off,
exactly like observability.
"""

from __future__ import annotations

import time as _time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
)

from repro.core.data import Datum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.component import ProcessingComponent
    from repro.core.graph import ProcessingGraph
    from repro.observability.instrumentation import ObservabilityHub

#: Policy modes.
PROPAGATE = "propagate"
ISOLATE = "isolate"
QUARANTINE = "quarantine"

_MODES = (PROPAGATE, ISOLATE, QUARANTINE)

#: Circuit-breaker health states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of health states (``component_health`` metric).
_HEALTH_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class SupervisionError(Exception):
    """Raised on invalid supervision configuration or use."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the graph treats a component that raises during delivery.

    ``mode``
        ``"propagate"`` re-raises after recording (the pre-supervision
        behaviour, but observable); ``"isolate"`` contains the failure
        at the delivery boundary so siblings and the sensor push loop
        keep running; ``"quarantine"`` additionally trips a
        circuit breaker past the threshold.
    ``failure_threshold`` / ``window_s``
        The breaker trips when a component fails at least
        ``failure_threshold`` times within the last ``window_s``
        seconds of (injected) clock time.
    ``half_open_after_s``
        How long a quarantined component stays ``open`` before the next
        routed datum is admitted as a ``half-open`` recovery probe.
    ``max_records``
        Bound on the :class:`FailureRecord` ring buffer.
    """

    mode: str = ISOLATE
    failure_threshold: int = 5
    window_s: float = 60.0
    half_open_after_s: float = 30.0
    max_records: int = 256

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SupervisionError(
                f"unknown supervision mode {self.mode!r};"
                f" expected one of {_MODES}"
            )
        if self.failure_threshold < 1:
            raise SupervisionError("failure_threshold must be >= 1")
        if self.window_s <= 0:
            raise SupervisionError("window_s must be positive")
        if self.half_open_after_s <= 0:
            raise SupervisionError("half_open_after_s must be positive")
        if self.max_records < 1:
            raise SupervisionError("max_records must be >= 1")


@dataclass(frozen=True)
class FailureRecord:
    """One reified delivery failure: the inspectable seam.

    ``origin`` is a one-line summary of the deepest traceback frame
    (``file:line in function``); the full exception object is *not*
    retained, keeping the ring buffer free of reference cycles into
    live component state.
    """

    component: str
    port: str
    kind: str
    time_s: float
    seq: int
    error_type: str
    message: str
    origin: str

    def summary(self) -> str:
        """Human-readable one-liner for reports and logs."""
        return (
            f"#{self.seq} t={self.time_s:g} {self.component}.{self.port}"
            f" <- {self.kind}: {self.error_type}: {self.message}"
            f" ({self.origin})"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "port": self.port,
            "kind": self.kind,
            "time_s": self.time_s,
            "seq": self.seq,
            "error_type": self.error_type,
            "message": self.message,
            "origin": self.origin,
        }


def _origin_of(exc: BaseException) -> str:
    """``file:line in function`` of the deepest frame, or ``"<unknown>"``."""
    tb = getattr(exc, "__traceback__", None)
    if tb is None:
        return "<unknown>"
    frames = traceback.extract_tb(tb)
    if not frames:
        return "<unknown>"
    frame = frames[-1]
    return f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"


class _Breaker:
    """Per-component circuit-breaker state."""

    __slots__ = ("state", "failure_times", "opened_at", "trips")

    def __init__(self) -> None:
        self.state: str = CLOSED
        self.failure_times: Deque[float] = deque()
        self.opened_at: float = 0.0
        self.trips: int = 0


#: Listener signature: ``(event, component, record_or_None)`` where
#: event is one of ``"failure"``, ``"open"``, ``"half-open"``,
#: ``"closed"``.
SupervisionListener = Callable[[str, str, Optional[FailureRecord]], None]


class Supervisor:
    """Applies a :class:`SupervisionPolicy` at the delivery boundary.

    The graph hands every supervised delivery to :meth:`deliver`, which
    wraps ``consumer.receive`` (or ``hub.deliver`` when observability is
    installed, so error counters and latency histograms keep recording)
    in the policy.  All clocking is injected via ``time_fn`` --
    ``PerPos.enable_supervision`` passes the simulation clock, so
    window expiry and half-open probes are fully deterministic.
    """

    def __init__(
        self,
        policy: Optional[SupervisionPolicy] = None,
        *,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.policy = policy or SupervisionPolicy()
        self._time = time_fn or _time.monotonic
        # Set by ProcessingGraph.set_supervisor; used to reach the
        # observability hub for failure/health metrics.
        self._graph: Optional["ProcessingGraph"] = None
        self._breakers: Dict[str, _Breaker] = {}
        self._records: Deque[FailureRecord] = deque(
            maxlen=self.policy.max_records
        )
        self._failure_counts: Dict[str, int] = {}
        self._skipped_counts: Dict[str, int] = {}
        self._seq = 0
        # Names with a probe delivery currently admitted; checked on
        # the success path, so kept as a set for O(1) "usually empty".
        self._half_open: Set[str] = set()
        self._listeners: List[SupervisionListener] = []

    # -- dispatch boundary (hot path while supervision is enabled) ---------

    def deliver(
        self,
        consumer: "ProcessingComponent",
        port_name: str,
        datum: Datum,
        hub: Optional["ObservabilityHub"],
    ) -> None:
        """Deliver one datum under the supervision policy."""
        name = consumer.name
        if self._breakers and not self._admit(name):
            self._skipped_counts[name] = (
                self._skipped_counts.get(name, 0) + 1
            )
            return
        try:
            if hub is None:
                consumer.receive(port_name, datum)
            else:
                hub.deliver(consumer, port_name, datum)
        except Exception as exc:  # noqa: BLE001 - the policy decides
            self._on_failure(name, port_name, datum, exc)
            if self.policy.mode == PROPAGATE:
                raise
        else:
            if self._half_open and name in self._half_open:
                self._close(name)

    def deliver_batch(
        self,
        consumer: "ProcessingComponent",
        port_name: str,
        datums: List[Datum],
        hub: Optional["ObservabilityHub"],
    ) -> None:
        """Deliver a batch under the supervision policy, datum by datum.

        Batched dispatch must not coarsen the failure contract: the
        breaker admits, records, and isolates *per delivery*, so a
        poisoned datum in the middle of a batch affects only itself and
        a half-open probe still admits exactly one datum at a time.
        The batch fast path is therefore only taken while no supervisor
        is installed -- with one, batching amortises route resolution
        but delivery stays per datum.
        """
        deliver = self.deliver
        for datum in datums:
            deliver(consumer, port_name, datum, hub)

    def _admit(self, name: str) -> bool:
        """Whether routing may deliver to ``name`` right now."""
        breaker = self._breakers.get(name)
        if breaker is None or breaker.state == CLOSED:
            return True
        if breaker.state == OPEN:
            if (
                self._time() - breaker.opened_at
                >= self.policy.half_open_after_s
            ):
                breaker.state = HALF_OPEN
                self._half_open.add(name)
                self._set_health_gauge(name, HALF_OPEN)
                self._emit(HALF_OPEN, name, None)
                return True  # this delivery is the recovery probe
            return False
        return True  # HALF_OPEN: admit further probes

    # -- failure handling ---------------------------------------------------

    def _on_failure(
        self, name: str, port: str, datum: Datum, exc: BaseException
    ) -> None:
        now = self._time()
        self._seq += 1
        record = FailureRecord(
            component=name,
            port=port,
            kind=datum.kind,
            time_s=now,
            seq=self._seq,
            error_type=type(exc).__name__,
            message=str(exc),
            origin=_origin_of(exc),
        )
        self._records.append(record)
        self._failure_counts[name] = self._failure_counts.get(name, 0) + 1
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = _Breaker()
        times = breaker.failure_times
        times.append(now)
        window = self.policy.window_s
        while times and now - times[0] > window:
            times.popleft()
        registry = self._metrics_registry()
        if registry is not None:
            registry.counter("supervised_failures", component=name).inc()
        self._emit("failure", name, record)
        if self.policy.mode != QUARANTINE:
            return
        if breaker.state == HALF_OPEN:
            # The recovery probe itself failed: straight back to open.
            self._half_open.discard(name)
            self._trip(breaker, name, now)
        elif (
            breaker.state == CLOSED
            and len(times) >= self.policy.failure_threshold
        ):
            self._trip(breaker, name, now)

    def _trip(self, breaker: _Breaker, name: str, now: float) -> None:
        breaker.state = OPEN
        breaker.opened_at = now
        breaker.trips += 1
        breaker.failure_times.clear()
        registry = self._metrics_registry()
        if registry is not None:
            registry.counter("quarantine_trips", component=name).inc()
        self._set_health_gauge(name, OPEN)
        self._emit(OPEN, name, None)

    def _close(self, name: str) -> None:
        self._half_open.discard(name)
        breaker = self._breakers.get(name)
        if breaker is not None:
            breaker.state = CLOSED
            breaker.failure_times.clear()
        self._set_health_gauge(name, CLOSED)
        self._emit(CLOSED, name, None)

    # -- manual overrides (the PSL-style adaptation surface) ----------------

    def quarantine(self, name: str) -> None:
        """Force a component ``open`` (operator/application override)."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = _Breaker()
        self._half_open.discard(name)
        self._trip(breaker, name, self._time())

    def restore(self, name: str) -> None:
        """Force a component ``closed``, clearing its failure window."""
        self._close(name)

    # -- metrics ------------------------------------------------------------

    def _metrics_registry(self):
        graph = self._graph
        if graph is None:
            return None
        hub = graph.instrumentation
        return hub.registry if hub is not None else None

    def _set_health_gauge(self, name: str, state: str) -> None:
        registry = self._metrics_registry()
        if registry is not None:
            registry.gauge("component_health", component=name).set(
                _HEALTH_GAUGE[state]
            )

    # -- listeners ----------------------------------------------------------

    def add_listener(
        self, listener: SupervisionListener
    ) -> Callable[[], None]:
        """Subscribe to supervision events; returns an unsubscriber.

        Events: ``("failure", component, record)`` per caught failure,
        and ``("open" | "half-open" | "closed", component, None)`` on
        breaker transitions.  Listeners run synchronously inside the
        delivery that caused the event; they may manipulate the graph
        (the routing loop tolerates reentrant mutation) but must not
        raise.
        """
        self._listeners.append(listener)

        def _remove() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return _remove

    def _emit(
        self, event: str, name: str, record: Optional[FailureRecord]
    ) -> None:
        for listener in tuple(self._listeners):
            listener(event, name, record)

    # -- inspection ---------------------------------------------------------

    def health(self, name: str) -> str:
        """``closed`` / ``open`` / ``half-open`` for one component.

        Components that never failed are ``closed``; the healthy state
        needs no bookkeeping.
        """
        breaker = self._breakers.get(name)
        return breaker.state if breaker is not None else CLOSED

    def health_states(self) -> Dict[str, str]:
        """Health of every component the supervisor has seen fail."""
        return {
            name: breaker.state
            for name, breaker in sorted(self._breakers.items())
        }

    def quarantined(self) -> List[str]:
        """Names currently skipped by routing (state ``open``)."""
        return sorted(
            name
            for name, breaker in self._breakers.items()
            if breaker.state == OPEN
        )

    def failure_count(self, name: str) -> int:
        """Total failures recorded for one component (all time)."""
        return self._failure_counts.get(name, 0)

    def skipped_count(self, name: str) -> int:
        """Deliveries withheld from a quarantined component."""
        return self._skipped_counts.get(name, 0)

    def failure_records(
        self, name: Optional[str] = None
    ) -> List[FailureRecord]:
        """The bounded failure ring, optionally for one component."""
        if name is None:
            return list(self._records)
        return [r for r in self._records if r.component == name]

    def snapshot(self) -> Dict[str, Any]:
        """Structured state for reports and ``infrastructure_snapshot``."""
        return {
            "policy": {
                "mode": self.policy.mode,
                "failure_threshold": self.policy.failure_threshold,
                "window_s": self.policy.window_s,
                "half_open_after_s": self.policy.half_open_after_s,
            },
            "components": {
                name: {
                    "health": breaker.state,
                    "failures": self._failure_counts.get(name, 0),
                    "skipped": self._skipped_counts.get(name, 0),
                    "trips": breaker.trips,
                }
                for name, breaker in sorted(self._breakers.items())
            },
            "records": [r.as_dict() for r in self._records],
        }

    # -- durability ---------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Any]:
        """Full breaker/record state for the durability seam."""
        return {
            "seq": self._seq,
            "breakers": {
                name: {
                    "state": breaker.state,
                    "failure_times": list(breaker.failure_times),
                    "opened_at": breaker.opened_at,
                    "trips": breaker.trips,
                }
                for name, breaker in self._breakers.items()
            },
            "half_open": sorted(self._half_open),
            "failure_counts": dict(self._failure_counts),
            "skipped_counts": dict(self._skipped_counts),
            "records": [r.as_dict() for r in self._records],
        }

    def state_restore(self, state: Dict[str, Any]) -> None:
        """Rebuild breakers, counters, and the failure ring."""
        self._seq = state["seq"]
        self._breakers = {}
        for name, fields in state["breakers"].items():
            breaker = _Breaker()
            breaker.state = fields["state"]
            breaker.failure_times = deque(fields["failure_times"])
            breaker.opened_at = fields["opened_at"]
            breaker.trips = fields["trips"]
            self._breakers[name] = breaker
        self._half_open = set(state["half_open"])
        self._failure_counts = dict(state["failure_counts"])
        self._skipped_counts = dict(state["skipped_counts"])
        self._records = deque(
            (FailureRecord(**fields) for fields in state["records"]),
            maxlen=self.policy.max_records,
        )

    def reset(self) -> None:
        """Forget all failure history and breaker state."""
        self._breakers.clear()
        self._records.clear()
        self._failure_counts.clear()
        self._skipped_counts.clear()
        self._half_open.clear()
        self._seq = 0

    def __repr__(self) -> str:
        return (
            f"Supervisor(mode={self.policy.mode!r},"
            f" quarantined={self.quarantined()})"
        )
