"""Runtime observability: per-component metrics and flow tracing.

The paper's translucency stack reifies structure (PSL tree), channels
(PCL + data trees) and the provider surface; this package adds the
*runtime* rung -- what the process actually did.  Three modules:

* :mod:`repro.observability.metrics` -- counters, gauges, latency
  histograms; clock-injected, with a zero-cost null registry as the
  disabled default;
* :mod:`repro.observability.tracing` -- :class:`FlowTrace`, the ordered
  component path (with timestamps) a datum traversed, carried on the
  datum itself;
* :mod:`repro.observability.instrumentation` -- the
  :class:`ObservabilityHub` the processing graph consults, plus the
  :class:`TracingFeature` / :class:`ChannelTracingFeature` entry points
  through the paper's own Feature mechanism.

Enable per middleware with ``PerPos.enable_observability()``; everything
stays off (one ``is None`` check per event) by default.
"""

from repro.observability.instrumentation import (
    ChannelTracingFeature,
    ObservabilityHub,
    TracingFeature,
)
from repro.observability.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    default_registry,
    global_state_token,
    merge_component_stats,
    merge_histogram_summaries,
    merge_snapshots,
    reset_global_state,
    set_default_registry,
)
from repro.observability.tracing import (
    TRACE_ATTR,
    FlowTrace,
    TraceHop,
    trace_of,
    with_trace,
)

__all__ = [
    "ChannelTracingFeature",
    "ObservabilityHub",
    "TracingFeature",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "default_registry",
    "global_state_token",
    "merge_component_stats",
    "merge_histogram_summaries",
    "merge_snapshots",
    "reset_global_state",
    "set_default_registry",
    "TRACE_ATTR",
    "FlowTrace",
    "TraceHop",
    "trace_of",
    "with_trace",
]
