"""The ObservabilityHub: per-component metrics + flow tracing for a graph.

The hub is the single instrumentation point the
:class:`~repro.core.graph.ProcessingGraph` consults on its hot path.  It
is installed with ``graph.set_instrumentation(hub)`` (or, one level up,
``PerPos.enable_observability()``); while no hub is installed the graph
pays exactly one ``is None`` check per event, which is what keeps the
disabled default within the overhead budget measured by
``benchmarks/bench_overhead_ablation.py``.

Per event the hub records:

* ``items_out{component=...}`` -- datums dispatched by a component;
* ``items_in{component=...}`` -- datums delivered into a component;
* ``items_dropped{component=...}`` -- datums a Component Feature vetoed;
* ``errors{component=...}`` -- exceptions escaping ``receive``;
* ``hop_latency_s{component=...}`` -- processing time per delivery;
* ``graph_components`` / ``graph_connections`` /
  ``graph_topology_version`` gauges on topology change.

With ``tracing=True`` (the default) the hub also maintains flow traces:
each dispatched datum carries a :class:`~repro.observability.tracing
.FlowTrace` extended with the producing component.  Because delivery is
synchronous, the hub keeps a stack of "the trace of the datum currently
being processed"; whatever a component produces while processing input X
inherits X's trace.  Datums produced outside any delivery (sources, clock
callbacks) start fresh traces.

Two feature-mechanism entry points complete the surface:
:class:`TracingFeature` (a Component Feature logging a component's
in/out events) and :class:`ChannelTracingFeature` (a Channel Feature
collecting the flow traces behind a channel's outputs) -- observability
installable through the paper's own extension seams.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.channel import ChannelFeature
from repro.core.data import Datum
from repro.core.datatree import DataTree
from repro.core.features import ComponentFeature
from repro.observability.metrics import (
    MetricsRegistry,
    default_registry,
)
from repro.observability.tracing import (
    FlowTrace,
    TraceHop,
    trace_of,
    with_trace,
)


class ObservabilityHub:
    """Records runtime behaviour of one processing graph.

    Parameters
    ----------
    registry:
        Metric store; a fresh :class:`MetricsRegistry` by default.
    time_fn:
        Clock for hop timestamps and latencies.  Inject
        ``lambda: clock.now`` for deterministic simulation-time traces
        (what :meth:`~repro.core.middleware.PerPos.enable_observability`
        does); defaults to the registry's ``time_fn``.
    tracing:
        Whether to attach/extend flow traces (costs one datum copy per
        hop); metrics are always recorded while the hub is installed.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        time_fn: Optional[Callable[[], float]] = None,
        tracing: bool = True,
    ) -> None:
        self.registry = registry or MetricsRegistry(time_fn=time_fn)
        self._time = time_fn or self.registry.time_fn
        self.tracing = tracing
        # Traces of datums currently being processed (delivery is
        # synchronous, so this is a proper nesting stack).
        self._context: List[Optional[FlowTrace]] = []
        # Per-component instrument memos: registry lookups build a
        # sorted label key per call, which is pure overhead on the
        # graph's per-datum hot path.  Instrument identity survives
        # ``registry.reset()``, so these never need invalidation.
        self._out_counters: Dict[str, Any] = {}
        self._in_instruments: Dict[str, Tuple[Any, Any, Any]] = {}
        # Ingestion-side memos (scale-out runtime): per-(target, verdict)
        # offer counters and per-target depth/drop gauges.
        self._ingestion_counters: Dict[Tuple[str, str], Any] = {}
        self._ingestion_gauges: Dict[str, Tuple[Any, Any]] = {}
        # Gateway-edge memos: per-(adapter, outcome) counters plus the
        # dead-letter-queue gauge triple.
        self._gateway_counters: Dict[Tuple[str, str], Any] = {}
        self._dlq_gauges: Optional[Tuple[Any, Any, Any]] = None
        # Scenario / closed-loop control memos (repro.scenario).
        self._scenario_gauges: Optional[Tuple[Any, Any, Any]] = None
        self._geofence_counters: Dict[str, Any] = {}
        self._controller_counters: Dict[Tuple[str, str], Any] = {}
        self._ledger_gauge: Any = None
        # Plan-compilation memo (graph compiler seam).
        self._plan_invalidation_counter: Any = None

    # -- graph hooks (hot path) --------------------------------------------

    def datum_dispatched(self, producer: str, datum: Datum) -> Datum:
        """A component handed ``datum`` to the graph for routing."""
        counter = self._out_counters.get(producer)
        if counter is None:
            counter = self._out_counters[producer] = self.registry.counter(
                "items_out", component=producer
            )
        counter.inc()
        if self.tracing:
            hop = TraceHop(producer, self._time(), datum.kind)
            parent = self._context[-1] if self._context else None
            trace = (
                parent.extended(hop)
                if parent is not None
                else FlowTrace((hop,))
            )
            datum = with_trace(datum, trace)
        return datum

    def deliver(self, consumer: Any, port: str, datum: Datum) -> None:
        """Deliver ``datum`` into ``consumer`` under instrumentation."""
        name = consumer.name
        instruments = self._in_instruments.get(name)
        if instruments is None:
            registry = self.registry
            instruments = self._in_instruments[name] = (
                registry.counter("items_in", component=name),
                registry.counter("errors", component=name),
                registry.histogram("hop_latency_s", component=name),
            )
        items_in, errors, latency = instruments
        items_in.inc()
        self._context.append(trace_of(datum) if self.tracing else None)
        start = self._time()
        try:
            consumer.receive(port, datum)
        except Exception:
            errors.inc()
            raise
        finally:
            self._context.pop()
            latency.observe(self._time() - start)

    def deliver_batch(
        self, consumer: Any, port: str, datums: List[Datum]
    ) -> None:
        """Deliver a batch into ``consumer`` under instrumentation.

        With tracing enabled this falls back to per-datum
        :meth:`deliver` so every datum keeps its own trace context --
        batching must never coarsen flow traces.  With tracing off the
        whole batch crosses ``consumer.receive_batch`` in one call:
        ``items_in`` still counts every datum, while ``hop_latency_s``
        records one observation for the whole batch (per-datum hop
        times are meaningless inside a fused batch).
        """
        if self.tracing:
            deliver = self.deliver
            for datum in datums:
                deliver(consumer, port, datum)
            return
        name = consumer.name
        instruments = self._in_instruments.get(name)
        if instruments is None:
            registry = self.registry
            instruments = self._in_instruments[name] = (
                registry.counter("items_in", component=name),
                registry.counter("errors", component=name),
                registry.histogram("hop_latency_s", component=name),
            )
        items_in, errors, latency = instruments
        items_in.inc(len(datums))
        start = self._time()
        try:
            consumer.receive_batch(port, datums)
        except Exception:
            errors.inc()
            raise
        finally:
            latency.observe(self._time() - start)

    # -- ingestion hooks (scale-out runtime) -------------------------------

    def ingestion_event(self, target: str, verdict: str) -> None:
        """One queue offer settled for ``target`` (accepted/dropped/...)."""
        counters = self._ingestion_counters
        counter = counters.get((target, verdict))
        if counter is None:
            counter = counters[(target, verdict)] = self.registry.counter(
                "queue_offers", target=target, verdict=verdict
            )
        counter.inc()

    def ingestion_depth(
        self, target: str, depth: int, dropped: int
    ) -> None:
        """Current queue depth and cumulative drops for ``target``."""
        gauges = self._ingestion_gauges
        pair = gauges.get(target)
        if pair is None:
            registry = self.registry
            pair = gauges[target] = (
                registry.gauge("queue_depth", target=target),
                registry.gauge("queue_dropped_total", target=target),
            )
        pair[0].set(depth)
        pair[1].set(dropped)

    def gateway_event(self, adapter: str, outcome: str) -> None:
        """One gateway pipeline verdict settled for ``adapter``.

        ``outcome`` is one of ``accepted`` / ``rejected`` / ``shed`` /
        ``replayed``; each becomes its own ``gateway_<outcome>`` counter
        labelled by adapter, which is how per-adapter accept/reject
        rates surface (ISSUE 8 instrument names).
        """
        counters = self._gateway_counters
        counter = counters.get((adapter, outcome))
        if counter is None:
            counter = counters[(adapter, outcome)] = self.registry.counter(
                f"gateway_{outcome}", adapter=adapter
            )
        counter.inc()

    def dlq_state(self, depth: int, replayed: int, exhausted: int) -> None:
        """Current dead-letter depth and cumulative replay outcomes."""
        gauges = self._dlq_gauges
        if gauges is None:
            registry = self.registry
            gauges = self._dlq_gauges = (
                registry.gauge("dlq_depth"),
                registry.gauge("dlq_replayed"),
                registry.gauge("dlq_exhausted"),
            )
        gauges[0].set(depth)
        gauges[1].set(replayed)
        gauges[2].set(exhausted)

    def scheduler_round(self, drained: int) -> None:
        """One scheduler round drained ``drained`` datums into the graph."""
        self.registry.counter("scheduler_rounds").inc()
        if drained:
            self.registry.counter("scheduler_drained").inc(drained)

    def durability_snapshot(self, n_bytes: int) -> None:
        """One full state snapshot persisted (``n_bytes`` serialized)."""
        self.registry.counter("durability_snapshots").inc()
        self.registry.gauge("snapshot_bytes").set(n_bytes)

    def durability_restore(self, replayed: int) -> None:
        """One crash-recovery restore replayed ``replayed`` journal entries."""
        self.registry.counter("durability_restores").inc()
        if replayed:
            self.registry.counter("restore_replayed").inc(replayed)

    def durability_migration(self, pause_s: float) -> None:
        """One warm lane handoff completed with ``pause_s`` of lane pause."""
        self.registry.counter("migrations_completed").inc()
        self.registry.histogram("handoff_pause_ticks").observe(pause_s)

    # -- scenario + closed-loop control (repro.scenario) --------------------

    def scenario_tick(self, devices: int, events: int) -> None:
        """One simulated city tick: population size and emissions."""
        gauges = self._scenario_gauges
        if gauges is None:
            registry = self.registry
            gauges = self._scenario_gauges = (
                registry.gauge("scenario_devices"),
                registry.counter("scenario_ticks"),
                registry.counter("scenario_events"),
            )
        gauges[0].set(devices)
        gauges[1].inc()
        if events:
            gauges[2].inc(events)

    def geofence_alert(self, rule: str) -> None:
        """One geofence rule raised an alert on the live stream."""
        counters = self._geofence_counters
        counter = counters.get(rule)
        if counter is None:
            counter = counters[rule] = self.registry.counter(
                "geofence_alerts", rule=rule
            )
        counter.inc()

    def controller_decision(self, controller: str, action: str) -> None:
        """One closed-loop controller actuated an adaptation seam."""
        counters = self._controller_counters
        counter = counters.get((controller, action))
        if counter is None:
            counter = counters[(controller, action)] = self.registry.counter(
                "controller_decisions", controller=controller, action=action
            )
        counter.inc()

    def control_ledger_depth(self, depth: int) -> None:
        """Current depth of the bounded controller decision ledger."""
        gauge = self._ledger_gauge
        if gauge is None:
            gauge = self._ledger_gauge = self.registry.gauge(
                "control_ledger_depth"
            )
        gauge.set(depth)

    def datum_dropped(
        self, component: Any, port: str, datum: Datum, feature_name: str
    ) -> None:
        """A Component Feature vetoed a datum on its way in."""
        self.registry.counter(
            "items_dropped", component=component.name
        ).inc()
        self.registry.counter(
            "feature_drops", feature=feature_name
        ).inc()

    def channel_feature_error(self, channel_id: str, feature_name: str) -> None:
        """A Channel Feature's ``apply`` raised during output delivery."""
        self.registry.counter(
            "channel_feature_errors", channel=channel_id, feature=feature_name
        ).inc()

    def topology_changed(
        self,
        n_components: int,
        n_connections: int,
        version: Optional[int] = None,
    ) -> None:
        self.registry.gauge("graph_components").set(n_components)
        self.registry.gauge("graph_connections").set(n_connections)
        if version is not None:
            self.registry.gauge("graph_topology_version").set(version)

    # -- plan compilation (graph compiler seam) -----------------------------

    def plan_invalidated(self) -> None:
        """The graph dropped its compiled dispatch plan."""
        counter = self._plan_invalidation_counter
        if counter is None:
            counter = self._plan_invalidation_counter = self.registry.counter(
                "graph_plan_invalidations"
            )
        counter.inc()

    def plan_compiled(self, n_chains: int, fused_components: int) -> None:
        """The graph (re)compiled its dispatch plan.

        ``graph_compiled_chains`` / ``graph_fused_components`` gauges
        describe the live plan; the companion
        ``graph_fused_dispatches`` counter is advanced by the fused
        chains themselves as they execute.
        """
        self.registry.gauge("graph_compiled_chains").set(n_chains)
        self.registry.gauge("graph_fused_components").set(fused_components)

    # -- queries -----------------------------------------------------------

    def component_stats(
        self, name: Optional[str] = None
    ) -> Dict[str, Any]:
        """Per-component roll-up of every recorded series.

        With ``name`` the stats of one component; without, a mapping of
        component name to stats.  Latency appears as the histogram
        summary under ``"latency"``.
        """
        stats: Dict[str, Dict[str, Any]] = {}
        for kind, series, labels, instrument in self.registry.series():
            component = labels.get("component")
            if component is None:
                continue
            entry = stats.setdefault(component, {})
            if kind == "histogram" and series == "hop_latency_s":
                entry["latency"] = instrument.summary()
            elif kind == "counter":
                entry[series] = instrument.value
            elif kind == "gauge":
                entry[series] = instrument.value
        if name is not None:
            return stats.get(name, {})
        return stats

    def snapshot(self) -> Dict[str, Any]:
        """Full metrics dump plus the per-component roll-up."""
        return {
            "enabled": True,
            "tracing": self.tracing,
            "metrics": self.registry.snapshot(),
            "components": self.component_stats(),
        }

    def reset(self) -> None:
        """Zero all metrics (traces on in-flight datums are untouched)."""
        self.registry.reset()


class TracingFeature(ComponentFeature):
    """A Component Feature logging its host's data events.

    Installable through the paper's per-component extension seam
    (:meth:`ProcessStructureLayer.attach_feature`), independent of any
    hub: it keeps a bounded in-memory event log -- ``(time, direction,
    kind, producer)`` -- and mirrors event counts into ``registry`` (the
    process-wide default registry unless one is given, so attaching it
    is free while observability is globally disabled).

    Its public methods (``events``, ``last_event``, ``clear``) surface
    through the component's reflective API like any feature methods.
    """

    name = "Tracing"

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        keep_last: int = 256,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__()
        self._registry = registry
        self._keep_last = keep_last
        self._time = time_fn
        self._events: List[Tuple[float, str, str, str]] = []

    def _record(self, direction: str, datum: Datum) -> None:
        registry = (
            self._registry if self._registry is not None else default_registry()
        )
        registry.counter(
            "feature_events",
            component=self.component.name,
            direction=direction,
        ).inc()
        stamp = self._time() if self._time is not None else datum.timestamp
        self._events.append((stamp, direction, datum.kind, datum.producer))
        if len(self._events) > self._keep_last:
            del self._events[: len(self._events) - self._keep_last]

    def consume(self, datum: Datum) -> Optional[Datum]:
        self._record("in", datum)
        return datum

    def produce(self, datum: Datum) -> Optional[Datum]:
        self._record("out", datum)
        return datum

    # -- reflective surface ------------------------------------------------

    def events(self) -> List[Tuple[float, str, str, str]]:
        """The logged ``(time, direction, kind, producer)`` events."""
        return list(self._events)

    def last_event(self) -> Optional[Tuple[float, str, str, str]]:
        return self._events[-1] if self._events else None

    def clear(self) -> None:
        self._events.clear()


class ChannelTracingFeature(ChannelFeature):
    """A Channel Feature collecting flow traces behind channel outputs.

    Every time the channel delivers an output whose datum carries a
    :class:`FlowTrace`, the trace is kept (bounded).  ``paths()`` then
    answers "which concrete component routes fed this channel lately" --
    the runtime complement of the channel's static member list.
    """

    name = "ChannelTracing"

    def __init__(self, keep_last: int = 64) -> None:
        super().__init__()
        self._keep_last = keep_last
        self._traces: List[FlowTrace] = []

    def apply(self, data_tree: DataTree) -> None:
        trace = trace_of(data_tree.root.datum)
        if trace is None:
            return
        self._traces.append(trace)
        if len(self._traces) > self._keep_last:
            del self._traces[: len(self._traces) - self._keep_last]

    # -- reflective surface ------------------------------------------------

    def traces(self) -> List[FlowTrace]:
        return list(self._traces)

    def last_trace(self) -> Optional[FlowTrace]:
        return self._traces[-1] if self._traces else None

    def paths(self) -> List[List[str]]:
        """Distinct component paths observed, in first-seen order."""
        seen: List[List[str]] = []
        for trace in self._traces:
            path = trace.path
            if path not in seen:
                seen.append(path)
        return seen
