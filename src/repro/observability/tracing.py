"""Flow traces: the runtime twin of the PCL data tree.

A :class:`~repro.core.datatree.DataTree` answers "which *elements*
contributed to this channel output" in logical time.  A
:class:`FlowTrace` answers the runtime question one layer up: "which
*components*, in order and at what clock times, did this datum actually
traverse on its way to the application".  Where the data tree is scoped
to one channel, a flow trace spans the whole graph -- across merge
points -- because it rides on the datum itself.

The trace is carried in ``Datum.attributes`` under :data:`TRACE_ATTR`.
Datums are immutable, so extension copies the envelope; that cost is
only paid when tracing is enabled (see
:class:`~repro.observability.instrumentation.ObservabilityHub`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.data import Datum

#: Attribute key under which a datum carries its flow trace.
TRACE_ATTR = "perpos.trace"


@dataclass(frozen=True)
class TraceHop:
    """One traversal step: a component produced/forwarded the datum."""

    component: str
    timestamp: float
    kind: str = ""

    def describe(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "timestamp": self.timestamp,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class FlowTrace:
    """An ordered, immutable sequence of hops, source first."""

    hops: Tuple[TraceHop, ...] = ()

    def extended(self, hop: TraceHop) -> "FlowTrace":
        """A new trace with ``hop`` appended."""
        return FlowTrace(self.hops + (hop,))

    @property
    def path(self) -> List[str]:
        """Component names in traversal order."""
        return [hop.component for hop in self.hops]

    @property
    def source(self) -> Optional[str]:
        return self.hops[0].component if self.hops else None

    @property
    def duration(self) -> float:
        """Clock time between the first and last hop."""
        if len(self.hops) < 2:
            return 0.0
        return self.hops[-1].timestamp - self.hops[0].timestamp

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self):
        return iter(self.hops)

    def describe(self) -> List[Dict[str, Any]]:
        return [hop.describe() for hop in self.hops]

    def render(self) -> str:
        """One-line rendering: ``src[t=0.0] -> parser[t=0.0] -> ...``."""
        return " -> ".join(
            f"{hop.component}[t={hop.timestamp:g}]" for hop in self.hops
        )


def trace_of(datum: Optional[Datum]) -> Optional[FlowTrace]:
    """The flow trace a datum carries, or None if untraced."""
    if datum is None:
        return None
    trace = datum.attribute(TRACE_ATTR)
    return trace if isinstance(trace, FlowTrace) else None


def with_trace(datum: Datum, trace: FlowTrace) -> Datum:
    """Copy of ``datum`` carrying ``trace``."""
    return datum.annotated(**{TRACE_ATTR: trace})
