"""Metric instruments for the runtime observability layer.

The paper's translucency story (§1 R2, §2.1-2.3) reifies the *structure*
of the positioning process; this module reifies its *behaviour*: how many
data items each component consumed and produced, how long each hop took,
how often things failed.  Everything is pure stdlib and clock-injected --
a :class:`MetricsRegistry` built over the
:class:`~repro.clock.SimulationClock` records fully deterministic
latencies, which is what keeps the observability tests reproducible.

Two registry flavours exist:

* :class:`MetricsRegistry` -- the real thing: lazily-created counters,
  gauges and histograms keyed by ``(name, labels)``.
* :class:`NullMetricsRegistry` -- the disabled default: every lookup
  returns a shared no-op instrument, so instrumented code pays one
  attribute call and nothing else.

A process-wide *default registry* (:func:`default_registry` /
:func:`set_default_registry`) lets loosely-coupled instrumentation (for
example :class:`~repro.observability.instrumentation.TracingFeature`)
record without a hub reference.  It starts out as the shared null
registry; tests that swap it in must swap it back -- the tier-1 suite has
a guard fixture that fails any test leaking global observability state
(see ``tests/conftest.py``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, LabelKey]

#: Default latency bucket bounds (seconds): microseconds to ~1 minute.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    60.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (e.g. current graph size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A latency/size distribution with fixed bucket bounds.

    Keeps count/sum/min/max plus cumulative bucket counts, which is
    enough for mean and coarse quantiles without storing samples.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing the q-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative += self.bucket_counts[index]
            if cumulative >= target:
                return bound
        return self.max if self.max is not None else self.buckets[-1]

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class _Timer:
    """Context manager recording elapsed ``time_fn`` into a histogram."""

    __slots__ = ("_histogram", "_time_fn", "_start")

    def __init__(
        self, histogram: Histogram, time_fn: Callable[[], float]
    ) -> None:
        self._histogram = histogram
        self._time_fn = time_fn

    def __enter__(self) -> "_Timer":
        self._start = self._time_fn()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(self._time_fn() - self._start)


class MetricsRegistry:
    """Lazily-created, label-keyed metric instruments.

    ``time_fn`` is the injected clock for :meth:`timer`; pass
    ``lambda: clock.now`` to drive latencies from the simulation clock
    (deterministic) or leave the ``time.monotonic`` default for
    wall-clock measurement.
    """

    #: Whether instruments returned by this registry record anything.
    enabled: bool = True

    def __init__(self, time_fn: Optional[Callable[[], float]] = None) -> None:
        self.time_fn: Callable[[], float] = time_fn or time.monotonic
        self._counters: Dict[SeriesKey, Counter] = {}
        self._gauges: Dict[SeriesKey, Gauge] = {}
        self._histograms: Dict[SeriesKey, Histogram] = {}

    # -- instrument lookup -------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    def timer(self, name: str, **labels: Any) -> _Timer:
        """``with registry.timer("step"):`` records the block's latency."""
        return _Timer(self.histogram(name, **labels), self.time_fn)

    # -- inspection --------------------------------------------------------

    def series(
        self,
    ) -> Iterator[Tuple[str, str, Dict[str, str], Any]]:
        """Yield ``(kind, name, labels, instrument)`` for every series."""
        for (name, labels), instrument in self._counters.items():
            yield "counter", name, dict(labels), instrument
        for (name, labels), instrument in self._gauges.items():
            yield "gauge", name, dict(labels), instrument
        for (name, labels), instrument in self._histograms.items():
            yield "histogram", name, dict(labels), instrument

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time dump: ``{"counters": {...}, "gauges": ...}``."""
        return {
            "counters": {
                _series_name(name, labels): c.value
                for (name, labels), c in sorted(self._counters.items())
            },
            "gauges": {
                _series_name(name, labels): g.value
                for (name, labels), g in sorted(self._gauges.items())
            },
            "histograms": {
                _series_name(name, labels): h.summary()
                for (name, labels), h in sorted(self._histograms.items())
            },
        }

    def fingerprint(self) -> str:
        """Stable digest of current state; used by the test-state guard."""
        return repr(self.snapshot())

    def reset(self) -> None:
        """Zero every instrument (series identities are kept)."""
        for group in (self._counters, self._gauges, self._histograms):
            for instrument in group.values():
                instrument.reset()

    def clear(self) -> None:
        """Drop every series entirely."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """The zero-cost-when-disabled registry: every instrument is a no-op.

    All lookups return shared singleton instruments whose recording
    methods do nothing, so disabled instrumentation costs one method
    call and no allocation.
    """

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()
    _TIMER = _NullTimer()

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._GAUGE

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._HISTOGRAM

    def timer(self, name: str, **labels: Any) -> "_NullTimer":  # type: ignore[override]
        return self._TIMER

    def series(self) -> Iterator[Tuple[str, str, Dict[str, str], Any]]:
        return iter(())

    def fingerprint(self) -> str:
        return "<null>"


#: Shared disabled registry; also the initial process-wide default.
NULL_REGISTRY = NullMetricsRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def default_registry() -> MetricsRegistry:
    """The process-wide registry for hub-less instrumentation."""
    return _default_registry


def set_default_registry(
    registry: Optional[MetricsRegistry],
) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous registry.

    Passing ``None`` restores the shared null registry.  Anything that
    swaps the default (tests included) is responsible for restoring it;
    the tier-1 conftest guard fails tests that leak a swapped default.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry if registry is not None else NULL_REGISTRY
    return previous


def global_state_token() -> Tuple[int, str]:
    """Opaque token identifying global observability state.

    Equal tokens before and after a block mean the block neither swapped
    the default registry nor left recordings behind in it.
    """
    return (id(_default_registry), _default_registry.fingerprint())


def reset_global_state() -> None:
    """Restore the pristine global default (null registry, empty)."""
    global _default_registry
    if isinstance(_default_registry, MetricsRegistry):
        _default_registry.clear()
    _default_registry = NULL_REGISTRY


# -- cross-registry merging (sharded runtime) --------------------------------


def merge_histogram_summaries(
    summaries: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Combine :meth:`Histogram.summary` dicts from independent registries.

    Count and sum add exactly; min/max take the extremes; the merged
    mean is recomputed from the merged sum/count (never averaged from
    per-shard means, which would weight shards equally regardless of
    traffic).
    """
    count = sum(s.get("count", 0) for s in summaries)
    total = sum(s.get("sum", 0.0) for s in summaries)
    mins = [s["min"] for s in summaries if s.get("min") is not None]
    maxes = [s["max"] for s in summaries if s.get("max") is not None]
    return {
        "count": count,
        "sum": total,
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
        "mean": total / count if count else 0.0,
    }


def merge_snapshots(
    snapshots: List[Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Merge :meth:`MetricsRegistry.snapshot` dumps from N registries.

    The sharded runtime gives every shard its own registry (workers may
    not even share an interpreter); this rolls their snapshots up into
    one surface with the same shape, so report/hub consumers are
    indifferent to sharding.  Counters and histograms merge losslessly.
    Gauges *sum*, which is correct for the additive gauges the runtime
    exports (queue depths, drop totals, graph sizes); order-sensitive
    gauges (e.g. ``graph_topology_version``) should be read per shard
    where the distinction matters.
    """
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, List[Dict[str, Any]]] = {}
    for snapshot in snapshots:
        for series, value in snapshot.get("counters", {}).items():
            counters[series] = counters.get(series, 0) + value
        for series, value in snapshot.get("gauges", {}).items():
            gauges[series] = gauges.get(series, 0) + value
        for series, summary in snapshot.get("histograms", {}).items():
            histograms.setdefault(series, []).append(summary)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            series: merge_histogram_summaries(summaries)
            for series, summaries in sorted(histograms.items())
        },
    }


def merge_component_stats(
    stats_maps: List[Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Merge :meth:`ObservabilityHub.component_stats` maps from N hubs.

    Each shard runs the same graph shape, so per-component series line
    up by name: numeric series (items_in/out, errors, drops) sum, and
    ``latency`` summaries merge via :func:`merge_histogram_summaries`.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    latencies: Dict[str, List[Dict[str, Any]]] = {}
    for stats in stats_maps:
        for component, entry in stats.items():
            slot = merged.setdefault(component, {})
            for series, value in entry.items():
                if series == "latency":
                    latencies.setdefault(component, []).append(value)
                elif isinstance(value, (int, float)):
                    slot[series] = slot.get(series, 0) + value
    for component, summaries in latencies.items():
        merged[component]["latency"] = merge_histogram_summaries(summaries)
    return merged
