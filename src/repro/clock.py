"""Simulation time for the PerPos reproduction.

All sensors, power models and benchmarks run against an explicit clock so
that experiments are deterministic and fast: a simulated hour of tracking
takes milliseconds of wall time.  The clock is deliberately minimal -- a
monotonically non-decreasing float of seconds plus a tiny scheduler for
periodic callbacks (sensor sampling, duty-cycling decisions).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimulationClock:
    """A manually advanced clock with scheduled callbacks.

    Callbacks scheduled via :meth:`call_at` / :meth:`call_every` fire in
    timestamp order while :meth:`advance` or :meth:`run_until` move time
    forward.  Ties are broken by scheduling order, so behaviour is fully
    deterministic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._counter = itertools.count()
        self._queue: List[Tuple[float, int, Callable[[float], None]]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def call_at(self, when: float, callback: Callable[[float], None]) -> None:
        """Schedule ``callback(time)`` at absolute time ``when``.

        Callbacks scheduled in the past fire on the next advance.
        """
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def call_every(
        self,
        period: float,
        callback: Callable[[float], None],
        start: Optional[float] = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` every ``period`` seconds.

        Returns a cancel function.  The first call happens at ``start``
        (default: now + period).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        cancelled = False

        def _tick(now: float) -> None:
            if cancelled:
                return
            callback(now)
            if not cancelled:
                self.call_at(now + period, _tick)

        def _cancel() -> None:
            nonlocal cancelled
            cancelled = True

        first = self._now + period if start is None else start
        self.call_at(first, _tick)
        return _cancel

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds``, firing due callbacks."""
        if seconds < 0:
            raise ValueError("cannot move time backwards")
        self.run_until(self._now + seconds)

    def run_until(self, deadline: float) -> None:
        """Advance to ``deadline``, firing every callback due before it."""
        if deadline < self._now:
            raise ValueError("cannot move time backwards")
        while self._queue and self._queue[0][0] <= deadline:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = max(self._now, when)
            callback(self._now)
        self._now = deadline
