"""In-stream geofence / alerting rules evaluated during dispatch.

The shape follows zmeta's alert rings (SNIPPETS.md, Snippet 3): a rule
watches a live datum stream and raises bounded, inspectable alert
records when a tracked target crosses a named boundary -- here a circle
in city grid metres.  :class:`GeofenceComponent` sits on the dispatch
path inside the scenario graph, so the rules run *in-stream* under
whatever engine (single, sharded, in-process or multiprocessing)
carries the traffic, and alerts double as first-class ``geo-alert``
datums routed to an alert sink -- countable through ``sink_outputs()``
on any execution mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum

from .city import ALERT_KIND, GPS_KIND, SENSOR_KINDS

#: Transition triggers a rule may watch for.
ENTER = "enter"
EXIT = "exit"
BOTH = "both"


@dataclass(frozen=True)
class GeofenceRule:
    """A named circular fence in grid metres with a transition trigger."""

    name: str
    x_m: float
    y_m: float
    radius_m: float
    trigger: str = ENTER

    def __post_init__(self) -> None:
        if self.trigger not in (ENTER, EXIT, BOTH):
            raise ValueError(f"unknown trigger {self.trigger!r}")
        if self.radius_m <= 0:
            raise ValueError("radius_m must be positive")

    def contains(self, x_m: float, y_m: float) -> bool:
        dx = x_m - self.x_m
        dy = y_m - self.y_m
        return dx * dx + dy * dy <= self.radius_m * self.radius_m


class GeofenceComponent(ProcessingComponent):
    """Evaluates geofence rules on every GPS datum flowing through it.

    Non-GPS datums pass through untouched.  For each GPS fix the
    component tracks per-(target, rule) inside/outside state; a
    transition matching the rule's trigger appends a record to a bounded
    alert ring (newest last) and produces a ``geo-alert`` datum whose
    payload is ``(rule, target, transition, tick)``.  The ring is the
    inspection surface; the datums are the application surface.
    """

    def __init__(
        self,
        rules: Tuple[GeofenceRule, ...] = (),
        name: str = "geofence",
        ring_limit: int = 256,
    ) -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", SENSOR_KINDS),),
            output=OutputPort(SENSOR_KINDS + (ALERT_KIND,)),
        )
        self.rules = tuple(rules)
        self._ring_limit = ring_limit
        self._inside: Dict[Tuple[str, str], bool] = {}
        self._alerts: List[Dict[str, Any]] = []
        self.alerts_raised = 0

    def process(self, port_name: str, datum: Datum) -> None:
        if datum.kind == GPS_KIND and self.rules:
            target = datum.attributes.get("target", "")
            x_m, y_m = datum.payload[0], datum.payload[1]
            for rule in self.rules:
                inside = rule.contains(x_m, y_m)
                key = (target, rule.name)
                was_inside = self._inside.get(key, False)
                self._inside[key] = inside
                if inside == was_inside:
                    continue
                transition = ENTER if inside else EXIT
                if rule.trigger != BOTH and rule.trigger != transition:
                    continue
                self._raise_alert(rule, target, transition, datum)
        self.produce(datum)

    def _raise_alert(
        self,
        rule: GeofenceRule,
        target: str,
        transition: str,
        datum: Datum,
    ) -> None:
        tick = datum.attributes.get("tick")
        self.alerts_raised += 1
        self._alerts.append(
            {
                "rule": rule.name,
                "target": target,
                "transition": transition,
                "tick": tick,
                "timestamp": datum.timestamp,
            }
        )
        if len(self._alerts) > self._ring_limit:
            del self._alerts[: len(self._alerts) - self._ring_limit]
        self.produce(
            Datum(
                kind=ALERT_KIND,
                payload=(rule.name, target, transition, tick),
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )

    # -- inspection (PSL reflective surface) ---------------------------------

    def alerts(self) -> List[Dict[str, Any]]:
        """The bounded alert ring, newest last (a copy)."""
        return [dict(record) for record in self._alerts]

    def state_snapshot(self) -> Dict[str, Any]:
        return {
            "inside": {f"{t}|{r}": v for (t, r), v in self._inside.items()},
            "alerts": [dict(record) for record in self._alerts],
            "alerts_raised": self.alerts_raised,
        }

    def state_restore(self, state: Dict[str, Any]) -> None:
        inside = {}
        for key, value in state.get("inside", {}).items():
            target, _, rule = key.rpartition("|")
            inside[(target, rule)] = value
        self._inside = inside
        self._alerts = [dict(record) for record in state.get("alerts", [])]
        self.alerts_raised = state.get("alerts_raised", 0)
