"""The scenario runner: generator -> engine -> controllers, per tick.

One :class:`ScenarioRunner` drives a :class:`CityGenerator` against any
engine flavour -- a :class:`~repro.runtime.engine.PositioningEngine`, a
:class:`~repro.runtime.sharding.ShardedEngine` (either executor), or an
:class:`~repro.gateway.IngestionGateway`-fronted deployment (the
generator's ``wire_payload`` bridge) -- on the simulated clock.  Each
tick it applies churn (track/untrack), submits the tick's emissions,
drains one round, then hands the round's *view* (lane stats, pending
depths, per-shard backlogs, supervisor state) to the
:class:`~repro.scenario.control.ControlLoop`, whose controllers push
decisions back through the adaptation seams.

The runner is the object ``PerPos.enable_scenario`` installs on the
graph, so ``psl.scenario()`` / ``psl.controllers()`` and the report's
``scenario:`` / ``control:`` sections can read a live run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.runtime.queues import DROP_OLDEST

from .city import ALERT_KIND, CityGenerator, ScenarioError
from .control import Actuators, ControlLoop


def build_city_graph(
    rules: tuple = (), ring_limit: int = 256, keep_last: int = 100_000
) -> Any:
    """The scenario's processing graph recipe (module-level: picklable).

    ``city-src -> geofence -> {city-app, city-alerts}``: sensor kinds
    flow to the application sink, ``geo-alert`` datums minted in-stream
    by the geofence land on their own alert sink -- so alert *counts*
    are readable from ``sink_outputs()`` under any execution mode.
    """
    from repro.core.component import ApplicationSink, SourceComponent
    from repro.core.graph import ProcessingGraph

    from .city import SENSOR_KINDS
    from .geofence import GeofenceComponent

    graph = ProcessingGraph()
    source = SourceComponent("city-src", SENSOR_KINDS)
    fence = GeofenceComponent(tuple(rules), ring_limit=ring_limit)
    app = ApplicationSink("city-app", SENSOR_KINDS, keep_last=keep_last)
    alerts = ApplicationSink("city-alerts", (ALERT_KIND,), keep_last=keep_last)
    for component in (source, fence, app, alerts):
        graph.add(component)
    graph.connect("city-src", "geofence", "in")
    graph.connect("geofence", "city-app", "in")
    graph.connect("geofence", "city-alerts", "in")
    return graph


class ScenarioRunner:
    """Drives one city scenario against one engine, closed- or open-loop.

    ``control=None`` is the open-loop baseline: same workload, no
    adaptation.  The engine is duck-typed; the runner detects a sharded
    coordinator by its ``ingestion_lanes`` surface.
    """

    def __init__(
        self,
        generator: CityGenerator,
        engine: Any,
        *,
        control: Optional[ControlLoop] = None,
        supervisor: Optional[Any] = None,
        hub: Optional[Any] = None,
        source: str = "city-src",
        capacity: int = 16,
        policy: str = DROP_OLDEST,
    ) -> None:
        self.generator = generator
        self.engine = engine
        self.control = control
        self.supervisor = supervisor
        self.hub = hub
        self.source = source
        self.capacity = capacity
        self.policy = policy
        self._sharded = hasattr(engine, "ingestion_lanes")
        self._actuators = self._build_actuators()
        self.ticks_run = 0
        self.submitted = 0
        self.drained = 0
        self.verdicts: Dict[str, int] = {}
        self.high_water = 0
        # Lanes untracked by churn take their queue counters with them;
        # fold them into running totals so drop accounting is cumulative.
        self._retired_dropped = 0
        self._retired_rejected = 0
        self._retired_coalesced = 0

    # -- wiring -------------------------------------------------------------

    def _build_actuators(self) -> Actuators:
        migrate = None
        if self._sharded and self.engine.shard_count > 1:
            migrate = self.engine.migrate_target
        set_supervision = None
        if self.supervisor is not None:
            set_supervision = self._swap_policy
        return Actuators(
            set_backpressure=self.engine.set_policy,
            set_gps_threshold=self.generator.set_gps_threshold,
            set_supervision=set_supervision,
            migrate_target=migrate,
        )

    def _swap_policy(self, **changes: Any) -> Any:
        """Replace the supervisor's policy object (Dearle-style: policy
        objects are swapped, never mutated in place)."""
        policy = replace(self.supervisor.policy, **changes)
        self.supervisor.policy = policy
        return policy

    # -- the per-tick view --------------------------------------------------

    def _lane_stats(self) -> Dict[str, Dict[str, Any]]:
        if self._sharded:
            return self.engine.ingestion_lanes()
        return {lane.target_id: lane.stats() for lane in self.engine.lanes()}

    def view(self, tick: int, drained_round: int) -> Dict[str, Any]:
        """Assemble the round's observation for the control loop.

        Controller-visible figures are engine-flavour-independent sums
        (plus per-shard extras only the rebalance controller reads), so
        the same workload yields the same ledger on a single engine and
        an in-process sharded engine.
        """
        lanes = self._lane_stats()
        dropped = self._retired_dropped + sum(
            s.get("dropped_oldest", 0) + s.get("dropped_newest", 0)
            for s in lanes.values()
        )
        rejected = self._retired_rejected + sum(
            s.get("rejected", 0) for s in lanes.values()
        )
        pending = sum(s.get("depth", 0) for s in lanes.values())
        view: Dict[str, Any] = {
            "tick": tick,
            "lanes": lanes,
            "pending": pending,
            "dropped_total": dropped,
            "rejected_total": rejected,
            "drained_round": drained_round,
            "generator": self.generator.snapshot(),
        }
        if self.supervisor is not None:
            view["supervisor"] = self.supervisor.snapshot()
        if self._sharded:
            shards: Dict[int, int] = {
                shard_id: 0 for shard_id in range(self.engine.shard_count)
            }
            for stats in lanes.values():
                shard_id = stats.get("shard")
                if shard_id is not None:
                    shards[shard_id] = (
                        shards.get(shard_id, 0) + stats.get("depth", 0)
                    )
            view["shards"] = shards
        return view

    # -- the run ------------------------------------------------------------

    def run_tick(self) -> Dict[str, Any]:
        """One simulated tick: churn, submit, drain, control."""
        batch = self.generator.advance()
        for device_id in batch.joined:
            self.engine.track(
                device_id,
                self.source,
                capacity=self.capacity,
                policy=self.policy,
            )
        if batch.left:
            stats_before = self._lane_stats()
            for device_id in batch.left:
                stats = stats_before.get(device_id, {})
                self._retired_dropped += stats.get(
                    "dropped_oldest", 0
                ) + stats.get("dropped_newest", 0)
                self._retired_rejected += stats.get("rejected", 0)
                self._retired_coalesced += stats.get("coalesced", 0)
                self.engine.untrack(device_id)
        if batch.events:
            if hasattr(self.engine, "submit_batch"):
                verdicts = self.engine.submit_batch(batch.events)
                for verdict, count in verdicts.items():
                    self.verdicts[verdict] = (
                        self.verdicts.get(verdict, 0) + count
                    )
            else:
                for target_id, datum in batch.events:
                    verdict = self.engine.submit(target_id, datum)
                    self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
            self.submitted += len(batch.events)
        drained_round = self.engine.drain_round()
        self.drained += drained_round
        view = self.view(batch.tick, drained_round)
        self.high_water = max(
            self.high_water,
            max(
                (s.get("high_water", 0) for s in view["lanes"].values()),
                default=0,
            ),
        )
        if self.control is not None:
            self.control.step(view, self._actuators, self.hub)
        if self.hub is not None:
            self.hub.scenario_tick(
                view["generator"]["devices"], len(batch.events)
            )
        self.ticks_run += 1
        return view

    def run(self, ticks: int, *, settle_rounds: int = 50) -> Dict[str, Any]:
        """Run ``ticks`` simulated ticks, then drain the tail; returns
        the result summary (see :meth:`result`)."""
        if ticks < 0:
            raise ScenarioError("ticks must be non-negative")
        for _ in range(ticks):
            self.run_tick()
        for _ in range(settle_rounds):
            if self._pending() == 0:
                break
            self.drained += self.engine.drain_round()
        if self.hub is not None:
            for payload in self.alert_payloads():
                self.hub.geofence_alert(payload[0])
        return self.result()

    def _pending(self) -> int:
        if self._sharded:
            return self.engine.pending_total()
        return self.engine.depth_total()

    def alert_payloads(self) -> List[Any]:
        """Payloads of ``geo-alert`` datums that reached the alert sink."""
        if self._sharded:
            return [
                payload
                for _sink, kind, payload, _target in (
                    self.engine.sink_outputs()
                )
                if kind == ALERT_KIND
            ]
        graph = self.engine.graph
        try:
            sink = graph.component("city-alerts")
        except Exception:
            return []
        return [datum.payload for datum in getattr(sink, "received", [])]

    def alerts_delivered(self) -> int:
        """Count of ``geo-alert`` datums that reached the alert sink."""
        return len(self.alert_payloads())

    # -- results + inspection -----------------------------------------------

    def result(self) -> Dict[str, Any]:
        """The figures E17 gates on, plus context for the report."""
        generator = self.generator.snapshot()
        lanes = self._lane_stats()
        dropped = self._retired_dropped + sum(
            s.get("dropped_oldest", 0) + s.get("dropped_newest", 0)
            for s in lanes.values()
        )
        coalesced = self._retired_coalesced + sum(
            s.get("coalesced", 0) for s in lanes.values()
        )
        rejected = self._retired_rejected + sum(
            s.get("rejected", 0) for s in lanes.values()
        )
        summary: Dict[str, Any] = {
            "ticks": self.ticks_run,
            "devices": generator["devices"],
            "submitted": self.submitted,
            "drained": self.drained,
            "pending": self._pending(),
            "high_water": self.high_water,
            "accepted": self.verdicts.get("accepted", 0),
            "dropped": dropped,
            "coalesced": coalesced,
            "rejected": rejected,
            "alerts": self.alerts_delivered(),
            "suppressed_fixes": generator["suppressed_total"],
            "zone_lost": generator["zone_lost_total"],
            "burst_extra": generator["burst_extra_total"],
            "gps_threshold_m": generator["gps_threshold_m"],
            "closed_loop": self.control is not None,
        }
        if self.control is not None:
            summary["decisions"] = self.control.decisions_total
        return summary

    def decision_ledger(self) -> List[Dict[str, Any]]:
        """The control loop's ledger ([] when running open-loop)."""
        if self.control is None:
            return []
        return self.control.ledger()

    def snapshot(self) -> Dict[str, Any]:
        """Reflective summary for ``psl.scenario()`` and the report."""
        return {
            "sharded": self._sharded,
            "source": self.source,
            "capacity": self.capacity,
            "policy": self.policy,
            "closed_loop": self.control is not None,
            "generator": self.generator.snapshot(),
            "progress": {
                "ticks": self.ticks_run,
                "submitted": self.submitted,
                "drained": self.drained,
                "pending": self._pending(),
                "high_water": self.high_water,
                "verdicts": dict(self.verdicts),
            },
        }
