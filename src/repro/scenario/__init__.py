"""City-scale scenario generation and closed-loop adaptive control.

``repro.scenario`` turns the reproduction's scenario surface from the
paper's three hand-driven demo apps into a *city*: a deterministic,
seed-driven workload generator (:mod:`repro.scenario.city`), in-stream
geofence/alert rules (:mod:`repro.scenario.geofence`), closed-loop
controllers over the middleware's adaptation seams
(:mod:`repro.scenario.control`), and a runner binding them to any
engine flavour on the simulated clock (:mod:`repro.scenario.runner`).
"""

from .city import (
    ALERT_KIND,
    BLE_KIND,
    GPS_KIND,
    SENSOR_KINDS,
    WIFI_KIND,
    BurstEvent,
    CityConfig,
    CityGenerator,
    DegradedZone,
    ScenarioError,
    TickBatch,
)
from .control import (
    Actuators,
    BackpressureController,
    ControlError,
    Controller,
    ControlLoop,
    QuarantineController,
    RebalanceController,
    SamplingController,
    default_controllers,
)
from .geofence import GeofenceComponent, GeofenceRule
from .runner import ScenarioRunner, build_city_graph

__all__ = [
    "ALERT_KIND",
    "BLE_KIND",
    "GPS_KIND",
    "SENSOR_KINDS",
    "WIFI_KIND",
    "Actuators",
    "BackpressureController",
    "BurstEvent",
    "CityConfig",
    "CityGenerator",
    "ControlError",
    "ControlLoop",
    "Controller",
    "DegradedZone",
    "GeofenceComponent",
    "GeofenceRule",
    "QuarantineController",
    "RebalanceController",
    "SamplingController",
    "ScenarioError",
    "ScenarioRunner",
    "TickBatch",
    "build_city_graph",
    "default_controllers",
]
