"""Deterministic city-scale workload generator.

The scenario surface up to now was the paper's three demo apps driven by
hand.  This module simulates a *city*: a seed-driven population of
devices with heterogeneous sensor mixes (GPS / WiFi / BLE), realistic
trajectories over the existing building model (indoor devices walk
between room centroids of :func:`repro.model.demo.demo_building`) and an
outdoor metric grid, device churn (devices joining and leaving
mid-run), degraded-signal zones (GPS fixes lost or blurred inside
them), and burst events (an area temporarily emitting a multiple of its
normal traffic).

Everything is driven by ``random.Random`` instances derived from one
seed: the same :class:`CityConfig` produces the *identical* stream of
track/untrack/emit operations on every run, on every machine, under
every ``PYTHONHASHSEED`` -- the determinism the E17 regression gate and
the cross-execution-mode equivalence properties stand on.  To keep that
true, the generator never iterates a set, never reads the wall clock,
and draws device behaviour from per-device generators so churn cannot
shift another device's random stream.

GPS emission is duty-cycled through the real EnTracked power strategy
(:class:`repro.energy.entracked.PowerStrategyFeature`), one standalone
instance per GPS-bearing device.  That makes the power/accuracy
tradeoff a *live knob*: :meth:`CityGenerator.set_gps_threshold` is the
actuator the sampling controller drives to shed load at the source.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.data import Datum
from repro.energy.entracked import PowerStrategyFeature
from repro.model.demo import demo_building

#: Data kinds minted by the city scenario (kinds are plain strings; the
#: stock pipeline never sees these unless a port asks for them).
GPS_KIND = "city-gps"
WIFI_KIND = "city-wifi"
BLE_KIND = "city-ble"
ALERT_KIND = "geo-alert"

SENSOR_KINDS = (GPS_KIND, WIFI_KIND, BLE_KIND)


class ScenarioError(Exception):
    """Raised on invalid scenario configuration or use."""


@dataclass(frozen=True)
class DegradedZone:
    """A circular area of degraded GPS signal (urban canyon, tunnel).

    Inside the zone a GPS fix is lost with probability ``drop_rate``;
    fixes that survive carry ``extra_error_m`` of additional reported
    inaccuracy.
    """

    name: str
    x_m: float
    y_m: float
    radius_m: float
    drop_rate: float = 0.5
    extra_error_m: float = 30.0

    def contains(self, x_m: float, y_m: float) -> bool:
        dx = x_m - self.x_m
        dy = y_m - self.y_m
        return dx * dx + dy * dy <= self.radius_m * self.radius_m


@dataclass(frozen=True)
class BurstEvent:
    """A window of ticks in which an area emits a multiple of its traffic.

    Models a stadium letting out or a transit hub at rush hour: every
    device inside the circle emits ``factor - 1`` extra copies of each
    due sensor reading while the burst is active.
    """

    name: str
    start_tick: int
    duration_ticks: int
    x_m: float
    y_m: float
    radius_m: float
    factor: int = 4

    def active(self, tick: int) -> bool:
        return self.start_tick <= tick < self.start_tick + self.duration_ticks

    def contains(self, x_m: float, y_m: float) -> bool:
        dx = x_m - self.x_m
        dy = y_m - self.y_m
        return dx * dx + dy * dy <= self.radius_m * self.radius_m


@dataclass(frozen=True)
class CityConfig:
    """Everything the generator needs, hashable-free and picklable.

    ``seed`` fully determines the run.  Sensor-mix probabilities are
    applied per device at creation time (a device with no sensor after
    the draws gets GPS, so no device is mute).  ``churn_rate`` is the
    expected fraction of the active population replaced per tick.
    """

    seed: int = 7
    devices: int = 100
    width_m: float = 2000.0
    height_m: float = 2000.0
    indoor_fraction: float = 0.25
    p_gps: float = 0.9
    p_wifi: float = 0.5
    p_ble: float = 0.3
    churn_rate: float = 0.01
    speed_mps: float = 1.5
    gps_period_ticks: int = 1
    wifi_period_ticks: int = 3
    ble_period_ticks: int = 2
    tick_s: float = 1.0
    entracked_threshold_m: float = 40.0
    entracked_min_sleep_s: float = 1.0
    entracked_max_sleep_s: float = 60.0
    zones: Tuple[DegradedZone, ...] = (
        DegradedZone("canyon", 500.0, 500.0, 220.0, drop_rate=0.4),
        DegradedZone("tunnel", 1500.0, 1200.0, 150.0, drop_rate=0.7),
    )
    bursts: Tuple[BurstEvent, ...] = (
        BurstEvent("stadium", 60, 40, 1000.0, 1000.0, 600.0, factor=4),
    )

    def __post_init__(self) -> None:
        if self.devices < 0:
            raise ScenarioError("devices must be non-negative")
        if self.width_m <= 0 or self.height_m <= 0:
            raise ScenarioError("city bounds must be positive")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ScenarioError("churn_rate must be within [0, 1]")
        for period in (
            self.gps_period_ticks,
            self.wifi_period_ticks,
            self.ble_period_ticks,
        ):
            if period < 1:
                raise ScenarioError("sensor periods must be >= 1 tick")


@dataclass
class _Device:
    """One simulated device: identity, sensors, motion state."""

    device_id: str
    sensors: Tuple[str, ...]
    indoor: bool
    x_m: float
    y_m: float
    heading: float
    speed_mps: float
    rng: random.Random
    phases: Dict[str, int]
    strategy: Optional[PowerStrategyFeature]
    waypoint: Optional[Tuple[float, float]] = None
    battery: float = 1.0


@dataclass
class TickBatch:
    """What one simulated tick produced, in deterministic order."""

    tick: int
    joined: List[str] = field(default_factory=list)
    left: List[str] = field(default_factory=list)
    events: List[Tuple[str, Datum]] = field(default_factory=list)
    suppressed: int = 0
    zone_lost: int = 0
    burst_extra: int = 0


class CityGenerator:
    """Seed-driven device population advancing one tick at a time.

    Call :meth:`advance` once per simulated tick; it returns a
    :class:`TickBatch` naming devices that joined or left plus every
    ``(device_id, Datum)`` emission, all in deterministic order.  The
    caller (normally :class:`repro.scenario.runner.ScenarioRunner`)
    tracks/untracks lanes and submits the events to whichever engine is
    under test.
    """

    def __init__(self, config: CityConfig) -> None:
        self.config = config
        self._master = random.Random(config.seed)
        self._churn_rng = random.Random(config.seed + 0x5EED)
        self._devices: List[_Device] = []
        self._index: Dict[str, _Device] = {}
        self._next_id = 0
        self._tick = 0
        self._gps_threshold_m = config.entracked_threshold_m
        self._rooms = [room.centroid for room in demo_building().rooms()]
        self.joined_total = 0
        self.left_total = 0
        self.events_total = 0
        self.suppressed_total = 0
        self.zone_lost_total = 0
        self.burst_extra_total = 0
        self._initial = [self._spawn() for _ in range(config.devices)]

    # -- population ---------------------------------------------------------

    def _spawn(self) -> _Device:
        config = self.config
        idx = self._next_id
        self._next_id += 1
        rng = random.Random(config.seed * 1_000_003 + idx)
        sensors: List[str] = []
        if rng.random() < config.p_gps:
            sensors.append(GPS_KIND)
        if rng.random() < config.p_wifi:
            sensors.append(WIFI_KIND)
        if rng.random() < config.p_ble:
            sensors.append(BLE_KIND)
        if not sensors:
            sensors.append(GPS_KIND)
        indoor = rng.random() < config.indoor_fraction
        strategy = None
        if GPS_KIND in sensors:
            strategy = PowerStrategyFeature(
                threshold_m=self._gps_threshold_m,
                acquisition_time_s=0.0,
                min_sleep_s=config.entracked_min_sleep_s,
                max_sleep_s=config.entracked_max_sleep_s,
            )
        device = _Device(
            device_id=f"dev-{idx:06d}",
            sensors=tuple(sensors),
            indoor=indoor,
            x_m=rng.uniform(0.0, config.width_m),
            y_m=rng.uniform(0.0, config.height_m),
            heading=rng.uniform(0.0, 6.283185307179586),
            speed_mps=max(0.1, rng.gauss(config.speed_mps, 0.5)),
            rng=rng,
            phases={kind: rng.randrange(8) for kind in sensors},
            strategy=strategy,
        )
        self._devices.append(device)
        self._index[device.device_id] = device
        self.joined_total += 1
        return device

    def _retire(self, device: _Device) -> None:
        self._devices.remove(device)
        del self._index[device.device_id]
        self.left_total += 1

    def active_devices(self) -> List[str]:
        """Ids of currently active devices, in join order."""
        return [device.device_id for device in self._devices]

    # -- control surface ----------------------------------------------------

    def set_gps_threshold(self, threshold_m: float) -> float:
        """Adapt the EnTracked error threshold on every GPS device.

        A larger threshold lets each device sleep its GPS longer between
        fixes (fewer emissions, less power, less load); a smaller one
        restores accuracy.  Returns the previous threshold.  This is the
        sampling controller's actuator.
        """
        if threshold_m <= 0:
            raise ScenarioError("threshold_m must be positive")
        previous = self._gps_threshold_m
        self._gps_threshold_m = threshold_m
        for device in self._devices:
            if device.strategy is not None:
                device.strategy.set_threshold(threshold_m)
        return previous

    def gps_threshold(self) -> float:
        return self._gps_threshold_m

    # -- the tick -----------------------------------------------------------

    def advance(self, tick: Optional[int] = None) -> TickBatch:
        """Advance the city one tick; returns everything that happened."""
        if tick is not None and tick != self._tick:
            raise ScenarioError(
                f"ticks must be consumed in order (expected {self._tick},"
                f" got {tick})"
            )
        tick = self._tick
        self._tick += 1
        batch = TickBatch(tick=tick)
        now = tick * self.config.tick_s

        if tick == 0:
            batch.joined.extend(d.device_id for d in self._initial)
            self._initial = []
        self._churn(batch)

        bursts = [b for b in self.config.bursts if b.active(tick)]
        for device in list(self._devices):
            self._move(device)
            self._emit(device, tick, now, bursts, batch)

        self.events_total += len(batch.events)
        self.suppressed_total += batch.suppressed
        self.zone_lost_total += batch.zone_lost
        self.burst_extra_total += batch.burst_extra
        return batch

    def _churn(self, batch: TickBatch) -> None:
        rate = self.config.churn_rate
        if rate <= 0 or not self._devices:
            return
        expected = rate * len(self._devices)
        count = int(expected)
        if self._churn_rng.random() < expected - count:
            count += 1
        for _ in range(count):
            if len(self._devices) > 1:
                victim = self._devices[
                    self._churn_rng.randrange(len(self._devices))
                ]
                self._retire(victim)
                batch.left.append(victim.device_id)
            joiner = self._spawn()
            batch.joined.append(joiner.device_id)

    def _move(self, device: _Device) -> None:
        config = self.config
        step = device.speed_mps * config.tick_s
        if device.indoor and self._rooms:
            if device.waypoint is None or (
                abs(device.x_m - device.waypoint[0]) < step
                and abs(device.y_m - device.waypoint[1]) < step
            ):
                room = self._rooms[device.rng.randrange(len(self._rooms))]
                device.waypoint = (room.x_m, room.y_m)
            wx, wy = device.waypoint
            dx = wx - device.x_m
            dy = wy - device.y_m
            distance = (dx * dx + dy * dy) ** 0.5
            if distance > 1e-9:
                scale = min(1.0, step / distance)
                device.x_m += dx * scale
                device.y_m += dy * scale
        else:
            if device.rng.random() < 0.1:
                device.heading = device.rng.uniform(0.0, 6.283185307179586)
            device.x_m += step * math.cos(device.heading)
            device.y_m += step * math.sin(device.heading)
            if not 0.0 <= device.x_m <= config.width_m:
                device.x_m = min(max(device.x_m, 0.0), config.width_m)
                device.heading = 3.141592653589793 - device.heading
            if not 0.0 <= device.y_m <= config.height_m:
                device.y_m = min(max(device.y_m, 0.0), config.height_m)
                device.heading = -device.heading
        device.battery = max(0.05, device.battery - 0.0001)

    def _emit(
        self,
        device: _Device,
        tick: int,
        now: float,
        bursts: List[BurstEvent],
        batch: TickBatch,
    ) -> None:
        factor = 1
        for burst in bursts:
            if burst.contains(device.x_m, device.y_m):
                factor = max(factor, burst.factor)
        for kind in device.sensors:
            period = self._period(kind)
            if (tick + device.phases[kind]) % period != 0:
                continue
            datum = self._reading(device, kind, tick, now, batch)
            if datum is None:
                continue
            batch.events.append((device.device_id, datum))
            for extra in range(factor - 1):
                batch.events.append(
                    (device.device_id, self._jitter(datum, extra))
                )
                batch.burst_extra += 1

    def _period(self, kind: str) -> int:
        config = self.config
        if kind == GPS_KIND:
            return config.gps_period_ticks
        if kind == WIFI_KIND:
            return config.wifi_period_ticks
        return config.ble_period_ticks

    def _reading(
        self,
        device: _Device,
        kind: str,
        tick: int,
        now: float,
        batch: TickBatch,
    ) -> Optional[Datum]:
        if kind == GPS_KIND:
            strategy = device.strategy
            if strategy is not None:
                strategy.set_moving(device.speed_mps > 0.2, now)
                if not strategy.gps_should_be_on(now):
                    batch.suppressed += 1
                    return None
            accuracy = 5.0 + device.rng.random() * 10.0
            for zone in self.config.zones:
                if zone.contains(device.x_m, device.y_m):
                    if device.rng.random() < zone.drop_rate:
                        batch.zone_lost += 1
                        return None
                    accuracy += zone.extra_error_m
                    break
            if strategy is not None:
                strategy.update_speed(device.speed_mps)
                strategy.notify_fix_sent(now)
            payload = (
                round(device.x_m, 2),
                round(device.y_m, 2),
                round(accuracy, 2),
            )
        elif kind == WIFI_KIND:
            payload = (
                1 + device.rng.randrange(6),
                -40 - device.rng.randrange(50),
            )
        else:
            payload = (
                device.rng.randrange(4),
                -50 - device.rng.randrange(40),
            )
        return Datum(
            kind=kind,
            payload=payload,
            timestamp=now,
            producer="city",
            attributes={"tick": tick},
        )

    @staticmethod
    def _jitter(datum: Datum, extra: int) -> Datum:
        return Datum(
            kind=datum.kind,
            payload=datum.payload,
            timestamp=datum.timestamp,
            producer=datum.producer,
            attributes={**datum.attributes, "burst_copy": extra + 1},
        )

    # -- wire bridge (feeding the ingestion gateway) -------------------------

    def wire_payload(self, device_id: str, datum: Datum) -> Dict[str, Any]:
        """A ``phone_tracker_v1`` wire dict for one GPS emission.

        Lets the same generator feed the ingestion gateway: grid metres
        are projected onto a small WGS84 patch so the wire format's
        lat/lon range checks hold.
        """
        if datum.kind != GPS_KIND:
            raise ScenarioError("only city-gps readings cross the wire")
        x_m, y_m, accuracy = datum.payload
        device = self._index.get(device_id)
        return {
            "device_id": device_id,
            "timestamp": float(datum.timestamp),
            "lat": round(55.0 + y_m / 111_320.0, 6),
            "lon": round(12.0 + x_m / 63_000.0, 6),
            "accuracy_m": float(accuracy),
            "battery_pct": round(device.battery, 3) if device else 1.0,
        }

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Reflective summary for PSL / the report."""
        return {
            "seed": self.config.seed,
            "tick": self._tick,
            "devices": len(self._devices),
            "joined_total": self.joined_total,
            "left_total": self.left_total,
            "events_total": self.events_total,
            "suppressed_total": self.suppressed_total,
            "zone_lost_total": self.zone_lost_total,
            "burst_extra_total": self.burst_extra_total,
            "gps_threshold_m": self._gps_threshold_m,
            "zones": [zone.name for zone in self.config.zones],
            "bursts": [burst.name for burst in self.config.bursts],
        }
