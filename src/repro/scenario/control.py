"""Closed-loop adaptive controllers over the middleware's knobs.

Dearle et al. (PAPERS.md) argue adaptation decisions belong in *policy
objects* reacting to observed conditions rather than hard-wired into the
middleware.  This module is that layer for the reproduction: small
controllers that read the lane/shard/supervisor view assembled each
drain round and push decisions back through the adaptation seams every
prior PR exposed -- ``set_backpressure`` (PR 4), the EnTracked
power/accuracy threshold (``repro.energy``), :class:`SupervisionPolicy`
thresholds (PR 3), and shard rebalancing (PR 5 + this PR's
``ShardedEngine.rebalance``).

Every decision is recorded in a bounded :class:`DecisionLedger` --
adaptation stays *translucent*: the system adapts itself, and you can
read exactly what it did and why through ``psl.controllers()``, the
report's ``control:`` section, and hub counters.

Determinism contract: controllers iterate lanes in sorted target order
and read only per-lane stats and aggregate sums, so the ledger produced
on a single engine matches the one produced on an in-process sharded
engine for the same workload -- pinned by the equivalence properties in
``tests/test_property_scenario.py``.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Sequence


class ControlError(Exception):
    """Raised on invalid controller configuration or use."""


class Actuators:
    """The write-side seams a controller may drive, injected per step.

    Each hook is optional (``None`` when the deployment lacks that
    seam); controllers must check before calling.  Keeping actuation
    behind one narrow object makes controllers testable with stubs and
    keeps them ignorant of engine flavours.
    """

    def __init__(
        self,
        *,
        set_backpressure: Optional[Callable[..., Dict[str, Any]]] = None,
        set_gps_threshold: Optional[Callable[[float], float]] = None,
        set_supervision: Optional[Callable[..., Any]] = None,
        migrate_target: Optional[Callable[[str, int], Dict[str, Any]]] = None,
    ) -> None:
        self.set_backpressure = set_backpressure
        self.set_gps_threshold = set_gps_threshold
        self.set_supervision = set_supervision
        self.migrate_target = migrate_target


class Controller(abc.ABC):
    """One adaptation policy: reads the view, emits decision dicts.

    ``evaluate`` returns a list of decision records (possibly empty);
    each must carry ``action`` and may carry ``target``, ``params`` and
    ``reason``.  The :class:`ControlLoop` stamps controller name and
    tick and appends them to the ledger.
    """

    name = "controller"

    @abc.abstractmethod
    def evaluate(
        self, view: Dict[str, Any], actuators: Actuators
    ) -> List[Dict[str, Any]]:
        """Inspect the round's view and (maybe) actuate."""

    def describe(self) -> Dict[str, Any]:
        """Reflective summary for PSL / the report."""
        return {"name": self.name, "type": type(self).__name__}


class BackpressureController(Controller):
    """Grows / shrinks lane capacity in response to depth and drops.

    A lane whose queue runs hot (depth above ``high`` of capacity, or
    new drops since the last round) gets its capacity doubled up to
    ``max_capacity``; a lane idle below ``low`` for ``calm_rounds``
    consecutive rounds is halved back down to ``min_capacity``.  A
    per-lane cooldown stops oscillation.
    """

    name = "backpressure"

    def __init__(
        self,
        *,
        high: float = 0.75,
        low: float = 0.25,
        min_capacity: int = 8,
        max_capacity: int = 256,
        calm_rounds: int = 8,
        cooldown_rounds: int = 2,
    ) -> None:
        if not 0.0 <= low < high <= 1.0:
            raise ControlError("need 0 <= low < high <= 1")
        self.high = high
        self.low = low
        self.min_capacity = min_capacity
        self.max_capacity = max_capacity
        self.calm_rounds = calm_rounds
        self.cooldown_rounds = cooldown_rounds
        self._last_dropped: Dict[str, int] = {}
        self._calm: Dict[str, int] = {}
        self._cooldown_until: Dict[str, int] = {}

    def evaluate(
        self, view: Dict[str, Any], actuators: Actuators
    ) -> List[Dict[str, Any]]:
        if actuators.set_backpressure is None:
            return []
        tick = view.get("tick", 0)
        decisions: List[Dict[str, Any]] = []
        lanes = view.get("lanes", {})
        for target in sorted(lanes):
            stats = lanes[target]
            capacity = stats.get("capacity", 0) or 1
            depth = stats.get("depth", 0)
            dropped = stats.get("dropped_oldest", 0) + stats.get(
                "dropped_newest", 0
            )
            new_drops = dropped - self._last_dropped.get(target, 0)
            self._last_dropped[target] = dropped
            if tick < self._cooldown_until.get(target, 0):
                continue
            fraction = depth / capacity
            if (new_drops > 0 or fraction >= self.high) and (
                capacity < self.max_capacity
            ):
                new_capacity = min(self.max_capacity, capacity * 2)
                actuators.set_backpressure(target, capacity=new_capacity)
                self._calm[target] = 0
                self._cooldown_until[target] = tick + self.cooldown_rounds
                decisions.append(
                    {
                        "action": "grow_capacity",
                        "target": target,
                        "params": {"capacity": new_capacity},
                        "reason": (
                            f"depth {depth}/{capacity},"
                            f" {new_drops} new drops"
                        ),
                    }
                )
            elif fraction <= self.low and new_drops == 0:
                calm = self._calm.get(target, 0) + 1
                self._calm[target] = calm
                if calm >= self.calm_rounds and capacity > self.min_capacity:
                    new_capacity = max(self.min_capacity, capacity // 2)
                    actuators.set_backpressure(target, capacity=new_capacity)
                    self._calm[target] = 0
                    self._cooldown_until[target] = (
                        tick + self.cooldown_rounds
                    )
                    decisions.append(
                        {
                            "action": "shrink_capacity",
                            "target": target,
                            "params": {"capacity": new_capacity},
                            "reason": f"calm for {calm} rounds",
                        }
                    )
            else:
                self._calm[target] = 0
        return decisions


class SamplingController(Controller):
    """Trades accuracy for load through the EnTracked threshold.

    When the round saw drops (the pipeline cannot keep up), the GPS
    error threshold is raised by ``raise_factor`` -- devices sleep their
    GPS longer, emitting less.  After ``recover_rounds`` consecutive
    clean rounds the threshold steps back down toward ``base_m``,
    restoring accuracy.  The EnTracked power/accuracy tradeoff
    (``repro.energy``), driven automatically.
    """

    name = "sampling"

    def __init__(
        self,
        *,
        base_m: float = 40.0,
        max_m: float = 640.0,
        raise_factor: float = 2.0,
        recover_rounds: int = 10,
        drop_tolerance: int = 0,
    ) -> None:
        if raise_factor <= 1.0:
            raise ControlError("raise_factor must be > 1")
        self.base_m = base_m
        self.max_m = max_m
        self.raise_factor = raise_factor
        self.recover_rounds = recover_rounds
        self.drop_tolerance = drop_tolerance
        self._threshold_m = base_m
        self._last_dropped = 0
        self._clean = 0

    def evaluate(
        self, view: Dict[str, Any], actuators: Actuators
    ) -> List[Dict[str, Any]]:
        if actuators.set_gps_threshold is None:
            return []
        dropped = view.get("dropped_total", 0)
        new_drops = dropped - self._last_dropped
        self._last_dropped = dropped
        if new_drops > self.drop_tolerance:
            self._clean = 0
            if self._threshold_m < self.max_m:
                self._threshold_m = min(
                    self.max_m, self._threshold_m * self.raise_factor
                )
                actuators.set_gps_threshold(self._threshold_m)
                return [
                    {
                        "action": "raise_threshold",
                        "params": {"threshold_m": self._threshold_m},
                        "reason": f"{new_drops} drops this round",
                    }
                ]
            return []
        self._clean += 1
        if self._clean >= self.recover_rounds and (
            self._threshold_m > self.base_m
        ):
            self._clean = 0
            self._threshold_m = max(
                self.base_m, self._threshold_m / self.raise_factor
            )
            actuators.set_gps_threshold(self._threshold_m)
            return [
                {
                    "action": "lower_threshold",
                    "params": {"threshold_m": self._threshold_m},
                    "reason": f"clean for {self.recover_rounds} rounds",
                }
            ]
        return []


class QuarantineController(Controller):
    """Tightens / relaxes supervision breaker thresholds under failures.

    Reads the supervisor snapshot in the view; a round with new
    component failures tightens the policy (smaller failure threshold,
    longer half-open delay) so breakers trip earlier, and a long quiet
    streak relaxes it back to the base policy.
    """

    name = "quarantine"

    def __init__(
        self,
        *,
        base_failure_threshold: int = 5,
        min_failure_threshold: int = 1,
        base_half_open_s: float = 30.0,
        max_half_open_s: float = 240.0,
        quiet_rounds: int = 20,
    ) -> None:
        self.base_failure_threshold = base_failure_threshold
        self.min_failure_threshold = min_failure_threshold
        self.base_half_open_s = base_half_open_s
        self.max_half_open_s = max_half_open_s
        self.quiet_rounds = quiet_rounds
        self._failure_threshold = base_failure_threshold
        self._half_open_s = base_half_open_s
        self._last_failures = 0
        self._quiet = 0

    def evaluate(
        self, view: Dict[str, Any], actuators: Actuators
    ) -> List[Dict[str, Any]]:
        if actuators.set_supervision is None:
            return []
        supervisor = view.get("supervisor")
        if not supervisor:
            return []
        failures = sum(
            entry.get("failures", 0)
            for entry in supervisor.get("components", {}).values()
        )
        new_failures = failures - self._last_failures
        self._last_failures = failures
        if new_failures > 0:
            self._quiet = 0
            if self._failure_threshold > self.min_failure_threshold or (
                self._half_open_s < self.max_half_open_s
            ):
                self._failure_threshold = max(
                    self.min_failure_threshold, self._failure_threshold - 1
                )
                self._half_open_s = min(
                    self.max_half_open_s, self._half_open_s * 2
                )
                actuators.set_supervision(
                    failure_threshold=self._failure_threshold,
                    half_open_after_s=self._half_open_s,
                )
                return [
                    {
                        "action": "tighten",
                        "params": {
                            "failure_threshold": self._failure_threshold,
                            "half_open_after_s": self._half_open_s,
                        },
                        "reason": f"{new_failures} new failures",
                    }
                ]
            return []
        self._quiet += 1
        if self._quiet >= self.quiet_rounds and (
            self._failure_threshold != self.base_failure_threshold
            or self._half_open_s != self.base_half_open_s
        ):
            self._quiet = 0
            self._failure_threshold = self.base_failure_threshold
            self._half_open_s = self.base_half_open_s
            actuators.set_supervision(
                failure_threshold=self._failure_threshold,
                half_open_after_s=self._half_open_s,
            )
            return [
                {
                    "action": "relax",
                    "params": {
                        "failure_threshold": self._failure_threshold,
                        "half_open_after_s": self._half_open_s,
                    },
                    "reason": f"quiet for {self.quiet_rounds} rounds",
                }
            ]
        return []


class RebalanceController(Controller):
    """Sheds a hot shard by migrating its deepest lane elsewhere.

    Only meaningful on a sharded deployment (the view must carry
    per-shard pending depths and per-lane shard annotations); a shard
    whose pending backlog exceeds ``imbalance`` times the mean of the
    others triggers one warm handoff of its deepest lane to the
    least-loaded shard, then cools down.
    """

    name = "rebalance"

    def __init__(
        self,
        *,
        imbalance: float = 2.0,
        min_pending: int = 32,
        cooldown_rounds: int = 10,
    ) -> None:
        if imbalance <= 1.0:
            raise ControlError("imbalance must be > 1")
        self.imbalance = imbalance
        self.min_pending = min_pending
        self.cooldown_rounds = cooldown_rounds
        self._cooldown_until = 0

    def evaluate(
        self, view: Dict[str, Any], actuators: Actuators
    ) -> List[Dict[str, Any]]:
        if actuators.migrate_target is None:
            return []
        shards: Dict[int, int] = view.get("shards") or {}
        if len(shards) < 2:
            return []
        tick = view.get("tick", 0)
        if tick < self._cooldown_until:
            return []
        hottest = max(sorted(shards), key=lambda s: shards[s])
        coolest = min(sorted(shards), key=lambda s: shards[s])
        others = [p for s, p in shards.items() if s != hottest]
        mean_others = sum(others) / len(others) if others else 0.0
        if shards[hottest] < self.min_pending:
            return []
        if shards[hottest] <= self.imbalance * max(mean_others, 1.0):
            return []
        lanes = view.get("lanes", {})
        candidates = [
            (stats.get("depth", 0), target)
            for target, stats in sorted(lanes.items())
            if stats.get("shard") == hottest
        ]
        if not candidates:
            return []
        depth, target = max(candidates)
        if depth <= 0:
            return []
        record = actuators.migrate_target(target, coolest)
        self._cooldown_until = tick + self.cooldown_rounds
        return [
            {
                "action": "migrate",
                "target": target,
                "params": {
                    "from": record.get("from"),
                    "to": record.get("to"),
                    "datums": record.get("datums"),
                },
                "reason": (
                    f"shard {hottest} pending {shards[hottest]} vs"
                    f" mean {mean_others:.1f}"
                ),
            }
        ]


class ControlLoop:
    """Runs every controller once per drain round; keeps the ledger.

    The ledger is bounded (oldest decisions fall off) but the per-
    controller decision *counts* are cumulative, so the report can say
    "the sampling controller acted 12 times" even after the ring
    rotated.
    """

    def __init__(
        self,
        controllers: Sequence[Controller],
        *,
        ledger_limit: int = 512,
    ) -> None:
        names = [controller.name for controller in controllers]
        if len(set(names)) != len(names):
            raise ControlError(f"duplicate controller names: {names}")
        self.controllers = list(controllers)
        self._ledger_limit = ledger_limit
        self._ledger: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {}
        self.decisions_total = 0

    def step(
        self,
        view: Dict[str, Any],
        actuators: Actuators,
        hub: Optional[Any] = None,
    ) -> List[Dict[str, Any]]:
        """One control round: every controller sees the same view."""
        recorded: List[Dict[str, Any]] = []
        for controller in self.controllers:
            for decision in controller.evaluate(view, actuators):
                record = {
                    "tick": view.get("tick"),
                    "controller": controller.name,
                    "action": decision.get("action", "?"),
                    "target": decision.get("target"),
                    "params": decision.get("params", {}),
                    "reason": decision.get("reason", ""),
                }
                self._ledger.append(record)
                self._counts[controller.name] = (
                    self._counts.get(controller.name, 0) + 1
                )
                self.decisions_total += 1
                recorded.append(record)
                if hub is not None:
                    hub.controller_decision(controller.name, record["action"])
        if len(self._ledger) > self._ledger_limit:
            del self._ledger[: len(self._ledger) - self._ledger_limit]
        if hub is not None:
            hub.control_ledger_depth(len(self._ledger))
        return recorded

    # -- inspection ---------------------------------------------------------

    def ledger(self) -> List[Dict[str, Any]]:
        """The bounded decision ledger, newest last (a copy)."""
        return [dict(record) for record in self._ledger]

    def snapshot(self) -> Dict[str, Any]:
        """Reflective summary for PSL / the report."""
        return {
            "controllers": [c.describe() for c in self.controllers],
            "decisions_total": self.decisions_total,
            "by_controller": dict(self._counts),
            "ledger_depth": len(self._ledger),
            "ledger_limit": self._ledger_limit,
            "recent": [dict(r) for r in self._ledger[-5:]],
        }


def default_controllers(
    *,
    base_threshold_m: float = 40.0,
    max_capacity: int = 256,
    sharded: bool = False,
) -> List[Controller]:
    """The stock closed-loop policy set used by E17 and the example."""
    controllers: List[Controller] = [
        BackpressureController(max_capacity=max_capacity),
        SamplingController(base_m=base_threshold_m),
        QuarantineController(),
    ]
    if sharded:
        controllers.append(RebalanceController())
    return controllers
