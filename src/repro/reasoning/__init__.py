"""High-level reasoning components: transportation-mode detection.

Paper §1 motivates translucency with Zheng et al.'s transportation-mode
pipeline: "structure the reasoning process when determining
transportation mode of a target by segmentation, feature extraction,
decision tree classification and hidden-markov model post processing."
This package builds that pipeline as ordinary Processing Components, so
the whole reasoning chain is inspectable and adaptable through the PSL
and PCL like any other part of the positioning process:

``positions -> Segmenter -> FeatureExtractor -> DecisionTreeClassifier
-> HmmSmoother -> application``
"""

from repro.reasoning.segmentation import Segment, SegmenterComponent
from repro.reasoning.features import (
    FeatureExtractorComponent,
    SegmentFeatures,
)
from repro.reasoning.classifier import (
    DecisionTreeClassifierComponent,
    ModeEstimate,
    TransportMode,
)
from repro.reasoning.hmm import HmmSmootherComponent

__all__ = [
    "Segment",
    "SegmenterComponent",
    "SegmentFeatures",
    "FeatureExtractorComponent",
    "TransportMode",
    "ModeEstimate",
    "DecisionTreeClassifierComponent",
    "HmmSmootherComponent",
]
