"""Multi-modal trajectories with mode ground truth.

Workload generator for the transportation-mode experiments: a journey
assembled from phases (still / walk / bike / vehicle), each moving at a
characteristic speed with seeded heading wander, plus the ground-truth
mode as a function of time for scoring classifications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.geo.wgs84 import Wgs84Position, destination_point
from repro.reasoning.classifier import TransportMode
from repro.sensors.trajectory import Trajectory, Waypoint, WaypointTrajectory

#: Characteristic speeds (m/s) per mode for workload generation.
MODE_SPEEDS = {
    TransportMode.STILL: 0.0,
    TransportMode.WALK: 1.4,
    TransportMode.BIKE: 4.5,
    TransportMode.VEHICLE: 13.0,
}


@dataclass(frozen=True)
class ModalPhase:
    """One stretch of a journey in a single mode."""

    mode: TransportMode
    duration_s: float


def default_journey() -> List[ModalPhase]:
    """A commute-like journey: still, walk, bike, vehicle, walk, still."""
    return [
        ModalPhase(TransportMode.STILL, 120.0),
        ModalPhase(TransportMode.WALK, 240.0),
        ModalPhase(TransportMode.BIKE, 240.0),
        ModalPhase(TransportMode.VEHICLE, 300.0),
        ModalPhase(TransportMode.WALK, 180.0),
        ModalPhase(TransportMode.STILL, 120.0),
    ]


def build_modal_trajectory(
    phases: Sequence[ModalPhase],
    start: Wgs84Position,
    seed: int = 0,
    step_s: float = 10.0,
) -> Tuple[Trajectory, Callable[[float], TransportMode]]:
    """Build the trajectory and its ground-truth mode function.

    Within each phase the target moves at the mode's characteristic
    speed with mild speed jitter and heading wander; the returned
    callable maps a timestamp to the true mode (clamping beyond the end).
    """
    if not phases:
        raise ValueError("need at least one phase")
    rng = random.Random(seed)
    waypoints = [Waypoint(0.0, start)]
    here = start
    now = 0.0
    heading = rng.uniform(0.0, 360.0)
    boundaries: List[Tuple[float, TransportMode]] = []
    for phase in phases:
        end = now + phase.duration_s
        boundaries.append((end, phase.mode))
        base_speed = MODE_SPEEDS[phase.mode]
        while now < end - 1e-9:
            dt = min(step_s, end - now)
            speed = max(
                0.0, base_speed * (1.0 + rng.gauss(0.0, 0.15))
            ) if base_speed > 0 else 0.0
            heading = (heading + rng.gauss(0.0, 12.0)) % 360.0
            if speed > 0:
                lat, lon = destination_point(
                    here.latitude_deg,
                    here.longitude_deg,
                    heading,
                    speed * dt,
                )
                here = Wgs84Position(lat, lon)
            now += dt
            waypoints.append(Waypoint(now, here))
    trajectory = WaypointTrajectory(waypoints)

    def true_mode(t: float) -> TransportMode:
        for end, mode in boundaries:
            if t < end:
                return mode
        return boundaries[-1][1]

    return trajectory, true_mode
