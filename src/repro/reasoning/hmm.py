"""Hidden-Markov-model post-processing of mode estimates.

Fourth stage of the transportation-mode pipeline.  Raw per-segment
classifications flap at mode boundaries and under noisy features; the
smoother runs an online forward pass over the decision tree's soft
scores (used as emission likelihoods) with a sticky transition matrix,
emitting the posterior-argmax mode per segment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.reasoning.classifier import MODES, ModeEstimate


def sticky_transition_matrix(stay: float = 0.85) -> List[List[float]]:
    """A transition matrix favouring staying in the current mode."""
    if not 0.0 < stay < 1.0:
        raise ValueError("stay probability must be in (0, 1)")
    n = len(MODES)
    leave = (1.0 - stay) / (n - 1)
    return [
        [stay if i == j else leave for j in range(n)] for i in range(n)
    ]


class HmmSmootherComponent(ProcessingComponent):
    """Online forward-algorithm smoothing of transport-mode estimates."""

    def __init__(
        self,
        stay_probability: float = 0.85,
        name: str = "hmm-smoother",
    ) -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.TRANSPORT_MODE,)),),
            output=OutputPort((Kind.TRANSPORT_MODE,)),
        )
        self._transition = sticky_transition_matrix(stay_probability)
        self._belief: Optional[List[float]] = None
        self.smoothed = 0

    def process(self, port_name: str, datum: Datum) -> None:
        estimate = datum.payload
        if not isinstance(estimate, ModeEstimate):
            return
        emission = list(estimate.scores)
        if self._belief is None:
            belief = emission[:]
        else:
            n = len(MODES)
            predicted = [
                sum(
                    self._belief[i] * self._transition[i][j]
                    for i in range(n)
                )
                for j in range(n)
            ]
            belief = [predicted[j] * emission[j] for j in range(n)]
        total = sum(belief)
        if total <= 0:
            belief = [1.0 / len(MODES)] * len(MODES)
        else:
            belief = [b / total for b in belief]
        self._belief = belief
        best_index = max(range(len(MODES)), key=lambda i: belief[i])
        smoothed = ModeEstimate(
            start_time=estimate.start_time,
            end_time=estimate.end_time,
            mode=MODES[best_index],
            scores=tuple(belief),
        )
        self.smoothed += 1
        self.produce(
            Datum(
                kind=Kind.TRANSPORT_MODE,
                payload=smoothed,
                timestamp=datum.timestamp,
                producer=self.name,
                attributes={"smoothed": True},
            )
        )

    # -- inspection ---------------------------------------------------------

    def current_belief(self) -> Optional[Tuple[float, ...]]:
        """Posterior over modes after the latest segment."""
        return tuple(self._belief) if self._belief is not None else None

    def reset(self) -> None:
        """Forget history (e.g. after a long coverage gap)."""
        self._belief = None
