"""Segmentation: windowing the position stream.

The first stage of the transportation-mode pipeline.  Positions are
grouped into fixed-duration, non-overlapping segments; a segment is
emitted when the first position beyond its window arrives.  Stretches
without data simply produce no segments -- a coverage seam downstream
stages must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.geo.wgs84 import Wgs84Position


@dataclass(frozen=True)
class Segment:
    """A windowed stretch of the position stream."""

    start_time: float
    end_time: float
    positions: Tuple[Wgs84Position, ...]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def __len__(self) -> int:
        return len(self.positions)


class SegmenterComponent(ProcessingComponent):
    """Emits a segment for every ``window_s`` of positions.

    ``min_positions`` guards against near-empty windows (e.g. a single
    fix surviving an outage): such windows are dropped rather than
    classified from one sample.
    """

    def __init__(
        self,
        window_s: float = 30.0,
        min_positions: int = 3,
        name: str = "segmenter",
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.POSITION_WGS84,)),),
            output=OutputPort((Kind.SEGMENT,)),
        )
        self.window_s = window_s
        self.min_positions = min_positions
        self._window_start: Optional[float] = None
        self._buffer: List[Wgs84Position] = []
        self.segments_emitted = 0
        self.windows_dropped = 0

    def process(self, port_name: str, datum: Datum) -> None:
        position = datum.payload
        if not isinstance(position, Wgs84Position):
            return
        t = datum.timestamp
        if self._window_start is None:
            self._window_start = t
        while t >= self._window_start + self.window_s:
            self._flush(datum)
            self._window_start += self.window_s
        self._buffer.append(position)

    def _flush(self, trigger: Datum) -> None:
        end = self._window_start + self.window_s
        if len(self._buffer) >= self.min_positions:
            segment = Segment(
                start_time=self._window_start,
                end_time=end,
                positions=tuple(self._buffer),
            )
            self.segments_emitted += 1
            self.produce(
                Datum(
                    kind=Kind.SEGMENT,
                    payload=segment,
                    timestamp=end,
                    producer=self.name,
                )
            )
        elif self._buffer:
            self.windows_dropped += 1
        self._buffer = []

    # -- inspection ---------------------------------------------------------

    def pending_positions(self) -> int:
        return len(self._buffer)

    def get_window(self) -> float:
        return self.window_s
