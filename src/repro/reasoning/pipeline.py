"""Builder for the transportation-mode pipeline on a PerPos instance."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.data import Kind
from repro.core.middleware import PerPos
from repro.core.positioning import LocationProvider
from repro.reasoning.classifier import DecisionTreeClassifierComponent
from repro.reasoning.features import FeatureExtractorComponent
from repro.reasoning.hmm import HmmSmootherComponent
from repro.reasoning.segmentation import SegmenterComponent


@dataclass(frozen=True)
class ModePipeline:
    """Names of the reasoning chain's components plus the provider."""

    segmenter: str
    extractor: str
    classifier: str
    smoother: str
    provider: LocationProvider


def build_mode_pipeline(
    middleware: PerPos,
    position_producer: str,
    window_s: float = 30.0,
    stay_probability: float = 0.85,
    provider_name: str = "mode-app",
    smoothed: bool = True,
    prefix: str = "",
) -> ModePipeline:
    """Chain segmentation -> features -> tree -> HMM onto a position feed.

    ``position_producer`` is the name of any component producing
    ``position-wgs84`` data (an interpreter, a fusion component, a
    particle filter).  With ``smoothed=False`` the HMM stage is omitted,
    giving the raw-classification baseline.  ``prefix`` namespaces the
    component names so several reasoning chains can share one graph.
    """
    prefix = prefix or provider_name
    graph = middleware.graph
    segmenter = SegmenterComponent(
        window_s=window_s, name=f"{prefix}-segmenter"
    )
    extractor = FeatureExtractorComponent(name=f"{prefix}-features")
    classifier = DecisionTreeClassifierComponent(
        name=f"{prefix}-classifier"
    )
    graph.add(segmenter)
    graph.add(extractor)
    graph.add(classifier)
    graph.connect(position_producer, segmenter.name)
    graph.connect(segmenter.name, extractor.name)
    graph.connect(extractor.name, classifier.name)
    last = classifier.name
    smoother_name = ""
    if smoothed:
        smoother = HmmSmootherComponent(
            stay_probability=stay_probability, name=f"{prefix}-hmm"
        )
        graph.add(smoother)
        graph.connect(classifier.name, smoother.name)
        last = smoother.name
        smoother_name = smoother.name
    provider = middleware.create_provider(
        provider_name, accepts=(Kind.TRANSPORT_MODE,)
    )
    graph.connect(last, provider.sink.name)
    return ModePipeline(
        segmenter=segmenter.name,
        extractor=extractor.name,
        classifier=classifier.name,
        smoother=smoother_name,
        provider=provider,
    )
