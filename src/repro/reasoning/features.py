"""Feature extraction: motion statistics per segment.

Second stage of the transportation-mode pipeline.  The features are the
classic ones from the GeoLife line of work: speed statistics, heading
change rate and stop rate, all computable from timestamped positions
alone.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.reasoning.segmentation import Segment


@dataclass(frozen=True)
class SegmentFeatures:
    """Motion statistics of one segment."""

    start_time: float
    end_time: float
    mean_speed_mps: float
    max_speed_mps: float
    speed_stddev: float
    heading_change_rate_deg_s: float
    stop_fraction: float

    @property
    def mean_speed_kmh(self) -> float:
        return self.mean_speed_mps * 3.6


def extract_features(segment: Segment, stop_speed_mps: float = 0.4) -> SegmentFeatures:
    """Compute the feature vector of one segment.

    Needs at least two positions; speeds come from consecutive pairs,
    heading changes from consecutive bearings over moving pairs.
    """
    positions = segment.positions
    if len(positions) < 2:
        raise ValueError("feature extraction needs >= 2 positions")
    speeds: List[float] = []
    bearings: List[float] = []
    times: List[float] = []
    for a, b in zip(positions, positions[1:]):
        ta = a.timestamp if a.timestamp is not None else 0.0
        tb = b.timestamp if b.timestamp is not None else ta + 1.0
        dt = max(tb - ta, 1e-3)
        distance = a.distance_to(b)
        speed = distance / dt
        speeds.append(speed)
        times.append(dt)
        if distance > 0.5:
            bearings.append(a.bearing_to(b))
    heading_changes = [
        abs((b2 - b1 + 180.0) % 360.0 - 180.0)
        for b1, b2 in zip(bearings, bearings[1:])
    ]
    total_time = sum(times)
    return SegmentFeatures(
        start_time=segment.start_time,
        end_time=segment.end_time,
        mean_speed_mps=statistics.mean(speeds),
        max_speed_mps=max(speeds),
        speed_stddev=statistics.stdev(speeds) if len(speeds) > 1 else 0.0,
        heading_change_rate_deg_s=(
            sum(heading_changes) / total_time if total_time > 0 else 0.0
        ),
        stop_fraction=sum(
            1 for s in speeds if s < stop_speed_mps
        ) / len(speeds),
    )


class FeatureExtractorComponent(ProcessingComponent):
    """Segments in, feature vectors out."""

    def __init__(self, name: str = "feature-extractor") -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.SEGMENT,)),),
            output=OutputPort((Kind.SEGMENT_FEATURES,)),
        )

    def process(self, port_name: str, datum: Datum) -> None:
        segment = datum.payload
        if not isinstance(segment, Segment) or len(segment) < 2:
            return
        features = extract_features(segment)
        self.produce(
            Datum(
                kind=Kind.SEGMENT_FEATURES,
                payload=features,
                timestamp=datum.timestamp,
                producer=self.name,
            )
        )
