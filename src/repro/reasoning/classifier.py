"""Decision-tree classification of segment features.

Third stage of the transportation-mode pipeline: a compact hand-built
decision tree over the motion features, in the spirit of Zheng et al.'s
learned tree.  The thresholds separate the modes the reproduction's
trajectories exercise -- still, walking, cycling, driving -- and every
decision is exposed for inspection, which is the point of running this
*inside* the middleware rather than above it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.core.component import InputPort, OutputPort, ProcessingComponent
from repro.core.data import Datum, Kind
from repro.reasoning.features import SegmentFeatures


class TransportMode(enum.Enum):
    STILL = "still"
    WALK = "walk"
    BIKE = "bike"
    VEHICLE = "vehicle"


#: Modes in a fixed order for HMM matrices.
MODES: Tuple[TransportMode, ...] = (
    TransportMode.STILL,
    TransportMode.WALK,
    TransportMode.BIKE,
    TransportMode.VEHICLE,
)


@dataclass(frozen=True)
class ModeEstimate:
    """One classified segment: mode plus per-mode scores."""

    start_time: float
    end_time: float
    mode: TransportMode
    scores: Tuple[float, ...]  # aligned with MODES, sums to 1

    def score_of(self, mode: TransportMode) -> float:
        return self.scores[MODES.index(mode)]


def classify(features: SegmentFeatures) -> ModeEstimate:
    """The decision tree, expressed as soft per-mode scores.

    Scores keep the tree's ambiguity visible (a 7 m/s segment is
    bike-or-vehicle); the HMM stage consumes them as emission
    probabilities instead of collapsing to the argmax too early.
    """
    v = features.mean_speed_mps
    peak = features.max_speed_mps
    stops = features.stop_fraction

    scores = {mode: 0.01 for mode in MODES}
    # 0.6 m/s absorbs the apparent drift of correlated GPS error on a
    # stationary receiver while staying under slow-walk speeds.
    if v < 0.6 or stops > 0.85:
        scores[TransportMode.STILL] += 1.0
    elif v < 2.2:
        scores[TransportMode.WALK] += 1.0
        if v > 1.8 and peak > 3.0:
            scores[TransportMode.BIKE] += 0.4
    elif v < 6.5:
        scores[TransportMode.BIKE] += 1.0
        if v > 5.0 or peak > 9.0:
            scores[TransportMode.VEHICLE] += 0.4
        if v < 3.0:
            scores[TransportMode.WALK] += 0.3
    else:
        scores[TransportMode.VEHICLE] += 1.0
        if v < 9.0 and peak < 12.0:
            scores[TransportMode.BIKE] += 0.3
    total = sum(scores.values())
    normalised = tuple(scores[mode] / total for mode in MODES)
    best = MODES[max(range(len(MODES)), key=lambda i: normalised[i])]
    return ModeEstimate(
        start_time=features.start_time,
        end_time=features.end_time,
        mode=best,
        scores=normalised,
    )


class DecisionTreeClassifierComponent(ProcessingComponent):
    """Feature vectors in, raw (unsmoothed) mode estimates out."""

    def __init__(self, name: str = "mode-classifier") -> None:
        super().__init__(
            name,
            inputs=(InputPort("in", (Kind.SEGMENT_FEATURES,)),),
            output=OutputPort((Kind.TRANSPORT_MODE,)),
        )
        self.classified = 0

    def process(self, port_name: str, datum: Datum) -> None:
        features = datum.payload
        if not isinstance(features, SegmentFeatures):
            return
        estimate = classify(features)
        self.classified += 1
        self.produce(
            Datum(
                kind=Kind.TRANSPORT_MODE,
                payload=estimate,
                timestamp=datum.timestamp,
                producer=self.name,
                attributes={"smoothed": False},
            )
        )
