"""Baseline middleware for the paper's §3 comparisons (system S13).

Each §3 example ends by discussing what the same adaptation costs in
existing middleware.  To *measure* those claims rather than repeat them,
this package implements the two architectural families PerPos is compared
against:

* :mod:`repro.baselines.location_stack` -- a Location-Stack-style layered
  middleware with a fixed common position format and a fixed fusion
  layer.  Extra information (satellite count, HDOP) can only travel by
  extending the position format *in the middleware source*, after which
  it pollutes every technology's positions;
* :mod:`repro.baselines.posim` -- a PoSIM-style translucent middleware:
  sensor wrappers declare info/control features and declarative policies
  act on them.  Low-level values are reachable, but only as "the latest
  value", with no coupling to the position they belong to.
"""

from repro.baselines.location_stack import (
    LocationStackMiddleware,
    Measurement,
    STANDARD_FIELDS,
)
from repro.baselines.posim import (
    Policy,
    PosimMiddleware,
    SensorWrapper,
)

__all__ = [
    "LocationStackMiddleware",
    "Measurement",
    "STANDARD_FIELDS",
    "PosimMiddleware",
    "SensorWrapper",
    "Policy",
]
