"""A PoSIM-style translucent positioning middleware.

PoSIM (Bellavista et al. 2008) mediates heterogeneous positioning systems
through **sensor wrappers** that declare *info* features (readable
low-level values) and *control* features (settable knobs), plus a
declarative **policy** layer whose conditions are simple comparisons over
info values and whose actions set controls.

The critical property for the paper's comparison (§3.2): info access is
unsynchronised with position delivery -- "when questioned it will always
return the latest HDOP value, which may correspond to a new position."
This implementation keeps that semantics honestly: positions are
delivered to the application through a queue (as event-driven middleware
does), while ``get_info`` always reads the wrapper's current value, so a
consumer correlating the two gets stale attributions whenever delivery
lags the sensor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.geo.wgs84 import Wgs84Position


class PosimError(Exception):
    """Raised on unknown wrappers, infos or controls."""


class SensorWrapper:
    """A technology wrapper declaring info and control features.

    ``infos`` maps info names to zero-argument getters (always returning
    the *latest* value); ``controls`` maps control names to one-argument
    setters.
    """

    def __init__(
        self,
        technology: str,
        infos: Optional[Mapping[str, Callable[[], Any]]] = None,
        controls: Optional[Mapping[str, Callable[[Any], None]]] = None,
    ) -> None:
        self.technology = technology
        self._infos = dict(infos or {})
        self._controls = dict(controls or {})

    def declared_infos(self) -> List[str]:
        return sorted(self._infos)

    def declared_controls(self) -> List[str]:
        return sorted(self._controls)

    def get_info(self, name: str) -> Any:
        try:
            return self._infos[name]()
        except KeyError:
            raise PosimError(
                f"wrapper {self.technology!r} declares no info {name!r}"
            ) from None

    def set_control(self, name: str, value: Any) -> None:
        try:
            self._controls[name](value)
        except KeyError:
            raise PosimError(
                f"wrapper {self.technology!r} declares no control {name!r}"
            ) from None


@dataclass(frozen=True)
class Policy:
    """A declarative rule: comparison over an info -> control action.

    ``operator`` is one of ``<``, ``<=``, ``>``, ``>=``, ``==``, ``!=`` --
    PoSIM's conditions are "simple comparison of data values" and actions
    are "limited to passing values to operations of the sensor wrapper"
    (paper §5).
    """

    name: str
    technology: str
    info: str
    operator: str
    threshold: Any
    control: str
    control_value: Any

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }

    def condition_holds(self, value: Any) -> bool:
        if value is None:
            return False
        try:
            op = self._OPS[self.operator]
        except KeyError:
            raise PosimError(f"unknown operator {self.operator!r}") from None
        return bool(op(value, self.threshold))


class PosimMiddleware:
    """Wrapper registry + policy engine + queued position delivery."""

    def __init__(self, delivery_lag_updates: int = 0) -> None:
        """``delivery_lag_updates``: positions queued behind this many
        newer updates before the application sees them, modelling the
        event/processing latency between sensing and delivery."""
        if delivery_lag_updates < 0:
            raise ValueError("delivery lag cannot be negative")
        self._wrappers: Dict[str, SensorWrapper] = {}
        self._policies: List[Policy] = []
        self._queue: deque = deque()
        self._lag = delivery_lag_updates
        self._listeners: List[Callable[[Wgs84Position], None]] = []
        self.policy_firings: List[Tuple[str, Any]] = []

    # -- wrappers --------------------------------------------------------------

    def register_wrapper(self, wrapper: SensorWrapper) -> None:
        if wrapper.technology in self._wrappers:
            raise PosimError(
                f"wrapper for {wrapper.technology!r} already registered"
            )
        self._wrappers[wrapper.technology] = wrapper

    def wrapper(self, technology: str) -> SensorWrapper:
        try:
            return self._wrappers[technology]
        except KeyError:
            raise PosimError(f"no wrapper for {technology!r}") from None

    def get_info(self, technology: str, name: str) -> Any:
        """Cross-level info access -- always the wrapper's LATEST value."""
        return self.wrapper(technology).get_info(name)

    def set_control(self, technology: str, name: str, value: Any) -> None:
        self.wrapper(technology).set_control(name, value)

    # -- policies -----------------------------------------------------------------

    def add_policy(self, policy: Policy) -> None:
        self._policies.append(policy)

    def _evaluate_policies(self) -> None:
        for policy in self._policies:
            value = self.get_info(policy.technology, policy.info)
            if policy.condition_holds(value):
                self.set_control(
                    policy.technology, policy.control, policy.control_value
                )
                self.policy_firings.append((policy.name, value))

    # -- position flow ----------------------------------------------------------------

    def publish_position(
        self, technology: str, position: Wgs84Position
    ) -> None:
        """Called by wrapper plumbing when a technology has a new fix.

        Policies run immediately (they see fresh info); the application
        sees the position only after the delivery lag drains.
        """
        self._evaluate_policies()
        self._queue.append(position)
        while len(self._queue) > self._lag:
            delivered = self._queue.popleft()
            for listener in list(self._listeners):
                listener(delivered)

    def add_position_listener(
        self, listener: Callable[[Wgs84Position], None]
    ) -> Callable[[], None]:
        self._listeners.append(listener)

        def _remove() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return _remove

    def flush(self) -> None:
        """Drain queued positions (end of run)."""
        while self._queue:
            delivered = self._queue.popleft()
            for listener in list(self._listeners):
                listener(delivered)
