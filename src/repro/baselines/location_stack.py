"""A Location-Stack-style layered positioning middleware.

The Location Stack (Hightower et al. 2002) prescribes fixed layers --
Sensors produce technology-specific data, the Measurements layer converts
everything into one common measurement format, a fixed Fusion layer
merges them -- and applications only see the top.  PerPos's §3
comparisons rest on two consequences of that architecture, both of which
this implementation makes measurable:

* **closed format**: the measurement schema is fixed at middleware
  construction.  Application code cannot add a field; the §3.1 satellite
  filter therefore requires a *middleware source change* (modelled here
  as constructing the middleware with an extended schema).
* **format pollution**: once extended, the field is part of the common
  format for *every* technology -- WiFi measurements carry a satellite
  count slot that is always empty.  §3.4: "This solution does not scale
  well; if there is a large variance in the needed information for
  different applications and positioning technologies ... this is
  problematic."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.geo.wgs84 import Wgs84Position

#: The stack's common measurement schema as shipped.
STANDARD_FIELDS: Tuple[str, ...] = (
    "latitude_deg",
    "longitude_deg",
    "accuracy_m",
    "timestamp",
    "technology",
)


class FormatError(Exception):
    """A measurement violated the middleware's fixed format."""


@dataclass(frozen=True)
class Measurement:
    """One entry in the common measurement format.

    ``values`` must contain exactly the middleware's schema fields --
    unknown fields are rejected, which is the closed-format property.
    """

    values: Mapping[str, Any]

    def get(self, name: str) -> Any:
        return self.values.get(name)


class _SensorAdapter:
    """Wraps a technology-specific callable into the measurement layer."""

    def __init__(
        self,
        technology: str,
        produce: Callable[[float], List[Dict[str, Any]]],
    ) -> None:
        self.technology = technology
        self.produce = produce


class LocationStackMiddleware:
    """Fixed-layer stack: sensors -> measurements -> fusion -> application.

    ``extra_fields`` models a middleware *source modification*: it is the
    only way to admit new information, and every measurement -- whatever
    its technology -- then carries the field.
    """

    def __init__(self, extra_fields: Sequence[str] = ()) -> None:
        self._fields: Tuple[str, ...] = STANDARD_FIELDS + tuple(extra_fields)
        self._extra_fields = tuple(extra_fields)
        self._adapters: List[_SensorAdapter] = []
        self._measurements: List[Measurement] = []
        self._fused: List[Measurement] = []
        self.source_modified = bool(extra_fields)

    # -- schema ------------------------------------------------------------

    def position_format_fields(self) -> Tuple[str, ...]:
        return self._fields

    def _admit(self, technology: str, raw: Dict[str, Any]) -> Measurement:
        unknown = set(raw) - set(self._fields)
        if unknown:
            raise FormatError(
                f"fields {sorted(unknown)} are not part of the common"
                " position format; extending it requires middleware"
                " source access"
            )
        # Every schema field is present on every measurement: technologies
        # that cannot supply a field carry it as None (format pollution).
        values = {name: raw.get(name) for name in self._fields}
        values["technology"] = technology
        return Measurement(values)

    # -- layers --------------------------------------------------------------

    def add_sensor(
        self,
        technology: str,
        produce: Callable[[float], List[Dict[str, Any]]],
    ) -> None:
        """Register a sensor adapter (the Sensors layer)."""
        self._adapters.append(_SensorAdapter(technology, produce))

    def pump(self, now: float) -> int:
        """Run sensors -> measurements -> fusion for time ``now``."""
        new = 0
        for adapter in self._adapters:
            for raw in adapter.produce(now):
                measurement = self._admit(adapter.technology, raw)
                self._measurements.append(measurement)
                new += 1
        if new:
            self._fuse(now)
        return new

    def _fuse(self, now: float, window_s: float = 10.0) -> None:
        """The fixed fusion engine: accuracy-weighted selection.

        Applications cannot replace or extend this step -- plugging a
        particle filter in as fusion "will violate the architecture of
        the middleware" (paper §1, citing Graumann et al.).
        """
        recent = [
            m
            for m in self._measurements
            if now - (m.get("timestamp") or 0.0) <= window_s
            and m.get("latitude_deg") is not None
        ]
        if not recent:
            return
        best = min(
            recent,
            key=lambda m: (
                m.get("accuracy_m")
                if m.get("accuracy_m") is not None
                else 1e9
            ),
        )
        self._fused.append(best)

    # -- application API (the only exposed surface) -----------------------------

    def last_position(self) -> Optional[Wgs84Position]:
        if not self._fused:
            return None
        m = self._fused[-1]
        return Wgs84Position(
            m.get("latitude_deg"),
            m.get("longitude_deg"),
            accuracy_m=m.get("accuracy_m"),
            timestamp=m.get("timestamp"),
        )

    def last_measurement(self) -> Optional[Measurement]:
        return self._fused[-1] if self._fused else None

    def fused_measurements(self) -> List[Measurement]:
        return list(self._fused)

    # -- pollution metrics (experiment E7) ----------------------------------------

    def pollution_report(self) -> Dict[str, float]:
        """Per extended field: fraction of measurements carrying None.

        Quantifies §3.4's scaling complaint: a satellite-count field
        added for GPS is dead weight on every WiFi measurement.
        """
        report: Dict[str, float] = {}
        if not self._measurements:
            return {name: 0.0 for name in self._extra_fields}
        for name in self._extra_fields:
            empty = sum(
                1 for m in self._measurements if m.get(name) is None
            )
            report[name] = empty / len(self._measurements)
        return report
