"""Power management with PoSIM-style primitives (paper §3.3 discussion).

"How to implement a power consumption scheme using PoSIM is discussed in
[7].  They suggest to define a PowerConsumption PoSIM control feature and
allow it to be set to for example low and high.  Again, a Sensor Wrapper
that implements the feature must be defined.  A policy of when to invoke
the feature can be written."

This module builds exactly that: a GPS sensor wrapper exposing a
``speed`` info and a ``power`` control with two fixed rates, and
declarative threshold policies switching between them.  What PoSIM's
model *cannot* express -- and what the comparison benchmark quantifies --
is EnTracked's dynamic sleep scheduling (``sleep = threshold / speed``)
and its accelerometer-gated wakeup: policy actions are "limited to
passing values to operations of the sensor wrapper", so the duty cycle
can only jump between the two preset rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.posim import Policy, PosimMiddleware, SensorWrapper
from repro.energy.power import DeviceEnergyModel
from repro.geo.wgs84 import Wgs84Position
from repro.sensors.gps import GpsReceiver, OPEN_SKY, constant_environment
from repro.sensors.trajectory import Trajectory


@dataclass
class PosimPowerResult:
    """Outcome of one PoSIM-policy tracking run (mirrors EnTrackedResult)."""

    duration_s: float
    energy_j: float
    energy_breakdown: Dict[str, float]
    average_power_w: float
    gps_on_fraction: float
    transmissions: int
    positions_reported: int
    mean_error_m: float
    p95_error_m: float
    max_error_m: float


class PosimPowerScenario:
    """GPS tracking managed by PoSIM threshold policies.

    The wrapper's ``power`` control selects between two sampling
    periods; policies flip it on a speed threshold.  Sampling, policy
    evaluation and energy accounting run in a 1 Hz loop, matching the
    EnTracked experiment's cadence so results are directly comparable.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        seed: int = 0,
        high_period_s: float = 1.0,
        low_period_s: float = 30.0,
        speed_threshold_mps: float = 0.3,
    ) -> None:
        self.trajectory = trajectory
        self.gps = GpsReceiver(
            "gps",
            trajectory,
            constant_environment(OPEN_SKY),
            seed=seed,
            chunk_size=None,
        )
        self.energy = DeviceEnergyModel()
        self._period = {"high": high_period_s, "low": low_period_s}
        self._state = {"power": "high", "speed": 0.0}
        self.middleware = PosimMiddleware()
        self.middleware.register_wrapper(
            SensorWrapper(
                "gps",
                infos={"speed": lambda: self._state["speed"]},
                controls={
                    "power": lambda v: self._state.__setitem__("power", v)
                },
            )
        )
        self.middleware.add_policy(
            Policy(
                "slow-to-low", "gps", "speed", "<",
                speed_threshold_mps, "power", "low",
            )
        )
        self.middleware.add_policy(
            Policy(
                "fast-to-high", "gps", "speed", ">=",
                speed_threshold_mps, "power", "high",
            )
        )
        self._last_published: Optional[Wgs84Position] = None
        self._last_published_time: Optional[float] = None
        self._next_sample = 0.0

    def run(self, duration_s: float) -> PosimPowerResult:
        reported: List[Wgs84Position] = []
        self.middleware.add_position_listener(reported.append)
        errors: List[float] = []
        t = 0.0
        while t < duration_s:
            if t >= self._next_sample:
                published = self._sample_and_publish(t)
                if published:
                    self._next_sample = (
                        t + self._period[self._state["power"]]
                    )
                    # In "low" the receiver powers down between samples;
                    # in "high" it stays tracking continuously.
                    if self._state["power"] == "low":
                        self.energy.gps_off(t)
                else:
                    # Still acquiring (or no fix): retry next tick.
                    self._next_sample = t + 1.0
            self.energy.advance(t)
            truth = self.trajectory.position_at(t)
            if self._last_published is not None:
                errors.append(truth.distance_to(self._last_published))
            t += 1.0
        self.energy.advance(duration_s)
        errors.sort()
        mean = sum(errors) / len(errors) if errors else float("nan")
        p95 = errors[int(0.95 * (len(errors) - 1))] if errors else float("nan")
        return PosimPowerResult(
            duration_s=duration_s,
            energy_j=self.energy.total_joules(),
            energy_breakdown=self.energy.breakdown(),
            average_power_w=self.energy.average_power_w(),
            gps_on_fraction=self.energy.gps_on_seconds / duration_s,
            transmissions=self.energy.transmissions,
            positions_reported=len(reported),
            mean_error_m=mean,
            p95_error_m=p95,
            max_error_m=errors[-1] if errors else float("nan"),
        )

    def _sample_and_publish(self, t: float) -> bool:
        """Try to obtain and publish a fix; False while acquiring."""
        self.energy.gps_on(t)
        if not self.energy.gps_ready(t):
            return False
        self.gps.sample(t)
        epochs = [e for e in self.gps.epochs if e.time_s <= t]
        if not epochs or epochs[-1].reported_position is None:
            return False
        epoch = epochs[-1]
        position = Wgs84Position(
            epoch.reported_position.latitude_deg,
            epoch.reported_position.longitude_deg,
            timestamp=epoch.time_s,
        )
        if (
            self._last_published is not None
            and self._last_published_time is not None
            and epoch.time_s > self._last_published_time
        ):
            self._state["speed"] = self._last_published.distance_to(
                position
            ) / (epoch.time_s - self._last_published_time)
        self._last_published = position
        self._last_published_time = epoch.time_s
        self.energy.record_transmission(len(repr(position)))
        self.middleware.publish_position("gps", position)
        return True
