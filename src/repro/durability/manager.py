"""Snapshot capture, crash-recovery restore, and the durability manager.

``capture_state`` walks the existing reflection seams -- lane stats,
component ``state_snapshot``, supervisor breakers, gateway DLQ, hub
metric series -- into one plain dict; ``restore_state`` rebuilds a live
engine from that dict and replays the journal entries appended after
it.  The replay model is deterministic re-execution: submits re-cross
``engine.submit`` (verdicts and hub events recompute identically) and
drain rounds re-cross the batched dispatch path via
``engine.replay_round``, which reproduces the original per-lane batch
sizes independent of the current scheduler cursor.  Sink state is
captured in the snapshot, so snapshot + replay ≡ the uninterrupted run
at every drain boundary.

:class:`DurabilityManager` ties it together: it owns the store, attaches
the journal to the engine, auto-snapshots every ``snapshot_every``
entries, records warm-handoff migrations, and surfaces everything to
the PSL and the infrastructure report through the graph's durability
slot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.durability.codec import decode_value, encode_value
from repro.durability.journal import DurabilityJournal
from repro.durability.store import StateStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.graph import ProcessingGraph
    from repro.runtime.engine import PositioningEngine

#: Snapshot schema version, checked on restore.
STATE_VERSION = 1

#: Bound on the manager's recorded migration history.
MAX_MIGRATIONS = 256


class DurabilityError(Exception):
    """Raised on invalid durability configuration or unusable state."""


def capture_state(
    graph: "ProcessingGraph",
    engine: "PositioningEngine",
    *,
    gateway: Optional[Any] = None,
) -> Dict[str, Any]:
    """Collect full engine state as a plain (codec-ready) dict.

    Histogram series are deliberately not captured: their bucket
    contents cannot be merged losslessly on restore, and every figure
    derived from them is a latency distribution replay regenerates.
    """
    supervisor = graph.supervisor
    hub = graph.instrumentation
    metrics: Optional[List[Dict[str, Any]]] = None
    if hub is not None:
        metrics = [
            {"kind": kind, "name": name, "labels": labels, "value": inst.value}
            for kind, name, labels, inst in hub.registry.series()
            if kind in ("counter", "gauge")
        ]
    return {
        "version": STATE_VERSION,
        "engine": {
            "rounds": engine.rounds,
            "drained_total": engine.drained_total,
            "truncations": engine.truncations,
            "last_drain_truncated": engine.last_drain_truncated,
            "stamp_targets": engine.stamp_targets,
            "scheduler": engine.scheduler.describe(),
        },
        "lanes": [
            {
                "target": lane.target_id,
                "source": lane.source.name,
                "weight": lane.weight,
                "submitted": lane.submitted,
                "batches": lane.batches,
                "queue": lane.queue.state_snapshot(),
            }
            for lane in engine.lanes()
        ],
        "components": {
            component.name: state
            for component in graph.components()
            if (state := component.state_snapshot()) is not None
        },
        "supervision": (
            supervisor.state_snapshot() if supervisor is not None else None
        ),
        "gateway_dlq": (
            gateway.dlq.state_snapshot() if gateway is not None else None
        ),
        "metrics": metrics,
        "topology": {
            "components": sorted(c.name for c in graph.components()),
            "connections": len(graph.connections()),
        },
    }


def restore_state(
    graph: "ProcessingGraph",
    engine: "PositioningEngine",
    snapshot: Dict[str, Any],
    entries: List[Dict[str, Any]],
    *,
    gateway: Optional[Any] = None,
) -> int:
    """Rebuild ``engine`` from a snapshot, then replay journal entries.

    The graph must already be constructed with the snapshot's topology
    (durability stores *state*, not structure -- structure is code).
    Returns the number of replayed entries.
    """
    version = snapshot.get("version")
    if version != STATE_VERSION:
        raise DurabilityError(
            f"unsupported snapshot version {version!r};"
            f" this build reads version {STATE_VERSION}"
        )
    present = {component.name for component in graph.components()}
    needed = set(snapshot["topology"]["components"])
    missing = sorted(needed - present)
    if missing:
        raise DurabilityError(
            f"snapshot topology mismatch: graph is missing"
            f" components {missing}"
        )

    journal = engine.journal
    was_suspended = journal.suspended if journal is not None else False
    if journal is not None:
        journal.suspended = True
    try:
        # -- engine counters + lanes (queues re-filled in place) ---------
        engine_state = snapshot["engine"]
        engine.rounds = engine_state["rounds"]
        engine.drained_total = engine_state["drained_total"]
        engine.truncations = engine_state["truncations"]
        engine.last_drain_truncated = engine_state["last_drain_truncated"]
        engine.stamp_targets = engine_state["stamp_targets"]
        for lane in engine.lanes():
            engine.untrack(lane.target_id)
        for lane_state in snapshot["lanes"]:
            queue_state = lane_state["queue"]
            lane = engine.track(
                lane_state["target"],
                lane_state["source"],
                capacity=queue_state["capacity"],
                policy=queue_state["policy"],
                weight=lane_state["weight"],
            )
            lane.queue.state_restore(queue_state)
            lane.submitted = lane_state["submitted"]
            lane.batches = lane_state["batches"]

        # -- component / supervision / DLQ state -------------------------
        for name, state in snapshot["components"].items():
            graph.component(name).state_restore(state)
        supervision = snapshot.get("supervision")
        if supervision is not None and graph.supervisor is not None:
            graph.supervisor.state_restore(supervision)
        dlq_state = snapshot.get("gateway_dlq")
        if dlq_state is not None and gateway is not None:
            gateway.dlq.state_restore(dlq_state)

        # -- hub metric series (counters inc-to-value, gauges set) -------
        metrics = snapshot.get("metrics")
        hub = graph.instrumentation
        if metrics is not None and hub is not None:
            registry = hub.registry
            for series in metrics:
                labels = series["labels"]
                if series["kind"] == "counter":
                    counter = registry.counter(series["name"], **labels)
                    delta = series["value"] - counter.value
                    if delta:
                        counter.inc(delta)
                elif series["kind"] == "gauge":
                    registry.gauge(series["name"], **labels).set(
                        series["value"]
                    )

        # -- journal replay: deterministic re-execution ------------------
        replayed = 0
        for entry in entries:
            entry_type = entry.get("type")
            if entry_type == "submit":
                engine.submit(entry["target"], entry["datum"])
            elif entry_type == "drain":
                engine.replay_round(
                    [(target, count) for target, count in entry["lanes"]]
                )
            elif entry_type == "track":
                engine.track(
                    entry["target"],
                    entry["source"],
                    capacity=entry["capacity"],
                    policy=entry["policy"],
                    weight=entry["weight"],
                )
            elif entry_type == "untrack":
                engine.untrack(entry["target"])
            elif entry_type == "policy":
                engine.set_policy(
                    entry["target"],
                    policy=entry["policy"],
                    capacity=entry["capacity"],
                    weight=entry["weight"],
                )
            else:
                # Foreign entry kinds (e.g. persisted DLQ state) are
                # not engine mutations; skip without counting.
                continue
            replayed += 1
    finally:
        if journal is not None:
            journal.suspended = was_suspended
    return replayed


def restore_from_store(
    graph: "ProcessingGraph",
    engine: "PositioningEngine",
    store: StateStore,
    *,
    gateway: Optional[Any] = None,
) -> int:
    """Load the latest snapshot + journal tail from ``store`` and restore."""
    loaded = store.load_latest()
    if loaded is None:
        raise DurabilityError("state store holds no snapshot to restore from")
    snapshot, entries = loaded
    return restore_state(
        graph,
        engine,
        decode_value(snapshot),
        [decode_value(entry) for entry in entries],
        gateway=gateway,
    )


class DurabilityManager:
    """Owns the store, the journal, and the snapshot/restore lifecycle."""

    def __init__(
        self,
        graph: "ProcessingGraph",
        store: StateStore,
        *,
        snapshot_every: Optional[int] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise DurabilityError("snapshot_every must be >= 1")
        self.graph = graph
        self.store = store
        self.snapshot_every = snapshot_every
        self.journal: Optional[DurabilityJournal] = None
        self.snapshots_taken = 0
        self.restores = 0
        self.last_snapshot_bytes = 0
        self._migrations: List[Dict[str, Any]] = []

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> None:
        """Install the journal on the graph's engine and claim the slot."""
        engine = self._engine()
        self.journal = DurabilityJournal(
            self.store,
            snapshot_every=self.snapshot_every,
            snapshot_fn=self.snapshot,
        )
        engine.journal = self.journal
        self.graph.set_durability(self)

    def detach(self) -> None:
        """Remove the journal and release the graph slot; store stays."""
        engine = self.graph.engine
        if engine is not None and engine.journal is self.journal:
            engine.journal = None
        self.journal = None
        if self.graph.durability is self:
            self.graph.set_durability(None)
        self.store.close()

    def _engine(self) -> "PositioningEngine":
        engine = self.graph.engine
        if engine is None:
            raise DurabilityError(
                "no positioning engine installed; durability journals"
                " through the engine -- enable the runtime first"
            )
        return engine

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Persist one full checkpoint; returns summary info."""
        engine = self._engine()
        state = capture_state(
            self.graph, engine, gateway=self.graph.gateway
        )
        n_bytes = self.store.save_snapshot(encode_value(state))
        self.snapshots_taken += 1
        self.last_snapshot_bytes = n_bytes
        if self.journal is not None:
            self.journal.since_snapshot = 0
        hub = self.graph.instrumentation
        if hub is not None:
            hub.durability_snapshot(n_bytes)
        return {
            "bytes": n_bytes,
            "lanes": len(state["lanes"]),
            "pending": engine.depth_total(),
            "snapshots_taken": self.snapshots_taken,
        }

    def restore(self) -> int:
        """Rebuild the engine from the store; returns replayed entries."""
        engine = self._engine()
        replayed = restore_from_store(
            self.graph, engine, self.store, gateway=self.graph.gateway
        )
        self.restores += 1
        hub = self.graph.instrumentation
        if hub is not None:
            hub.durability_restore(replayed)
        return replayed

    # -- gateway DLQ persistence (survives disable/enable cycles) ----------

    def save_dlq_state(self, dlq_state: Dict[str, Any]) -> None:
        """Persist DLQ records as a journal entry (type ``dlq_state``)."""
        self.store.append(
            {"type": "dlq_state", "dlq": encode_value(dlq_state)}
        )

    def load_dlq_state(self) -> Optional[Dict[str, Any]]:
        """Latest persisted DLQ records, or None if never saved."""
        entry = self.store.latest_entry("dlq_state")
        if entry is None:
            return None
        return decode_value(entry["dlq"])

    # -- migration bookkeeping (driven by ShardedEngine) -------------------

    def record_migration(self, info: Dict[str, Any]) -> None:
        self._migrations.append(dict(info))
        if len(self._migrations) > MAX_MIGRATIONS:
            del self._migrations[: len(self._migrations) - MAX_MIGRATIONS]
        hub = self.graph.instrumentation
        if hub is not None:
            hub.durability_migration(info.get("pause_s", 0.0))

    def migrations(self) -> List[Dict[str, Any]]:
        return [dict(info) for info in self._migrations]

    # -- inspection --------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Reflective summary for the PSL and the infrastructure report."""
        return {
            "store": self.store.describe(),
            "snapshot_every": self.snapshot_every,
            "snapshots_taken": self.snapshots_taken,
            "restores": self.restores,
            "last_snapshot_bytes": self.last_snapshot_bytes,
            "migrations": len(self._migrations),
            "journal": (
                self.journal.describe() if self.journal is not None else None
            ),
        }
