"""Durable state: snapshot/restore, crash-recovery replay, warm handoff.

Everything in the engine is in-memory and dies with the process; this
package makes *where state lives* a pluggable policy instead of engine
logic.  A :class:`StateStore` (stdlib backends: in-memory, JSON-lines
append log, sqlite) receives full snapshots of engine state — lanes,
queue contents, component state, supervision, gateway dead letters,
hub counters — plus incremental journal entries between snapshots, and
:func:`restore_state` rebuilds a live engine from the latest snapshot
and replays the journal deterministically.
"""

from repro.durability.codec import decode_value, encode_value
from repro.durability.journal import DurabilityJournal
from repro.durability.manager import (
    DurabilityError,
    DurabilityManager,
    capture_state,
    restore_from_store,
    restore_state,
)
from repro.durability.store import (
    JsonLinesStateStore,
    MemoryStateStore,
    SqliteStateStore,
    StateStore,
)

__all__ = [
    "DurabilityError",
    "DurabilityJournal",
    "DurabilityManager",
    "JsonLinesStateStore",
    "MemoryStateStore",
    "SqliteStateStore",
    "StateStore",
    "capture_state",
    "decode_value",
    "encode_value",
    "restore_from_store",
    "restore_state",
]
