"""JSON-safe encoding of engine state.

State seams (:meth:`IngestionQueue.state_snapshot`,
:meth:`ProcessingComponent.state_snapshot`, supervisor and DLQ
snapshots) return *raw* Python objects, including :class:`Datum`
instances and tuples.  The store layer speaks JSON, so the manager
passes the whole state dict through :func:`encode_value` once before
persisting and through :func:`decode_value` after loading.

Markers:

- ``{"__datum__": {...}}`` — a :class:`repro.core.data.Datum`
- ``{"__tuple__": [...]}`` — a tuple (JSON would flatten it to a list)
- ``{"__pickle__": "<base64>"}`` — last resort for payload objects that
  are not JSON-representable; round-trips anything picklable
"""

import base64
import pickle
from typing import Any

from repro.core.data import Datum

_SCALARS = (str, int, float, bool, type(None))


def encode_value(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable primitives."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, Datum):
        return {
            "__datum__": {
                "kind": value.kind,
                "payload": encode_value(value.payload),
                "timestamp": value.timestamp,
                "producer": value.producer,
                "attributes": encode_value(dict(value.attributes)),
            }
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                # Non-string keys (e.g. DLQ seq ints) survive as a
                # pickled blob alongside string-keyed siblings.
                return _pickle_blob(value)
            encoded[key] = encode_value(item)
        return encoded
    return _pickle_blob(value)


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if "__datum__" in value and len(value) == 1:
            fields = value["__datum__"]
            return Datum(
                kind=fields["kind"],
                payload=decode_value(fields["payload"]),
                timestamp=fields["timestamp"],
                producer=fields.get("producer", ""),
                attributes=decode_value(fields.get("attributes", {})),
            )
        if "__tuple__" in value and len(value) == 1:
            return tuple(decode_value(item) for item in value["__tuple__"])
        if "__pickle__" in value and len(value) == 1:
            return pickle.loads(base64.b64decode(value["__pickle__"]))
        return {key: decode_value(item) for key, item in value.items()}
    return value


def _pickle_blob(value: Any) -> Any:
    return {
        "__pickle__": base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    }
