"""Incremental journal between full snapshots.

The engine calls these hooks on every mutation (submit, drain round,
track/untrack, backpressure-policy change); each becomes one appended
store entry.  Crash recovery loads the latest snapshot and replays the
entries after it in order, which re-executes the same deterministic
pipeline the live run performed — exactly-once at drain boundaries.

``snapshot_every`` bounds replay length: after that many entries the
journal invokes the manager's snapshot callback, starting a fresh
generation.
"""

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.data import Datum
from repro.durability.codec import encode_value
from repro.durability.store import StateStore


class DurabilityJournal:
    """Appends engine mutations to a :class:`StateStore`."""

    def __init__(
        self,
        store: StateStore,
        *,
        snapshot_every: Optional[int] = None,
        snapshot_fn: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.store = store
        self.snapshot_every = snapshot_every
        self.snapshot_fn = snapshot_fn
        self.entries_written = 0
        self.since_snapshot = 0
        self.bytes_written = 0
        #: Re-entrancy latch: replay must not re-journal its own effects.
        self.suspended = False

    # -- engine hooks ------------------------------------------------------

    def record_submit(self, target_id: str, datum: Datum) -> None:
        self._append(
            {
                "type": "submit",
                "target": target_id,
                "datum": encode_value(datum),
            }
        )

    def record_drain(self, lane_counts: List[Tuple[str, int]]) -> None:
        self._append(
            {
                "type": "drain",
                "lanes": [[target, count] for target, count in lane_counts],
            }
        )

    def record_track(
        self, target_id: str, source: str, capacity: int, policy: str, weight: int
    ) -> None:
        self._append(
            {
                "type": "track",
                "target": target_id,
                "source": source,
                "capacity": capacity,
                "policy": policy,
                "weight": weight,
            }
        )

    def record_untrack(self, target_id: str) -> None:
        self._append({"type": "untrack", "target": target_id})

    def record_policy(
        self,
        target_id: str,
        policy: Optional[str],
        capacity: Optional[int],
        weight: Optional[int],
    ) -> None:
        self._append(
            {
                "type": "policy",
                "target": target_id,
                "policy": policy,
                "capacity": capacity,
                "weight": weight,
            }
        )

    # -- internals ---------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        if self.suspended:
            return
        self.bytes_written += self.store.append(entry)
        self.entries_written += 1
        self.since_snapshot += 1
        if (
            self.snapshot_every is not None
            and self.snapshot_fn is not None
            and self.since_snapshot >= self.snapshot_every
        ):
            self.snapshot_fn()
            self.since_snapshot = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "entries_written": self.entries_written,
            "since_snapshot": self.since_snapshot,
            "bytes_written": self.bytes_written,
            "snapshot_every": self.snapshot_every,
        }
