"""Pluggable state stores: where durable engine state lives.

A :class:`StateStore` persists two record kinds:

- **snapshots** — full checkpoints of engine state (already
  codec-encoded to JSON-safe primitives by the manager);
- **entries** — incremental journal records appended between
  snapshots (submits, drain rounds, track/untrack, policy changes).

``load_latest`` returns the newest snapshot plus every entry appended
*after* it, which is exactly what crash recovery replays.  All three
backends are stdlib-only: an in-memory store for tests, a JSON-lines
append log, and sqlite.
"""

import json
import sqlite3
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Tuple


class StateStore(ABC):
    """Abstract persistence seam for snapshots and journal entries."""

    @abstractmethod
    def save_snapshot(self, state: Dict[str, Any]) -> int:
        """Persist a full snapshot; return its serialized size in bytes."""

    @abstractmethod
    def append(self, entry: Dict[str, Any]) -> int:
        """Append one journal entry; return its serialized size in bytes."""

    @abstractmethod
    def load_latest(
        self,
    ) -> Optional[Tuple[Dict[str, Any], List[Dict[str, Any]]]]:
        """Return ``(snapshot, entries_after_it)`` or ``None`` if empty."""

    @abstractmethod
    def latest_entry(self, entry_type: str) -> Optional[Dict[str, Any]]:
        """Newest journal entry whose ``"type"`` matches, or ``None``."""

    @abstractmethod
    def describe(self) -> Dict[str, Any]:
        """Introspection summary (backend, counts, location)."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backend resources; safe to call twice."""


class MemoryStateStore(StateStore):
    """In-memory store; JSON round-trips records to catch encoding bugs."""

    def __init__(self) -> None:
        self._snapshots: List[Dict[str, Any]] = []
        self._entries: List[Tuple[int, Dict[str, Any]]] = []

    def save_snapshot(self, state: Dict[str, Any]) -> int:
        text = json.dumps(state)
        self._snapshots.append(json.loads(text))
        return len(text.encode("utf-8"))

    def append(self, entry: Dict[str, Any]) -> int:
        text = json.dumps(entry)
        self._entries.append((len(self._snapshots), json.loads(text)))
        return len(text.encode("utf-8"))

    def load_latest(
        self,
    ) -> Optional[Tuple[Dict[str, Any], List[Dict[str, Any]]]]:
        if not self._snapshots:
            return None
        generation = len(self._snapshots)
        after = [
            entry for (gen, entry) in self._entries if gen >= generation
        ]
        return self._snapshots[-1], after

    def latest_entry(self, entry_type: str) -> Optional[Dict[str, Any]]:
        for _, entry in reversed(self._entries):
            if entry.get("type") == entry_type:
                return entry
        return None

    def describe(self) -> Dict[str, Any]:
        return {
            "backend": "memory",
            "snapshots": len(self._snapshots),
            "entries": len(self._entries),
        }


class JsonLinesStateStore(StateStore):
    """Append-only JSON-lines ledger: one record per line.

    Each line is ``{"kind": "snapshot"|"entry", "seq": n, "data": ...}``.
    Appends reopen the file per record so a crash between writes loses
    at most the record being written; a truncated trailing line (torn
    write) is skipped on load.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._seq = 0
        for record in self._read_records():
            self._seq = max(self._seq, record.get("seq", 0))

    def _read_records(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError:
                        # Torn trailing write from a crash mid-append.
                        continue
        except FileNotFoundError:
            pass
        return records

    def _write(self, kind: str, data: Dict[str, Any]) -> int:
        self._seq += 1
        line = json.dumps({"kind": kind, "seq": self._seq, "data": data})
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return len(line.encode("utf-8"))

    def save_snapshot(self, state: Dict[str, Any]) -> int:
        return self._write("snapshot", state)

    def append(self, entry: Dict[str, Any]) -> int:
        return self._write("entry", entry)

    def load_latest(
        self,
    ) -> Optional[Tuple[Dict[str, Any], List[Dict[str, Any]]]]:
        snapshot: Optional[Dict[str, Any]] = None
        after: List[Dict[str, Any]] = []
        for record in self._read_records():
            if record.get("kind") == "snapshot":
                snapshot = record["data"]
                after = []
            elif record.get("kind") == "entry" and snapshot is not None:
                after.append(record["data"])
        if snapshot is None:
            return None
        return snapshot, after

    def latest_entry(self, entry_type: str) -> Optional[Dict[str, Any]]:
        found: Optional[Dict[str, Any]] = None
        for record in self._read_records():
            if (
                record.get("kind") == "entry"
                and record["data"].get("type") == entry_type
            ):
                found = record["data"]
        return found

    def describe(self) -> Dict[str, Any]:
        records = self._read_records()
        return {
            "backend": "jsonl",
            "path": self.path,
            "snapshots": sum(
                1 for r in records if r.get("kind") == "snapshot"
            ),
            "entries": sum(1 for r in records if r.get("kind") == "entry"),
        }


class SqliteStateStore(StateStore):
    """Sqlite-backed store; ``:memory:`` works for tests."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            "  seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            "  kind TEXT NOT NULL,"
            "  data TEXT NOT NULL"
            ")"
        )
        self._conn.commit()

    def _write(self, kind: str, data: Dict[str, Any]) -> int:
        text = json.dumps(data)
        self._conn.execute(
            "INSERT INTO records (kind, data) VALUES (?, ?)", (kind, text)
        )
        self._conn.commit()
        return len(text.encode("utf-8"))

    def save_snapshot(self, state: Dict[str, Any]) -> int:
        return self._write("snapshot", state)

    def append(self, entry: Dict[str, Any]) -> int:
        return self._write("entry", entry)

    def load_latest(
        self,
    ) -> Optional[Tuple[Dict[str, Any], List[Dict[str, Any]]]]:
        row = self._conn.execute(
            "SELECT seq, data FROM records WHERE kind = 'snapshot'"
            " ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        seq, text = row
        entries = [
            json.loads(data)
            for (data,) in self._conn.execute(
                "SELECT data FROM records"
                " WHERE kind = 'entry' AND seq > ? ORDER BY seq",
                (seq,),
            )
        ]
        return json.loads(text), entries

    def latest_entry(self, entry_type: str) -> Optional[Dict[str, Any]]:
        for (data,) in self._conn.execute(
            "SELECT data FROM records WHERE kind = 'entry'"
            " ORDER BY seq DESC"
        ):
            entry = json.loads(data)
            if entry.get("type") == entry_type:
                return entry
        return None

    def describe(self) -> Dict[str, Any]:
        counts = dict(
            self._conn.execute(
                "SELECT kind, COUNT(*) FROM records GROUP BY kind"
            )
        )
        return {
            "backend": "sqlite",
            "path": self.path,
            "snapshots": counts.get("snapshot", 0),
            "entries": counts.get("entry", 0),
        }

    def close(self) -> None:
        self._conn.close()
