"""PerPos reproduction: a translucent positioning middleware.

Reproduction of Langdal, Schougaard, Kjaergaard & Toftkjaer, "PerPos: A
Translucent Positioning Middleware Supporting Adaptation of Internal
Positioning Processes" (ACM/IFIP/USENIX Middleware 2010).

Public surface:

* :mod:`repro.core` -- the middleware itself: processing graph, Component
  and Channel Features, the PSL/PCL/Positioning layers, the
  :class:`~repro.core.middleware.PerPos` facade;
* :mod:`repro.processing` -- stock processing components and pipeline
  builders (parser, interpreter, resolver, WiFi positioning, fusion);
* :mod:`repro.tracking` -- the particle filter of §3.2;
* :mod:`repro.energy` -- the EnTracked re-implementation of §3.3;
* :mod:`repro.sensors`, :mod:`repro.geo`, :mod:`repro.model`,
  :mod:`repro.services` -- the simulated substrates (see DESIGN.md);
* :mod:`repro.baselines` -- Location-Stack- and PoSIM-style middleware
  used for the §3 comparisons.
"""

from repro.core import (
    Criteria,
    Datum,
    Kind,
    PerPos,
)

__version__ = "1.0.0"

__all__ = ["PerPos", "Criteria", "Datum", "Kind", "__version__"]
