"""Gate dispatch throughput against a committed baseline (CI).

Compares the machine-readable benchmark artefact
(``benchmarks/results/BENCH_dispatch.json``, written by
``bench_overhead_ablation.py``) against a committed baseline copy.

Raw datums/s are not comparable across runner generations, so every
scalability figure is first normalised by the *same run's* bare-pipeline
rate; the gate then requires

    (current throughput / current bare) /
    (baseline throughput / baseline bare)  >=  --min-ratio

per topology size -- i.e. the dispatch fast path may not lose more than
(1 - min-ratio) of its relative advantage.  The per-configuration
overhead curve is gated the same way (a config's slowdown factor vs bare
may not grow by more than 1 / min-ratio), and the disabled-observability
assertion re-checks that two bare runs agreed within 5%.

Usage:
    python benchmarks/check_regression.py \
        --baseline /tmp/baseline.json \
        --current benchmarks/results/BENCH_dispatch.json \
        --min-ratio 0.8
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RERUN_TOLERANCE = 1.05


def load(path: str) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def bare_rate(data: dict) -> float:
    return float(data["configs"]["datums_per_s"]["bare pipeline"])


def check(baseline: dict, current: dict, min_ratio: float) -> list:
    failures = []

    rerun = float(current["configs"]["bare_rerun_ratio"])
    if not 1 / RERUN_TOLERANCE < rerun < RERUN_TOLERANCE:
        failures.append(
            "disabled-observability assertion: bare re-run ratio"
            f" {rerun:.3f} outside +/-5%"
        )

    base_bare, cur_bare = bare_rate(baseline), bare_rate(current)

    for size, base_row in baseline.get("scalability", {}).items():
        cur_row = current.get("scalability", {}).get(size)
        if cur_row is None:
            failures.append(f"scalability size {size} missing from current")
            continue
        base_norm = float(base_row["throughput"]) / base_bare
        cur_norm = float(cur_row["throughput"]) / cur_bare
        ratio = cur_norm / base_norm
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        print(
            f"scalability {size}: normalised throughput ratio"
            f" {ratio:.3f} (min {min_ratio}) [{status}]"
        )
        if ratio < min_ratio:
            failures.append(
                f"scalability {size}: {ratio:.3f} < {min_ratio}"
            )

    base_rates = baseline["configs"]["datums_per_s"]
    cur_rates = current["configs"]["datums_per_s"]
    for label, base_value in base_rates.items():
        if label not in cur_rates or "re-run" in label:
            continue
        # Overhead factor vs bare, in the same run: smaller is better.
        base_overhead = base_bare / float(base_value)
        cur_overhead = cur_bare / float(cur_rates[label])
        ratio = base_overhead / cur_overhead
        if ratio < min_ratio:
            failures.append(
                f"config {label!r}: overhead vs bare grew"
                f" {base_overhead:.2f}x -> {cur_overhead:.2f}x"
                f" (ratio {ratio:.3f} < {min_ratio})"
            )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--min-ratio", type=float, default=0.8)
    args = parser.parse_args(argv)

    failures = check(load(args.baseline), load(args.current), args.min_ratio)
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
