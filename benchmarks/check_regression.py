"""Gate benchmark artefacts against committed baselines (CI).

Compares machine-readable benchmark artefacts against committed baseline
copies.  Two schemas are understood, sniffed from the file's top-level
sections:

``configs`` / ``scalability`` (``BENCH_dispatch.json``, written by
``bench_overhead_ablation.py``)
    Raw datums/s are not comparable across runner generations, so every
    scalability figure is first normalised by the *same run's*
    bare-pipeline rate; the gate then requires

        (current throughput / current bare) /
        (baseline throughput / baseline bare)  >=  --min-ratio

    per topology size -- i.e. the dispatch fast path may not lose more
    than (1 - min-ratio) of its relative advantage.  The
    per-configuration overhead curve is gated the same way (a config's
    slowdown factor vs bare may not grow by more than 1 / min-ratio),
    and the disabled-observability assertion re-checks that two bare
    runs agreed within 5%.

``scale`` (``BENCH_scale.json``, written by ``bench_scale_runtime.py``)
    Each workload's figure is the batch/single-datum *speedup measured
    within one run*, which is already runner-independent.  The gate
    requires the current speedup to hold at least ``--min-ratio`` of the
    baseline's per workload, and re-checks the artefact's own absolute
    floor (``speedup_floor``) on its ``gated_workload``.

``shard`` (``BENCH_shard.json``, written by ``bench_shard_runtime.py``)
    Same within-run speedup comparison as ``scale`` (multiprocessing
    throughput over the single-shard run, per sweep cell), plus the
    artefact's own absolute floor (``speedup_floor``, 1.5x on the
    gated 4-shard cell).  The absolute floor is *conditional on
    hardware*: a run recorded on fewer than ``min_cpus`` cores cannot
    show parallel speedup, so the floor is skipped (and said so) when
    the current artefact's recorded ``cpu_count`` is below it -- the
    relative ratio gate still applies everywhere.

``compile`` (``BENCH_compile.json``, written by
``bench_overhead_ablation.py``)
    Per chain depth, the compiled/interpreted *speedup measured within
    one run* (runner-independent, like ``scale``).  The gate requires
    the current speedup to hold at least ``--min-ratio`` of the
    baseline's per depth, and re-checks the artefact's own absolute
    floor (``speedup_floor``, 2x on the gated ``depth32`` entry).

``gateway`` (``BENCH_gateway.json``, written by ``bench_gateway.py``)
    The clean-traffic figure is the gateway-over-direct *overhead
    factor measured within one run* (smaller is better): the gate
    requires the baseline/current overhead ratio to hold
    ``--min-ratio`` and re-checks the artefact's own absolute ceiling
    (``overhead_ceiling``, 1.15x on the gated ``clean`` workload).
    Degraded-traffic workloads are gated on their within-run rate
    relative to the same run's clean rate, and the recorded DLQ depth
    must respect the artefact's ``dlq_capacity`` bound.

``durability`` (``BENCH_durability.json``, written by
``bench_durability.py``)
    Correctness figures first: every depth cell must record
    ``lost == 0`` and ``replayed == expected_replayed``, and the
    handoff must record ``lost == 0`` with ``pause_ms`` under the
    artefact's own ``pause_ceiling_ms`` -- all within-run figures, so
    they gate the *current* artefact unconditionally.  The one
    cross-run figure is ``bytes_per_datum`` (serialized size per
    pending datum, runner-independent): it may not grow by more than
    1 / --min-ratio over the baseline's per depth.

``city`` (``BENCH_city.json``, written by ``bench_city_scenario.py``)
    The closed-loop-vs-open-loop scenario gate.  Every figure is
    simulated-time deterministic, so the within-run checks gate the
    current artefact unconditionally: the closed loop must drop fewer
    datums than the open loop on the same seed, hold the artefact's own
    ``improvement_floor``, keep lane depth under ``depth_ceiling``,
    record at least one controller decision, and (when a
    ``sharded_closed`` run is present) reproduce the single-engine
    drop/alert/decision figures exactly.  The cross-run figure is the
    improvement itself, which may not shrink below ``--min-ratio`` of
    the baseline's.

A missing or malformed artefact is a harness error, not a regression:
the tool prints what went wrong and exits 2 (regressions exit 1).

When ``$GITHUB_STEP_SUMMARY`` names a writable file (GitHub Actions
sets it), a markdown pair/ratio/floor table of every gated figure is
appended there so the gate's outcome is readable from the run page;
stdout output is unchanged either way.

Usage (one or many pairs per invocation):
    python benchmarks/check_regression.py \
        --pair /tmp/dispatch-baseline.json benchmarks/results/BENCH_dispatch.json \
        --pair /tmp/scale-baseline.json benchmarks/results/BENCH_scale.json \
        --min-ratio 0.8

The legacy single-pair form ``--baseline X --current Y`` is still
accepted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

RERUN_TOLERANCE = 1.05


def load(path: str) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def emit(
    rows: list,
    line: str,
    *,
    artefact: str,
    metric: str,
    figure: str,
    baseline: str,
    ratio: float,
    floor: float,
    status: str,
) -> None:
    """Print one gated figure and capture it for the markdown summary."""
    print(line)
    rows.append(
        {
            "artefact": artefact,
            "metric": metric,
            "figure": figure,
            "baseline": baseline,
            "ratio": ratio,
            "floor": floor,
            "status": status,
        }
    )


def render_markdown(rows: list, failures: list) -> str:
    """The ``$GITHUB_STEP_SUMMARY`` table: every gated figure, one row."""
    lines = [
        "### Benchmark regression gate",
        "",
        "| artefact | metric | figure | baseline | ratio | floor | status |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        lines.append(
            f"| {row['artefact']} | {row['metric']} | {row['figure']}"
            f" | {row['baseline']} | {row['ratio']:.3f}"
            f" | {row['floor']:g} | {row['status']} |"
        )
    lines.append("")
    if failures:
        lines.append(f"**FAILED** ({len(failures)} regressions):")
        lines.extend(f"- {failure}" for failure in failures)
    else:
        lines.append("**passed**")
    lines.append("")
    return "\n".join(lines)


def bare_rate(data: dict) -> float:
    return float(data["configs"]["datums_per_s"]["bare pipeline"])


def check_dispatch(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []

    rerun = float(current["configs"]["bare_rerun_ratio"])
    if not 1 / RERUN_TOLERANCE < rerun < RERUN_TOLERANCE:
        failures.append(
            "disabled-observability assertion: bare re-run ratio"
            f" {rerun:.3f} outside +/-5%"
        )

    base_bare, cur_bare = bare_rate(baseline), bare_rate(current)

    for size, base_row in baseline.get("scalability", {}).items():
        cur_row = current.get("scalability", {}).get(size)
        if cur_row is None:
            failures.append(f"scalability size {size} missing from current")
            continue
        base_norm = float(base_row["throughput"]) / base_bare
        cur_norm = float(cur_row["throughput"]) / cur_bare
        ratio = cur_norm / base_norm
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        emit(
            rows,
            f"scalability {size}: normalised throughput ratio"
            f" {ratio:.3f} (min {min_ratio}) [{status}]",
            artefact="dispatch",
            metric=f"scalability {size}",
            figure=f"{cur_norm:.2f}x bare",
            baseline=f"{base_norm:.2f}x bare",
            ratio=ratio,
            floor=min_ratio,
            status=status,
        )
        if ratio < min_ratio:
            failures.append(
                f"scalability {size}: {ratio:.3f} < {min_ratio}"
            )

    base_rates = baseline["configs"]["datums_per_s"]
    cur_rates = current["configs"]["datums_per_s"]
    for label, base_value in base_rates.items():
        if label not in cur_rates or "re-run" in label:
            continue
        # Overhead factor vs bare, in the same run: smaller is better.
        base_overhead = base_bare / float(base_value)
        cur_overhead = cur_bare / float(cur_rates[label])
        ratio = base_overhead / cur_overhead
        if ratio < min_ratio:
            failures.append(
                f"config {label!r}: overhead vs bare grew"
                f" {base_overhead:.2f}x -> {cur_overhead:.2f}x"
                f" (ratio {ratio:.3f} < {min_ratio})"
            )

    return failures


def check_scale(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []
    base_scale = baseline["scale"]
    cur_scale = current["scale"]

    for key, base_row in base_scale.get("workloads", {}).items():
        cur_row = cur_scale.get("workloads", {}).get(key)
        if cur_row is None:
            failures.append(f"scale workload {key} missing from current")
            continue
        base_speedup = float(base_row["speedup"])
        cur_speedup = float(cur_row["speedup"])
        # Speedups are within-run figures; compare them directly.
        ratio = cur_speedup / base_speedup if base_speedup else 1.0
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        emit(
            rows,
            f"scale {key}: batch speedup {cur_speedup:.2f}x"
            f" (baseline {base_speedup:.2f}x,"
            f" ratio {ratio:.3f}, min {min_ratio}) [{status}]",
            artefact="scale",
            metric=key,
            figure=f"{cur_speedup:.2f}x",
            baseline=f"{base_speedup:.2f}x",
            ratio=ratio,
            floor=min_ratio,
            status=status,
        )
        if ratio < min_ratio:
            failures.append(
                f"scale {key}: speedup ratio {ratio:.3f} < {min_ratio}"
            )

    gated = cur_scale.get("gated_workload")
    floor = float(cur_scale.get("speedup_floor", 0.0))
    if gated:
        row = cur_scale.get("workloads", {}).get(gated)
        if row is None:
            failures.append(f"gated workload {gated} missing from current")
        elif float(row["speedup"]) < floor:
            failures.append(
                f"scale {gated}: absolute speedup"
                f" {float(row['speedup']):.2f}x below the artefact's own"
                f" floor {floor}x"
            )

    return failures


def check_compile(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []
    base_compile = baseline["compile"]
    cur_compile = current["compile"]

    for key, base_row in base_compile.get("depths", {}).items():
        cur_row = cur_compile.get("depths", {}).get(key)
        if cur_row is None:
            failures.append(f"compile depth {key} missing from current")
            continue
        base_speedup = float(base_row["speedup"])
        cur_speedup = float(cur_row["speedup"])
        # Speedups are within-run figures; compare them directly.
        ratio = cur_speedup / base_speedup if base_speedup else 1.0
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        emit(
            rows,
            f"compile {key}: fused speedup {cur_speedup:.2f}x"
            f" (baseline {base_speedup:.2f}x,"
            f" ratio {ratio:.3f}, min {min_ratio}) [{status}]",
            artefact="compile",
            metric=key,
            figure=f"{cur_speedup:.2f}x",
            baseline=f"{base_speedup:.2f}x",
            ratio=ratio,
            floor=min_ratio,
            status=status,
        )
        if ratio < min_ratio:
            failures.append(
                f"compile {key}: speedup ratio {ratio:.3f} < {min_ratio}"
            )

    gated = cur_compile.get("gated_workload")
    floor = float(cur_compile.get("speedup_floor", 0.0))
    if gated:
        row = cur_compile.get("depths", {}).get(gated)
        if row is None:
            failures.append(f"gated depth {gated} missing from current")
        elif float(row["speedup"]) < floor:
            failures.append(
                f"compile {gated}: absolute speedup"
                f" {float(row['speedup']):.2f}x below the artefact's own"
                f" floor {floor}x"
            )

    return failures


def check_shard(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []
    base_shard = baseline["shard"]
    cur_shard = current["shard"]

    for key, base_row in base_shard.get("workloads", {}).items():
        cur_row = cur_shard.get("workloads", {}).get(key)
        if cur_row is None:
            failures.append(f"shard workload {key} missing from current")
            continue
        base_speedup = float(base_row["speedup"])
        cur_speedup = float(cur_row["speedup"])
        # Speedups are within-run figures; compare them directly.
        ratio = cur_speedup / base_speedup if base_speedup else 1.0
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        emit(
            rows,
            f"shard {key}: speedup {cur_speedup:.2f}x"
            f" (baseline {base_speedup:.2f}x,"
            f" ratio {ratio:.3f}, min {min_ratio}) [{status}]",
            artefact="shard",
            metric=key,
            figure=f"{cur_speedup:.2f}x",
            baseline=f"{base_speedup:.2f}x",
            ratio=ratio,
            floor=min_ratio,
            status=status,
        )
        if ratio < min_ratio:
            failures.append(
                f"shard {key}: speedup ratio {ratio:.3f} < {min_ratio}"
            )

    gated = cur_shard.get("gated_workload")
    floor = float(cur_shard.get("speedup_floor", 0.0))
    min_cpus = int(cur_shard.get("min_cpus", 2))
    cpu_count = int(cur_shard.get("cpu_count", 0))
    if gated:
        row = cur_shard.get("workloads", {}).get(gated)
        if row is None:
            failures.append(f"gated workload {gated} missing from current")
        elif cpu_count < min_cpus:
            # One core cannot show parallel speedup; the relative ratio
            # gate above still applied.
            print(
                f"shard {gated}: absolute {floor}x floor skipped"
                f" (recorded cpu_count={cpu_count} < {min_cpus})"
            )
        elif float(row["speedup"]) < floor:
            failures.append(
                f"shard {gated}: absolute speedup"
                f" {float(row['speedup']):.2f}x below the artefact's own"
                f" floor {floor}x (cpu_count={cpu_count})"
            )

    return failures


def check_gateway(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []
    base_gateway = baseline["gateway"]
    cur_gateway = current["gateway"]

    for key, base_row in base_gateway.get("workloads", {}).items():
        cur_row = cur_gateway.get("workloads", {}).get(key)
        if cur_row is None:
            failures.append(f"gateway workload {key} missing from current")
            continue
        if "overhead" in base_row:
            # Overhead factors are within-run figures; smaller is
            # better, so the ratio inverts vs the speedup gates.
            base_overhead = float(base_row["overhead"])
            cur_overhead = float(cur_row["overhead"])
            ratio = base_overhead / cur_overhead if cur_overhead else 1.0
            label = f"overhead {cur_overhead:.3f}x direct"
            detail = f"baseline {base_overhead:.3f}x"
            figure = f"{cur_overhead:.3f}x direct"
            base_figure = f"{base_overhead:.3f}x direct"
        else:
            # Degraded mixes: rate relative to the same run's clean
            # rate (runner-independent); bigger is better.
            base_rel = float(base_row["relative_rate"])
            cur_rel = float(cur_row["relative_rate"])
            ratio = cur_rel / base_rel if base_rel else 1.0
            label = f"relative rate {cur_rel:.2f}x clean"
            detail = f"baseline {base_rel:.2f}x"
            figure = f"{cur_rel:.2f}x clean"
            base_figure = f"{base_rel:.2f}x clean"
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        emit(
            rows,
            f"gateway {key}: {label}"
            f" ({detail}, ratio {ratio:.3f}, min {min_ratio}) [{status}]",
            artefact="gateway",
            metric=key,
            figure=figure,
            baseline=base_figure,
            ratio=ratio,
            floor=min_ratio,
            status=status,
        )
        if ratio < min_ratio:
            failures.append(f"gateway {key}: ratio {ratio:.3f} < {min_ratio}")

    gated = cur_gateway.get("gated_workload")
    ceiling = float(cur_gateway.get("overhead_ceiling", 0.0))
    if gated:
        row = cur_gateway.get("workloads", {}).get(gated)
        if row is None:
            failures.append(f"gated workload {gated} missing from current")
        elif ceiling and float(row["overhead"]) > ceiling:
            failures.append(
                f"gateway {gated}: absolute overhead"
                f" {float(row['overhead']):.3f}x above the artefact's own"
                f" ceiling {ceiling}x"
            )

    dlq_capacity = int(cur_gateway.get("dlq_capacity", 0))
    if dlq_capacity:
        for key, row in cur_gateway.get("workloads", {}).items():
            depth = int(row.get("dlq_depth", 0))
            if depth > dlq_capacity:
                failures.append(
                    f"gateway {key}: recorded dlq_depth {depth} exceeds"
                    f" the artefact's dlq_capacity {dlq_capacity}"
                )

    return failures


def check_durability(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []
    base_dur = baseline["durability"]
    cur_dur = current["durability"]

    for key, cur_row in cur_dur.get("depths", {}).items():
        # Within-run correctness figures: gate the current artefact
        # unconditionally, no baseline needed.
        lost = int(cur_row["lost"])
        replayed = int(cur_row["replayed"])
        expected = int(cur_row["expected_replayed"])
        if lost:
            failures.append(f"durability {key}: lost {lost} datums")
        if replayed != expected:
            failures.append(
                f"durability {key}: replayed {replayed},"
                f" expected {expected}"
            )
        base_row = base_dur.get("depths", {}).get(key)
        if base_row is None:
            failures.append(f"durability depth {key} missing from baseline")
            continue
        # Serialized size per pending datum is runner-independent;
        # smaller is better, so the ratio inverts vs the speedup gates.
        base_bpd = float(base_row["bytes_per_datum"])
        cur_bpd = float(cur_row["bytes_per_datum"])
        ratio = base_bpd / cur_bpd if cur_bpd else 1.0
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        emit(
            rows,
            f"durability {key}: {cur_bpd:.0f}B/datum"
            f" (baseline {base_bpd:.0f}B,"
            f" ratio {ratio:.3f}, min {min_ratio}) [{status}]",
            artefact="durability",
            metric=key,
            figure=f"{cur_bpd:.0f}B/datum",
            baseline=f"{base_bpd:.0f}B/datum",
            ratio=ratio,
            floor=min_ratio,
            status=status,
        )
        if ratio < min_ratio:
            failures.append(
                f"durability {key}: bytes_per_datum grew"
                f" {base_bpd:.0f}B -> {cur_bpd:.0f}B"
                f" (ratio {ratio:.3f} < {min_ratio})"
            )

    handoff = cur_dur["handoff"]
    ceiling = float(cur_dur.get("pause_ceiling_ms", 0.0))
    pause = float(handoff["pause_ms"])
    lost = int(handoff["lost"])
    ok = not lost and (not ceiling or pause <= ceiling)
    status = "ok" if ok else "REGRESSION"
    emit(
        rows,
        f"durability handoff: {handoff['datums']} datums,"
        f" pause {pause:.2f}ms (ceiling {ceiling:g}ms),"
        f" lost {lost} [{status}]",
        artefact="durability",
        metric="handoff pause",
        figure=f"{pause:.2f}ms, lost {lost}",
        baseline="(within-run)",
        ratio=1.0 if ok else 0.0,
        floor=ceiling,
        status=status,
    )
    if lost:
        failures.append(f"durability handoff: lost {lost} datums")
    if ceiling and pause > ceiling:
        failures.append(
            f"durability handoff: pause {pause:.2f}ms above the"
            f" artefact's own ceiling {ceiling:g}ms"
        )

    return failures


def check_city(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    failures = []
    base_city = baseline["city"]
    cur_city = current["city"]
    cur_open = cur_city["open"]
    cur_closed = cur_city["closed"]

    # Within-run gates: the whole scenario runs on simulated time, so
    # every figure is deterministic and gates the current artefact
    # unconditionally, no baseline needed.
    open_drops = int(cur_open["dropped"])
    closed_drops = int(cur_closed["dropped"])
    improvement = float(cur_city["improvement"])
    floor = float(cur_city.get("improvement_floor", 0.0))
    ceiling = int(cur_city.get("depth_ceiling", 0))
    high_water = int(cur_closed["high_water"])
    decisions = int(cur_closed.get("decisions", 0))

    if open_drops <= 0:
        failures.append(
            "city: open-loop baseline recorded no drops; the scenario"
            " never overloaded the lanes"
        )
    if closed_drops >= open_drops:
        failures.append(
            f"city: closed loop dropped {closed_drops} >="
            f" open loop {open_drops}"
        )
    if improvement < floor:
        failures.append(
            f"city: improvement {improvement:.3f} below the artefact's"
            f" own floor {floor}"
        )
    if ceiling and high_water > ceiling:
        failures.append(
            f"city: closed-loop high_water {high_water} above the"
            f" artefact's own depth_ceiling {ceiling}"
        )
    if decisions <= 0:
        failures.append("city: the control loop recorded no decisions")

    sharded = cur_city.get("sharded_closed")
    if sharded:
        for key in ("submitted", "dropped", "alerts", "decisions"):
            if sharded.get(key) != cur_closed.get(key):
                failures.append(
                    f"city: sharded closed loop diverged on {key}:"
                    f" {sharded.get(key)} != {cur_closed.get(key)}"
                )

    # Cross-run figure: the improvement itself is runner-independent,
    # so it may not shrink below min_ratio of the baseline's.
    base_improvement = float(base_city["improvement"])
    ratio = improvement / base_improvement if base_improvement else 1.0
    status = "ok" if ratio >= min_ratio and not failures else "REGRESSION"
    emit(
        rows,
        f"city closed-loop: {improvement:.1%} fewer drops"
        f" ({closed_drops} vs {open_drops} open; baseline"
        f" {base_improvement:.1%}, ratio {ratio:.3f}, min {min_ratio},"
        f" floor {floor:g}) [{status}]",
        artefact="city",
        metric="drop improvement",
        figure=f"{improvement:.1%}",
        baseline=f"{base_improvement:.1%}",
        ratio=ratio,
        floor=floor,
        status=status,
    )
    if ratio < min_ratio:
        failures.append(
            f"city: improvement shrank {base_improvement:.3f} ->"
            f" {improvement:.3f} (ratio {ratio:.3f} < {min_ratio})"
        )

    return failures


def check(
    baseline: dict, current: dict, min_ratio: float, rows: list
) -> list:
    """Dispatch on schema: which top-level sections the artefact carries."""
    if "city" in current or "city" in baseline:
        return check_city(baseline, current, min_ratio, rows)
    if "durability" in current or "durability" in baseline:
        return check_durability(baseline, current, min_ratio, rows)
    if "gateway" in current or "gateway" in baseline:
        return check_gateway(baseline, current, min_ratio, rows)
    if "compile" in current or "compile" in baseline:
        return check_compile(baseline, current, min_ratio, rows)
    if "shard" in current or "shard" in baseline:
        return check_shard(baseline, current, min_ratio, rows)
    if "scale" in current or "scale" in baseline:
        return check_scale(baseline, current, min_ratio, rows)
    if "configs" in current or "configs" in baseline:
        return check_dispatch(baseline, current, min_ratio, rows)
    return [
        "unrecognised artefact schema: expected a 'city', 'compile',"
        " 'configs', 'durability', 'gateway', 'scale' or 'shard'"
        " top-level section"
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("BASELINE", "CURRENT"),
        default=[],
        help="one baseline/current artefact pair; repeatable",
    )
    parser.add_argument("--baseline", help="legacy single-pair form")
    parser.add_argument("--current", help="legacy single-pair form")
    parser.add_argument("--min-ratio", type=float, default=0.8)
    args = parser.parse_args(argv)

    pairs = list(args.pair)
    if args.baseline or args.current:
        if not (args.baseline and args.current):
            parser.error("--baseline and --current must be given together")
        pairs.append([args.baseline, args.current])
    if not pairs:
        parser.error("give at least one --pair (or --baseline/--current)")

    failures = []
    rows = []
    for baseline_path, current_path in pairs:
        print(f"== {current_path} vs {baseline_path}")
        try:
            baseline = load(baseline_path)
            current = load(current_path)
        except FileNotFoundError as exc:
            print(f"artefact missing: {exc.filename}", file=sys.stderr)
            return 2
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            print(
                f"artefact malformed: {baseline_path} / {current_path}:"
                f" {exc}",
                file=sys.stderr,
            )
            return 2
        try:
            failures += check(baseline, current, args.min_ratio, rows)
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"artefact schema error in {current_path} vs"
                f" {baseline_path}: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return 2

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(render_markdown(rows, failures))

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
