"""E17 -- city-scale scenario: closed-loop control vs open-loop baseline.

The first experiment where the middleware adapts *itself* under load.
One deterministic city workload (``repro.scenario``: seeded device
population, churn, degraded-signal zones, a burst event overloading the
ingestion lanes) is driven twice against the same engine configuration:

* **open loop** -- no controllers; the burst overflows the bounded
  lanes and datums are dropped;
* **closed loop** -- the stock controller set (backpressure capacity
  growth, EnTracked sampling-threshold shedding, quarantine tuning)
  reads the lane stats each drain round and actuates the adaptation
  seams.

The gate: the closed loop must lose *measurably* fewer datums on the
same seed (``improvement >= IMPROVEMENT_FLOOR``) while keeping lane
depth bounded (``high_water <= DEPTH_CEILING``) and actually recording
decisions.  Because the whole scenario runs on simulated time, every
figure is exact and machine-independent -- the committed
``BENCH_city.json`` regenerates byte-identically, and the cross-run
ratio gate in ``check_regression.py`` is a pure consistency check.

A third run repeats the closed loop on a 2-shard in-process
``ShardedEngine`` and must reproduce the single-engine drop/alert
figures exactly (controller decisions included): sharding redistributes
work, it must not change adaptation.

Scaled up by the nightly workflow via ``E17_DEVICES`` / ``E17_TICKS`` /
``E17_SHARDS`` environment overrides (PR CI runs the committed
defaults).
"""

import os
import time

from repro.runtime import PositioningEngine, ShardedEngine
from repro.runtime.scheduler import RoundRobinScheduler
from repro.scenario import (
    BurstEvent,
    CityConfig,
    CityGenerator,
    ControlLoop,
    GeofenceRule,
    ScenarioRunner,
    build_city_graph,
    default_controllers,
)

SEED = 11
DEVICES = int(os.environ.get("E17_DEVICES", "80"))
TICKS = int(os.environ.get("E17_TICKS", "160"))
SHARDS = int(os.environ.get("E17_SHARDS", "2"))
CAPACITY = 8
QUANTUM = 3
MAX_CAPACITY = 256
IMPROVEMENT_FLOOR = 0.25
DEPTH_CEILING = MAX_CAPACITY

RULES = (GeofenceRule("downtown", 1000.0, 1000.0, 400.0, trigger="both"),)

CONFIG = CityConfig(
    seed=SEED,
    devices=DEVICES,
    churn_rate=0.01,
    bursts=(
        BurstEvent("stadium", 40, 60, 1000.0, 1000.0, 800.0, factor=10),
    ),
)


def recipe():
    """The scenario graph (module-level so shards can pickle it)."""
    return build_city_graph(RULES)


def run_city(*, closed, shards=0):
    """One full scenario run; returns (result, elapsed_s, runner)."""
    generator = CityGenerator(CONFIG)
    if shards:
        engine = ShardedEngine(
            recipe,
            shards,
            executor="inprocess",
            scheduler=("round_robin", QUANTUM),
        )
    else:
        engine = PositioningEngine(
            recipe(), scheduler=RoundRobinScheduler(quantum=QUANTUM)
        )
    control = None
    if closed:
        control = ControlLoop(
            default_controllers(max_capacity=MAX_CAPACITY)
        )
    runner = ScenarioRunner(
        generator, engine, control=control, capacity=CAPACITY
    )
    start = time.perf_counter()
    result = runner.run(TICKS)
    elapsed = time.perf_counter() - start
    if shards:
        engine.close()
    return result, elapsed, runner


def _figures(result):
    """The deterministic subset of a run's result that the gate reads."""
    keys = (
        "submitted",
        "accepted",
        "dropped",
        "rejected",
        "pending",
        "high_water",
        "alerts",
        "suppressed_fixes",
        "devices",
    )
    figures = {key: result[key] for key in keys}
    if "decisions" in result:
        figures["decisions"] = result["decisions"]
    return figures


def test_e17_city_scenario(benchmark, results_writer, bench_json_writer):
    open_result, open_s, _ = run_city(closed=False)
    (closed_result, closed_s, closed_runner) = benchmark.pedantic(
        lambda: run_city(closed=True), rounds=1, iterations=1
    )
    sharded_result, _sharded_s, _ = run_city(closed=True, shards=SHARDS)

    open_drops = open_result["dropped"]
    closed_drops = closed_result["dropped"]
    improvement = 1.0 - closed_drops / max(1, open_drops)
    rate = closed_result["submitted"] / closed_s if closed_s else 0.0

    # -- within-run gates (all deterministic) ------------------------------
    assert open_drops > 0, (
        "the open-loop baseline never overloaded; the burst is not"
        " exercising backpressure"
    )
    assert closed_drops < open_drops, (
        f"closed loop dropped {closed_drops} >= open loop {open_drops}"
    )
    assert improvement >= IMPROVEMENT_FLOOR, (
        f"closed-loop improvement {improvement:.3f} below the"
        f" {IMPROVEMENT_FLOOR} floor"
    )
    assert closed_result["high_water"] <= DEPTH_CEILING, (
        f"lane depth {closed_result['high_water']} exceeded the"
        f" {DEPTH_CEILING} ceiling"
    )
    assert closed_result["decisions"] > 0, "the control loop never acted"

    # -- sharded equivalence: adaptation is execution-mode independent -----
    for key in ("submitted", "dropped", "alerts", "decisions"):
        assert sharded_result[key] == closed_result[key], (
            f"{SHARDS}-shard closed loop diverged on {key}:"
            f" {sharded_result[key]} != {closed_result[key]}"
        )

    by_controller = dict(
        closed_runner.control.snapshot()["by_controller"]
    )
    lines = [
        f"City scenario: seed {SEED}, {DEVICES} devices, {TICKS} ticks,"
        f" capacity {CAPACITY}, quantum {QUANTUM},"
        f" burst x{CONFIG.bursts[0].factor}",
        (
            f"open loop:   submitted={open_result['submitted']},"
            f" dropped={open_drops},"
            f" high_water={open_result['high_water']},"
            f" alerts={open_result['alerts']} ({open_s:.2f}s)"
        ),
        (
            f"closed loop: submitted={closed_result['submitted']},"
            f" dropped={closed_drops},"
            f" high_water={closed_result['high_water']},"
            f" alerts={closed_result['alerts']},"
            f" decisions={closed_result['decisions']} ({closed_s:.2f}s)"
        ),
        (
            f"improvement: {improvement:.1%} fewer drops"
            f" (floor {IMPROVEMENT_FLOOR:.0%});"
            f" decisions by controller: {by_controller}"
        ),
        (
            f"equivalence: {SHARDS}-shard in-process closed loop =="
            " single engine (drops, alerts, decisions)"
        ),
    ]
    results_writer("E17_city_scenario", "\n".join(lines))
    bench_json_writer(
        "city",
        {
            "seed": SEED,
            "devices": DEVICES,
            "ticks": TICKS,
            "capacity": CAPACITY,
            "quantum": QUANTUM,
            "shards": SHARDS,
            "improvement_floor": IMPROVEMENT_FLOOR,
            "depth_ceiling": DEPTH_CEILING,
            "improvement": round(improvement, 4),
            "closed_rate": round(rate, 1),
            "open": _figures(open_result),
            "closed": _figures(closed_result),
            "sharded_closed": _figures(sharded_result),
            "decisions_by_controller": by_controller,
        },
        filename="BENCH_city.json",
    )
