"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*`` module regenerates one artefact of the paper (a figure,
an example scenario, or a §3 comparison claim), times it with
pytest-benchmark, asserts the qualitative *shape* the paper reports, and
writes the regenerated rows/series to ``benchmarks/results/<exp>.txt`` so
the artefacts survive pytest's output capture.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
DISPATCH_JSON = RESULTS_DIR / "BENCH_dispatch.json"


@pytest.fixture()
def results_writer():
    """Returns write(exp_id, text): persist + echo one experiment artefact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(exp_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # Also echo to stdout for -s runs.
        print(f"\n===== {exp_id} =====\n{text}")

    return write


@pytest.fixture()
def bench_json_writer():
    """Returns write(section, payload, filename=...): merge one top-level
    section into a machine-readable artefact under ``results/``.

    The benchmarks run as independent tests but feed shared
    machine-readable artefacts (consumed by ``check_regression.py`` in
    CI), so each test merges its own section rather than owning the
    whole file -- run order does not matter.  The default artefact is
    ``BENCH_dispatch.json``; scale-out benchmarks pass
    ``filename="BENCH_scale.json"``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(section: str, payload, filename: str = DISPATCH_JSON.name) -> None:
        target = RESULTS_DIR / filename
        data = {}
        if target.exists():
            data = json.loads(target.read_text(encoding="utf-8"))
        data[section] = payload
        target.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n===== {filename} [{section}] =====")
        print(json.dumps(payload, indent=2, sort_keys=True))

    return write
