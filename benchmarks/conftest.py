"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*`` module regenerates one artefact of the paper (a figure,
an example scenario, or a §3 comparison claim), times it with
pytest-benchmark, asserts the qualitative *shape* the paper reports, and
writes the regenerated rows/series to ``benchmarks/results/<exp>.txt`` so
the artefacts survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def results_writer():
    """Returns write(exp_id, text): persist + echo one experiment artefact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(exp_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # Also echo to stdout for -s runs.
        print(f"\n===== {exp_id} =====\n{text}")

    return write
