"""E9 (extension) -- §1's transportation-mode reasoning pipeline.

The paper motivates translucency with the need to "structure the
reasoning process when determining transportation mode of a target by
segmentation, feature extraction, decision tree classification and
hidden-markov model post processing" (Zheng et al.).  This bench runs
that pipeline -- built entirely from Processing Components -- over
multi-modal journeys under two sky environments, comparing raw
decision-tree output against HMM-smoothed output.

Regenerated series: per-environment accuracy (raw vs smoothed) over five
seeded journeys, plus a sample mode timeline.

Shape assertions: near-perfect accuracy on clean GPS; smoothing does not
hurt on clean data and helps (or at worst ties) under degraded GPS.
"""

import statistics

from repro.core import Kind, PerPos
from repro.geo.wgs84 import Wgs84Position
from repro.processing.filters import SatelliteFilterComponent
from repro.processing.gps_features import NumberOfSatellitesFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.reasoning.pipeline import build_mode_pipeline
from repro.reasoning.workload import build_modal_trajectory, default_journey
from repro.sensors.gps import (
    GpsReceiver,
    OPEN_SKY,
    SUBURBAN,
    URBAN_CANYON,
    constant_environment,
)

START = Wgs84Position(56.17, 10.19)
SEEDS = (0, 1, 2, 3, 4)


def run_canyon_composition(seed, with_filter):
    """Urban canyon run, optionally composing the §3.1 satellite filter.

    Stale held fixes poison the motion features; splicing the filter in
    front of the Interpreter removes them -- two independently developed
    adaptations composing because both are just graph components.
    """
    trajectory, true_mode = build_modal_trajectory(
        default_journey(), START, seed=seed
    )
    middleware = PerPos()
    gps = GpsReceiver(
        "gps",
        trajectory,
        constant_environment(URBAN_CANYON),
        seed=seed + 50,
        stale_hold_s=45.0,
    )
    pipe = build_gps_pipeline(middleware, gps, prefix="gps")
    if with_filter:
        middleware.graph.component(pipe.parser).attach_feature(
            NumberOfSatellitesFeature()
        )
        middleware.psl.insert_between(
            pipe.parser,
            pipe.interpreter,
            SatelliteFilterComponent(min_satellites=5),
        )
    mode_pipe = build_mode_pipeline(
        middleware, pipe.interpreter, provider_name="modes"
    )
    estimates = []
    mode_pipe.provider.add_listener(
        lambda d: estimates.append(d.payload), kind=Kind.TRANSPORT_MODE
    )
    middleware.run_until(trajectory.duration())
    if not estimates:
        return float("nan")
    correct = sum(
        1
        for e in estimates
        if e.mode == true_mode((e.start_time + e.end_time) / 2)
    )
    return correct / len(estimates)


def run_journey(seed, environment):
    trajectory, true_mode = build_modal_trajectory(
        default_journey(), START, seed=seed
    )
    middleware = PerPos()
    gps = GpsReceiver(
        "gps",
        trajectory,
        constant_environment(environment),
        seed=seed + 100,
    )
    pipe = build_gps_pipeline(middleware, gps, prefix="gps")
    smoothed = build_mode_pipeline(
        middleware, pipe.interpreter, provider_name="smoothed"
    )
    raw = build_mode_pipeline(
        middleware, pipe.interpreter, provider_name="raw", smoothed=False
    )
    collected = {"smoothed": [], "raw": []}
    smoothed.provider.add_listener(
        lambda d: collected["smoothed"].append(d.payload),
        kind=Kind.TRANSPORT_MODE,
    )
    raw.provider.add_listener(
        lambda d: collected["raw"].append(d.payload),
        kind=Kind.TRANSPORT_MODE,
    )
    middleware.run_until(trajectory.duration())

    def accuracy(estimates):
        if not estimates:
            return float("nan")
        correct = sum(
            1
            for e in estimates
            if e.mode == true_mode((e.start_time + e.end_time) / 2)
        )
        return correct / len(estimates)

    timeline = "".join(e.mode.value[0] for e in collected["smoothed"])
    truth_line = "".join(
        true_mode((e.start_time + e.end_time) / 2).value[0]
        for e in collected["smoothed"]
    )
    return accuracy(collected["raw"]), accuracy(collected["smoothed"]), (
        timeline,
        truth_line,
    )


def test_e9_transport_mode(benchmark, results_writer):
    def workload():
        table = {}
        sample = None
        for env in (OPEN_SKY, SUBURBAN):
            raw_accs, smooth_accs = [], []
            for seed in SEEDS:
                raw_acc, smooth_acc, lines = run_journey(seed, env)
                raw_accs.append(raw_acc)
                smooth_accs.append(smooth_acc)
                if env is OPEN_SKY and seed == SEEDS[0]:
                    sample = lines
            table[env.name] = (raw_accs, smooth_accs)
        canyon = {
            "plain": [
                run_canyon_composition(s, with_filter=False)
                for s in SEEDS[:3]
            ],
            "with satellite filter": [
                run_canyon_composition(s, with_filter=True)
                for s in SEEDS[:3]
            ],
        }
        return table, sample, canyon

    table, sample, canyon = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    lines = [
        "§1 use case -- transportation-mode pipeline"
        " (segmentation -> features -> tree -> HMM)",
        f"{len(SEEDS)} seeded journeys: still/walk/bike/vehicle/walk/still",
        "",
        f"{'environment':<12} {'raw tree':>9} {'HMM-smoothed':>13}",
    ]
    for env_name, (raw_accs, smooth_accs) in table.items():
        lines.append(
            f"{env_name:<12} {statistics.mean(raw_accs):>8.1%}"
            f" {statistics.mean(smooth_accs):>12.1%}"
        )
    lines += [
        "",
        "urban canyon, composing the §3.1 satellite filter"
        " (adaptations compose as graph components):",
    ]
    for label, accs in canyon.items():
        lines.append(
            f"  {label:<24} {statistics.mean(accs):>6.1%}"
        )
    lines += [
        "",
        "sample timeline (open sky, seed 0; s=still w=walk b=bike"
        " v=vehicle):",
        f"  detected: {sample[0]}",
        f"  truth   : {sample[1]}",
    ]
    results_writer("E9_transport_mode", "\n".join(lines))

    open_raw, open_smooth = table["open_sky"]
    assert statistics.mean(open_smooth) > 0.9
    assert statistics.mean(open_smooth) >= statistics.mean(open_raw) - 0.02
    sub_raw, sub_smooth = table["suburban"]
    # Under degraded GPS the smoother must not be worse than raw by more
    # than noise, and both should remain usable.
    assert statistics.mean(sub_smooth) >= statistics.mean(sub_raw) - 0.05
    assert statistics.mean(sub_smooth) > 0.6
    # Composition: the §3.1 filter rescues mode detection in the canyon.
    assert statistics.mean(
        canyon["with satellite filter"]
    ) > statistics.mean(canyon["plain"]) + 0.2
