"""E1 -- Fig. 1: the Room Number Application's concrete process.

Regenerates the figure's pipeline (WiFi + GPS -> Parser -> Interpreter ->
Resolver -> Application), runs the indoor/outdoor walk, and reports the
node/edge listing plus the application-visible outputs: WGS84 positions
outdoors, room ids indoors.

Shape assertions: the graph matches the figure's topology; the walk ends
resolved to office N2; the application receives both output kinds.
"""

from repro.core import Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.pipelines import build_room_app
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner

DURATION_S = 120.0


def build_and_run():
    building = demo_building()
    grid = building.grid
    trajectory = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(-30.0, 7.5))),
            Waypoint(30.0, grid.to_wgs84(GridPosition(-2.0, 7.5))),
            Waypoint(50.0, grid.to_wgs84(GridPosition(15.0, 7.5))),
            Waypoint(70.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
            Waypoint(DURATION_S, grid.to_wgs84(GridPosition(15.0, 12.0))),
        ]
    )

    def sky(t, position):
        return (
            INDOOR
            if building.contains(grid.to_grid(position))
            else OPEN_SKY
        )

    gps = GpsReceiver("gps-dev", trajectory, sky, seed=11)
    wifi = WifiScanner(
        "wifi-dev", trajectory, demo_radio_environment(building), grid,
        seed=12,
    )
    middleware = PerPos()
    app = build_room_app(middleware, gps, wifi, building)
    middleware.run_until(DURATION_S)
    return middleware, app, trajectory


def test_e1_room_app_process(benchmark, results_writer):
    middleware, app, trajectory = benchmark.pedantic(
        build_and_run, rounds=1, iterations=1
    )

    positions = [
        d
        for d in app.provider.sink.received
        if d.kind == Kind.POSITION_WGS84
    ]
    rooms = [
        d for d in app.provider.sink.received if d.kind == Kind.ROOM_ID
    ]
    room_sequence = []
    for d in rooms:
        label = d.payload.room_id or "outdoors"
        if not room_sequence or room_sequence[-1][1] != label:
            room_sequence.append((d.timestamp, label))

    lines = [
        "Fig. 1 -- Room Number Application processing graph",
        "",
        middleware.psl.structure(),
        "",
        "channel view:",
        middleware.pcl.render(),
        "",
        f"positions delivered: {len(positions)}",
        f"room-id updates    : {len(rooms)}",
        "",
        "room transitions (t, room):",
    ]
    lines += [f"  {t:6.1f}s  {label}" for t, label in room_sequence]
    results_writer("E1_fig1_room_app", "\n".join(lines))

    # Shape: the topology of Fig. 1 and the expected application output.
    structure = middleware.psl.structure()
    for component in ("gps-parser", "gps-interpreter", "wifi-positioning",
                      "resolver", "fusion"):
        assert component in structure
    assert positions and rooms
    assert room_sequence[0][1] == "outdoors"
    assert room_sequence[-1][1] == "N2"
