"""E11 (ablation) -- fusion strategy: selection vs variance weighting.

PerPos's point is that fusion is *just another component* (that is how
the particle filter slots in), so the fusion strategy is a swappable
choice.  This ablation runs the Fig. 1 GPS+WiFi scenario with the two
stock strategies:

* best-accuracy **selection** (forward the single best fresh estimate);
* inverse-variance **weighted averaging** (combine all fresh estimates).

Regenerated series: mean/p95 error per strategy for an outdoor walk, an
indoor walk, and the outdoor-to-indoor handover.

Shape assertions: both strategies work everywhere; averaging wins when
sources have comparable quality (indoors: WiFi + degraded GPS), while
selection is never catastrophically worse -- the point is that the choice
is workload-dependent, hence a component, not middleware policy.
"""

import statistics

from repro.core import Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.fusion import (
    BestAccuracyFusionComponent,
    VarianceWeightedFusionComponent,
)
from repro.processing.pipelines import build_gps_pipeline, build_wifi_pipeline
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY, SUBURBAN
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner

DURATION_S = 120.0


def walks(building):
    grid = building.grid
    outdoor = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(-40.0, 7.5))),
            Waypoint(DURATION_S, grid.to_wgs84(GridPosition(-40.0, 175.0))),
        ]
    )
    indoor = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(2.0, 7.5))),
            Waypoint(DURATION_S, grid.to_wgs84(GridPosition(38.0, 7.5))),
        ]
    )
    handover = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(-40.0, 7.5))),
            Waypoint(50.0, grid.to_wgs84(GridPosition(-2.0, 7.5))),
            Waypoint(80.0, grid.to_wgs84(GridPosition(20.0, 7.5))),
            Waypoint(DURATION_S, grid.to_wgs84(GridPosition(20.0, 7.5))),
        ]
    )
    return {"outdoor": outdoor, "indoor": indoor, "handover": handover}


def run(building, trajectory, fusion_factory, seed):
    grid = building.grid

    def sky(t, position):
        if building.contains(grid.to_grid(position)):
            return SUBURBAN  # degraded-but-alive GPS indoors near windows
        return OPEN_SKY

    middleware = PerPos()
    gps = GpsReceiver("gps-dev", trajectory, sky, seed=seed)
    wifi = WifiScanner(
        "wifi-dev", trajectory, demo_radio_environment(building), grid,
        seed=seed + 1,
    )
    gps_pipe = build_gps_pipeline(middleware, gps, prefix="gps-dev")
    wifi_pipe = build_wifi_pipeline(middleware, wifi, building, prefix="wifi-dev")
    fusion = fusion_factory()
    middleware.graph.add(fusion)
    middleware.graph.connect(gps_pipe.interpreter, fusion.name)
    middleware.graph.connect(wifi_pipe.engine, fusion.name)
    provider = middleware.create_provider(
        "app", accepts=(Kind.POSITION_WGS84,)
    )
    middleware.graph.connect(fusion.name, provider.sink.name)
    errors = []
    provider.add_listener(
        lambda d: errors.append(
            trajectory.position_at(d.timestamp).distance_to(d.payload)
        ),
        kind=Kind.POSITION_WGS84,
    )
    middleware.run_until(DURATION_S)
    ordered = sorted(errors)
    return (
        statistics.mean(ordered),
        ordered[int(0.95 * (len(ordered) - 1))],
    )


def test_e11_fusion_ablation(benchmark, results_writer):
    building = demo_building()

    def workload():
        table = {}
        for walk_name, trajectory in walks(building).items():
            table[walk_name] = {
                "selection": run(
                    building,
                    trajectory,
                    BestAccuracyFusionComponent,
                    seed=21,
                ),
                "variance-weighted": run(
                    building,
                    trajectory,
                    VarianceWeightedFusionComponent,
                    seed=21,
                ),
            }
        return table

    table = benchmark.pedantic(workload, rounds=1, iterations=1)

    lines = [
        "Fusion strategy ablation (GPS + WiFi, 120 s walks)",
        "",
        f"{'walk':<10} {'strategy':<20} {'mean err':>9} {'p95 err':>9}",
    ]
    for walk_name, rows in table.items():
        for strategy, (mean, p95) in rows.items():
            lines.append(
                f"{walk_name:<10} {strategy:<20} {mean:>8.1f}m {p95:>8.1f}m"
            )
    results_writer("E11_fusion_ablation", "\n".join(lines))

    for walk_name, rows in table.items():
        for strategy, (mean, _p95) in rows.items():
            assert mean < 40.0, f"{strategy} unusable on {walk_name}"
    # Indoors, combining comparable-quality sources beats selection.
    indoor = table["indoor"]
    assert (
        indoor["variance-weighted"][0] <= indoor["selection"][0] * 1.15
    )
