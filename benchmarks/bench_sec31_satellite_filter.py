"""E4 -- §3.1: detecting unreliable readings with the satellite filter.

The scenario behind the paper's first adaptation: a receiver crosses from
open sky into an urban canyon and finally indoors, and -- as real devices
do -- keeps reporting its last fix after losing the sky.  The filter
(satellite-count >= threshold, fed by the NumberOfSatellites Component
Feature) is spliced in after the Parser.

Regenerated series: per-environment acceptance rate and error of
accepted vs all fixes, plus the error CDF summary.

Shape assertions: filtering removes the stale/low-satellite fixes, so
accepted-fix error is markedly lower than unfiltered error in the
degraded segments, at the cost of fewer fixes.
"""

import statistics

from repro.core import Kind, PerPos
from repro.geo.wgs84 import Wgs84Position
from repro.processing.filters import SatelliteFilterComponent
from repro.processing.gps_features import NumberOfSatellitesFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.gps import (
    GpsReceiver,
    INDOOR,
    OPEN_SKY,
    URBAN_CANYON,
)
from repro.sensors.trajectory import Waypoint, WaypointTrajectory

SEGMENTS = [
    (0.0, 200.0, OPEN_SKY),
    (200.0, 400.0, URBAN_CANYON),
    (400.0, 600.0, INDOOR),
]
DURATION_S = 600.0


def environment(t, _position):
    for start, end, env in SEGMENTS:
        if start <= t < end:
            return env
    return OPEN_SKY


def run(min_satellites):
    start = Wgs84Position(56.17, 10.19)
    trajectory = WaypointTrajectory(
        [
            Waypoint(0.0, start),
            Waypoint(DURATION_S, start.moved(90.0, DURATION_S * 1.4)),
        ]
    )
    middleware = PerPos()
    gps = GpsReceiver(
        "gps", trajectory, environment, seed=17, stale_hold_s=45.0
    )
    pipeline = build_gps_pipeline(middleware, gps, prefix="gps")
    parser = middleware.graph.component(pipeline.parser)
    parser.attach_feature(NumberOfSatellitesFeature())
    if min_satellites is not None:
        filt = SatelliteFilterComponent(min_satellites=min_satellites)
        middleware.psl.insert_between(
            pipeline.parser, pipeline.interpreter, filt
        )
    provider = middleware.create_provider(
        "app", accepts=(Kind.POSITION_WGS84,)
    )
    middleware.graph.connect(pipeline.interpreter, provider.sink.name)
    deliveries = []
    provider.add_listener(
        lambda d: deliveries.append(d), kind=Kind.POSITION_WGS84
    )
    middleware.run_until(DURATION_S)
    errors = [
        (
            d.timestamp,
            trajectory.position_at(d.timestamp).distance_to(d.payload),
        )
        for d in deliveries
    ]
    return trajectory, errors


def per_segment(errors):
    rows = []
    for start, end, env in SEGMENTS:
        segment = [e for t, e in errors if start <= t < end]
        rows.append(
            (
                env.name,
                len(segment),
                statistics.mean(segment) if segment else float("nan"),
                max(segment) if segment else float("nan"),
            )
        )
    return rows


def test_e4_satellite_filter(benchmark, results_writer):
    def workload():
        unfiltered = run(min_satellites=None)
        permissive = run(min_satellites=4)
        strict = run(min_satellites=5)
        return unfiltered, permissive, strict

    (_, unfiltered), (_, permissive), (_, filtered) = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    lines = [
        "§3.1 -- satellite-count filtering of unreliable GPS readings",
        "trace: open sky (0-200s) -> urban canyon (200-400s) -> indoor"
        " (400-600s)",
        "",
        f"{'segment':<14} {'variant':<11} {'fixes':>6} {'mean err':>9}"
        f" {'max err':>9}",
    ]
    variants = (
        ("unfiltered", unfiltered),
        ("filtered>=4", permissive),
        ("filtered>=5", filtered),
    )
    for label, errors in variants:
        for env_name, count, mean, worst in per_segment(errors):
            lines.append(
                f"{env_name:<14} {label:<11} {count:>6}"
                f" {mean:>8.1f}m {worst:>8.1f}m"
            )
    all_unfiltered = [e for _t, e in unfiltered]
    all_filtered = [e for _t, e in filtered]
    lines += [
        "",
        f"overall: unfiltered n={len(all_unfiltered)}"
        f" mean={statistics.mean(all_unfiltered):.1f}m"
        f" p95={sorted(all_unfiltered)[int(0.95 * len(all_unfiltered))]:.1f}m",
        f"overall: filtered   n={len(all_filtered)}"
        f" mean={statistics.mean(all_filtered):.1f}m"
        f" p95={sorted(all_filtered)[int(0.95 * len(all_filtered))]:.1f}m",
    ]
    results_writer("E4_sec31_satellite_filter", "\n".join(lines))

    # Shape: the filter trades fix count for reliability.
    assert len(all_filtered) < len(all_unfiltered)
    assert statistics.mean(all_filtered) < statistics.mean(all_unfiltered)
    # In the degraded segments the stale/poor fixes dominate unfiltered
    # error; the filter must cut the worst-case markedly.
    assert max(all_filtered) < max(all_unfiltered)
