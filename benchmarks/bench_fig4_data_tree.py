"""E3 -- Fig. 4: the data tree for the GPS channel.

Reproduces the figure's exact scenario: the GPS sensor emits raw string
fragments, several of which form one NMEA sentence; the first sentence
carries no valid position, so the Interpreter needs a second one before
producing WGS84_1.  The regenerated artefact is the rendered tree in the
figure's ``(data, logical time, time range)`` tuple format.

Shape assertions: the first output has logical time 1 and time range
1-2 over the sentence layer; the invalid sentence is part of the tree;
each sentence groups several raw fragments.
"""

from repro.core import Kind
from repro.core.channel import ChannelFeature
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.parser import NmeaParserComponent
from repro.sensors.nmea import GgaSentence


class TreeCapture(ChannelFeature):
    name = "TreeCapture"

    def __init__(self):
        super().__init__()
        self.trees = []

    def apply(self, tree):
        self.trees.append(tree)


def run_fig4_scenario():
    graph = ProcessingGraph()
    source = SourceComponent("GPS", (Kind.NMEA_RAW,))
    parser = NmeaParserComponent(name="Parser")
    interpreter = NmeaInterpreterComponent(name="Interpreter")
    app = ApplicationSink("Application", (Kind.POSITION_WGS84,))
    for c in (source, parser, interpreter, app):
        graph.add(c)
    graph.connect("GPS", "Parser")
    graph.connect("Parser", "Interpreter")
    graph.connect("Interpreter", "Application")
    pcl = ProcessChannelLayer(graph)
    capture = TreeCapture()
    pcl.attach_feature("GPS->Application", capture)

    # Fig. 4's stream: an invalid sentence over two fragments, then a
    # valid one over three fragments -> exactly five raw strings.
    invalid = GgaSentence(0.0, None, None, 0, 2, None, None).encode() + "\r\n"
    valid = GgaSentence(1.0, 56.17, 10.19, 1, 8, 1.1, 40.0).encode() + "\r\n"

    def fragments(stream, count, t):
        size = len(stream) // count + 1
        return [
            Datum(Kind.NMEA_RAW, stream[i : i + size], t, "GPS")
            for i in range(0, len(stream), size)
        ]

    for datum in fragments(invalid, 2, 0.0) + fragments(valid, 3, 1.0):
        source.inject(datum)
    return capture


def test_e3_fig4_data_tree(benchmark, results_writer):
    capture = benchmark.pedantic(run_fig4_scenario, rounds=1, iterations=1)

    assert len(capture.trees) == 1
    tree = capture.trees[0]
    results_writer(
        "E3_fig4_data_tree",
        "Fig. 4 -- data tree for the GPS channel\n\n" + tree.render(),
    )

    root = tree.root
    assert root.datum.kind == Kind.POSITION_WGS84
    assert root.logical_time == 1
    assert root.time_range == (1, 2)  # WGS84_1 spans NMEA_1..NMEA_2
    sentences = tree.layer(1)
    assert [e.logical_time for e in sentences] == [1, 2]
    # The invalid sentence contributed but produced nothing by itself.
    assert not sentences[0].datum.payload.has_fix
    assert sentences[1].datum.payload.has_fix
    raw = tree.layer(0)
    assert len(raw) == 5  # the figure's five raw strings
    assert all(e.time_range is None for e in raw)
    # Sentence time ranges point at their raw fragments, as in the figure.
    assert sentences[0].time_range == (1, 2)
    assert sentences[1].time_range == (3, 5)
