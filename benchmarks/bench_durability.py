"""E16 -- durable state: snapshot/restore cost and warm handoff pause.

The durability seam (PR "Durable state") must be cheap enough to run
*inside* a live middleware: full checkpoints while lanes are loaded,
crash-recovery restores that replay the post-snapshot journal, and
warm lane handoffs that pause one target's traffic only for the
export/install window.  Three claims are pinned:

* **Snapshot/restore scale with lane depth**: per pending-datum
  snapshot cost is flat across 64/512/2048-deep lanes, and the
  serialized size per datum (``bytes_per_datum``, a runner-independent
  figure) stays within the committed baseline's envelope (gated by
  ``check_regression.py`` in CI).
* **Crash recovery loses nothing**: every datum accepted before the
  simulated crash -- snapshotted *or* journaled after the snapshot --
  is pending again after restore and drains to the sink (``lost == 0``
  and ``replayed`` equal to the journaled entry count, both re-checked
  by the CI gate).
* **Bounded handoff pause**: migrating a loaded lane between shards
  relocates every pending datum (``lost == 0``) with a pause below
  ``PAUSE_CEILING_MS`` -- generous against noisy CI runners, but a
  hard ceiling: a handoff that stalls traffic for longer is a
  regression however fast the machine.

Regenerated series: per-depth snapshot/restore latency and size plus
the handoff record, machine-readable in
``benchmarks/results/BENCH_durability.json`` (gated by
``check_regression.py`` in CI).
"""

import time

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.durability import MemoryStateStore, restore_from_store
from repro.durability.manager import DurabilityManager
from repro.runtime import PositioningEngine, ShardedEngine

DEPTHS = (64, 512, 2048)
N_TARGETS = 4
EXTRA = 32  # post-snapshot submits per lane (replayed from the journal)
GATED_DEPTH = "depth512"
PAUSE_CEILING_MS = 250.0
HANDOFF_DATUMS = 512


def build_graph():
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(FunctionComponent("f", ("x",), ("x",), fn=lambda d: d))
    graph.add(ApplicationSink("app", ("x",), keep_last=100_000))
    graph.connect("src", "f")
    graph.connect("f", "app")
    return graph


def loaded_engine(depth):
    """N_TARGETS lanes, each holding ``depth`` pending datums."""
    graph = build_graph()
    engine = PositioningEngine(graph)
    for t in range(N_TARGETS):
        engine.track(f"t{t}", "src", capacity=depth + EXTRA)
        for i in range(depth):
            engine.submit(f"t{t}", Datum("x", (t, i), float(i)))
    return graph, engine


def crash_recovery_cell(depth):
    """Snapshot a loaded engine, journal more traffic, crash, restore."""
    graph, engine = loaded_engine(depth)
    store = MemoryStateStore()
    manager = DurabilityManager(graph, store)
    manager.attach()

    start = time.perf_counter()
    summary = manager.snapshot()
    snapshot_s = time.perf_counter() - start

    # Post-snapshot traffic lands in the journal only.
    for t in range(N_TARGETS):
        for i in range(EXTRA):
            engine.submit(f"t{t}", Datum("x", (t, depth + i), float(i)))
    total = N_TARGETS * (depth + EXTRA)
    assert engine.depth_total() == total
    del graph, engine  # the crash

    graph2 = build_graph()
    engine2 = PositioningEngine(graph2)
    start = time.perf_counter()
    replayed = restore_from_store(graph2, engine2, store)
    restore_s = time.perf_counter() - start

    lost = total - engine2.depth_total()
    drained = engine2.drain_all(max_rounds=100_000)
    assert drained == total
    assert len(graph2.component("app").received) == total
    return {
        "datums": total,
        "snapshot_ms": round(snapshot_s * 1000, 3),
        "restore_ms": round(restore_s * 1000, 3),
        "bytes": summary["bytes"],
        "bytes_per_datum": round(summary["bytes"] / (N_TARGETS * depth), 1),
        "replayed": replayed,
        "expected_replayed": N_TARGETS * EXTRA,
        "lost": lost,
    }


def handoff_cell():
    """Migrate a loaded lane between in-process shards, live."""
    engine = ShardedEngine(build_graph, 3)
    for t in range(8):
        engine.track(f"h{t}", "src", capacity=HANDOFF_DATUMS + 8)
    for i in range(HANDOFF_DATUMS):
        engine.submit("h0", Datum("x", i, float(i)))
    before = engine.pending_total()
    destination = (engine.shard_of("h0") + 1) % 3
    record = engine.migrate_target("h0", destination)
    lost = before - engine.pending_total()
    # The lane keeps accepting traffic on its new home.
    engine.submit("h0", Datum("x", "post-handoff", 0.0))
    drained = engine.drain_all()
    engine.close()
    assert drained == before + 1
    return {
        "datums": record["datums"],
        "pause_ms": round(record["pause_s"] * 1000, 3),
        "lost": lost,
        "migrations": 1,
    }


def test_e16_durability(benchmark, results_writer, bench_json_writer):
    def sweep():
        depths = {
            f"depth{depth}": crash_recovery_cell(depth) for depth in DEPTHS
        }
        return {"depths": depths, "handoff": handoff_cell()}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    depths, handoff = result["depths"], result["handoff"]

    lines = [
        f"Durable state: {N_TARGETS} lanes checkpointed at depths"
        f" {DEPTHS}, {EXTRA} post-snapshot submits/lane replayed from"
        f" the journal; one {HANDOFF_DATUMS}-datum lane migrated"
        f" between in-process shards (pause ceiling"
        f" {PAUSE_CEILING_MS:g}ms)",
    ]
    for key, row in depths.items():
        lines.append(
            f"{key}: snapshot {row['snapshot_ms']:.1f}ms"
            f" ({row['bytes']:,}B, {row['bytes_per_datum']:.0f}B/datum),"
            f" restore {row['restore_ms']:.1f}ms"
            f" (replayed {row['replayed']}, lost {row['lost']})"
        )
    lines.append(
        f"handoff: {handoff['datums']} datums in"
        f" {handoff['pause_ms']:.2f}ms pause, lost {handoff['lost']}"
    )
    results_writer("E16_durability", "\n".join(lines))
    bench_json_writer(
        "durability",
        {
            "n_targets": N_TARGETS,
            "extra_per_lane": EXTRA,
            "gated_depth": GATED_DEPTH,
            "pause_ceiling_ms": PAUSE_CEILING_MS,
            "depths": depths,
            "handoff": handoff,
        },
        filename="BENCH_durability.json",
    )

    # The E16 gates: crash recovery is lossless at every depth, replay
    # covers exactly the journaled tail, and the handoff pause stays
    # under the ceiling with zero datum loss.
    for key, row in depths.items():
        assert row["lost"] == 0, f"{key}: lost {row['lost']} datums"
        assert row["replayed"] == row["expected_replayed"], (
            f"{key}: replayed {row['replayed']},"
            f" expected {row['expected_replayed']}"
        )
    assert handoff["lost"] == 0, f"handoff lost {handoff['lost']} datums"
    assert handoff["pause_ms"] <= PAUSE_CEILING_MS, (
        f"handoff pause {handoff['pause_ms']:.2f}ms exceeds the"
        f" {PAUSE_CEILING_MS:g}ms ceiling"
    )
