"""E7 -- §3.1-3.4: the same adaptations on the baseline middleware.

The paper argues each adaptation is harder or lossier in existing
middleware.  This bench *measures* the two quantifiable claims against
the implemented baselines:

(a) **timing correctness** (§3.2 on PoSIM): "when questioned it will
    always return the latest HDOP value, which may correspond to a new
    position."  We stream fixes whose true HDOP is known, deliver them
    with realistic event lag, and score what fraction of per-position
    HDOP attributions are correct -- PoSIM-style get_info vs the PerPos
    data tree.

(b) **format pollution** (§3.1/§3.4 on the Location Stack): admitting
    the satellite count requires a middleware source change, after which
    the field rides on *every* technology's measurements; we measure the
    fraction of dead fields across a GPS+WiFi workload.

(c) **power-policy expressiveness** (§3.3 on PoSIM): the paper notes
    PoSIM power management is a control feature flipped between preset
    levels by threshold policies.  We run that two-rate policy and
    EnTracked's dynamic scheme on the identical pedestrian scenario and
    compare the energy each pays for its error level.

Shape assertions: PerPos attributes 100% correctly while lagged PoSIM
mis-attributes; the extended stack pollutes non-GPS measurements; the
unmodified stack rejects the extension outright; the PoSIM power policy
pays a multiple of EnTracked's energy.
"""

import pytest

from repro.baselines.location_stack import FormatError, LocationStackMiddleware
from repro.baselines.posim import PosimMiddleware, SensorWrapper
from repro.core import Kind, PerPos
from repro.core.channel import ChannelFeature
from repro.geo.wgs84 import Wgs84Position
from repro.processing.gps_features import HdopFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.gps import GpsReceiver, SUBURBAN, constant_environment
from repro.sensors.trajectory import Waypoint, WaypointTrajectory

DURATION_S = 300.0


def trajectory():
    start = Wgs84Position(56.17, 10.19)
    return WaypointTrajectory(
        [Waypoint(0.0, start), Waypoint(DURATION_S, start.moved(90.0, 400.0))]
    )


# -- (a) timing correctness -------------------------------------------------


class HdopAttributionFeature(ChannelFeature):
    """PerPos side: per delivered position, read HDOP from the data tree."""

    name = "HdopAttribution"
    requires_component_features = ("HDOP",)

    def __init__(self):
        super().__init__()
        self.attributions = []  # (position_timestamp, hdop)

    def apply(self, tree):
        hdops = [value for _p, value in tree.get_data(Kind.HDOP)]
        if hdops:
            self.attributions.append(
                (tree.root.datum.timestamp, hdops[-1])
            )


def run_perpos_attribution():
    middleware = PerPos()
    gps = GpsReceiver(
        "gps", trajectory(), constant_environment(SUBURBAN), seed=9
    )
    pipeline = build_gps_pipeline(middleware, gps, prefix="gps")
    middleware.graph.component(pipeline.parser).attach_feature(HdopFeature())
    provider = middleware.create_provider(
        "app", accepts=(Kind.POSITION_WGS84,)
    )
    middleware.graph.connect(pipeline.interpreter, provider.sink.name)
    feature = HdopAttributionFeature()
    middleware.pcl.channels_into(provider.sink.name)[0].attach_feature(
        feature
    )
    middleware.run_until(DURATION_S)
    truth = {
        round(e.time_s, 3): e.hdop
        for e in gps.epochs
        if e.hdop is not None
    }
    # NMEA carries HDOP with one decimal, so "correct attribution" means
    # matching the right epoch's value within that quantisation.
    correct = sum(
        1
        for t, hdop in feature.attributions
        if truth.get(round(t, 3)) is not None
        and abs(truth[round(t, 3)] - hdop) <= 0.051
    )
    return correct, len(feature.attributions)


def run_posim_attribution(lag_updates):
    """PoSIM side: same stream; get_info('hdop') at delivery time."""
    gps = GpsReceiver(
        "gps", trajectory(), constant_environment(SUBURBAN), seed=9
    )
    gps.sample(DURATION_S)
    epochs = [e for e in gps.epochs if e.reported_position is not None]
    state = {"hdop": None}
    middleware = PosimMiddleware(delivery_lag_updates=lag_updates)
    middleware.register_wrapper(
        SensorWrapper("gps", infos={"hdop": lambda: state["hdop"]})
    )
    truth = {}
    attributions = []
    middleware.add_position_listener(
        lambda p: attributions.append(
            (p.timestamp, middleware.get_info("gps", "hdop"))
        )
    )
    for epoch in epochs:
        state["hdop"] = epoch.hdop
        truth[epoch.time_s] = epoch.hdop
        position = Wgs84Position(
            epoch.reported_position.latitude_deg,
            epoch.reported_position.longitude_deg,
            timestamp=epoch.time_s,
        )
        middleware.publish_position("gps", position)
    correct = sum(
        1
        for t, hdop in attributions
        if truth.get(t) is not None
        and hdop is not None
        and abs(truth[t] - hdop) <= 0.051
    )
    return correct, len(attributions)


# -- (b) format pollution ------------------------------------------------------


def run_stack_pollution():
    gps_source = GpsReceiver(
        "gps", trajectory(), constant_environment(SUBURBAN), seed=9
    )
    gps_source.sample(DURATION_S)
    epochs = [e for e in gps_source.epochs if e.reported_position]

    def gps_adapter_factory(stack_epochs):
        it = iter(stack_epochs)

        def produce(now):
            try:
                e = next(it)
            except StopIteration:
                return []
            return [
                {
                    "latitude_deg": e.reported_position.latitude_deg,
                    "longitude_deg": e.reported_position.longitude_deg,
                    "accuracy_m": 5.0,
                    "timestamp": e.time_s,
                    "num_satellites": e.satellites_used,
                }
            ]

        return produce

    # Unmodified stack: the extension is rejected.
    closed = LocationStackMiddleware()
    closed.add_sensor("gps", gps_adapter_factory(epochs))
    rejected = False
    try:
        closed.pump(0.0)
    except FormatError:
        rejected = True

    # Source-modified stack: works, but pollutes WiFi measurements.
    extended = LocationStackMiddleware(extra_fields=("num_satellites",))
    extended.add_sensor("gps", gps_adapter_factory(epochs))
    extended.add_sensor(
        "wifi",
        lambda now: [
            {
                "latitude_deg": 56.17,
                "longitude_deg": 10.19,
                "accuracy_m": 8.0,
                "timestamp": now,
            }
        ],
    )
    for step in range(len(epochs)):
        extended.pump(float(step))
    return rejected, extended.pollution_report()["num_satellites"]


# -- (c) power-policy expressiveness ------------------------------------------


def run_power_comparison():
    from repro.baselines.posim_power import PosimPowerScenario
    from repro.energy.entracked import EnTrackedSystem
    from repro.sensors.trajectory import RandomWalkTrajectory

    walk = RandomWalkTrajectory(
        Wgs84Position(56.17, 10.19),
        1800.0,
        seed=4,
        pause_probability=0.3,
        pause_s=60.0,
    )
    posim = PosimPowerScenario(walk, seed=1).run(1800.0)
    entracked = EnTrackedSystem(
        walk, threshold_m=10.0, mode="entracked", seed=1
    ).run(1800.0)
    return posim, entracked


def test_e7_middleware_comparison(benchmark, results_writer):
    def workload():
        perpos = run_perpos_attribution()
        posim_synced = run_posim_attribution(lag_updates=0)
        posim_lagged = run_posim_attribution(lag_updates=1)
        stack = run_stack_pollution()
        power = run_power_comparison()
        return perpos, posim_synced, posim_lagged, stack, power

    (perpos, posim_synced, posim_lagged, stack, power) = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    rejected, pollution = stack
    posim_power, entracked_power = power

    def rate(pair):
        correct, total = pair
        return 100.0 * correct / total if total else float("nan")

    lines = [
        "§3.1-3.4 -- the adaptations on baseline middleware",
        "",
        "(a) HDOP-to-position attribution correctness",
        f"  PerPos data tree          : {rate(perpos):6.1f} %"
        f"  ({perpos[0]}/{perpos[1]})",
        f"  PoSIM get_info, no lag    : {rate(posim_synced):6.1f} %"
        f"  ({posim_synced[0]}/{posim_synced[1]})",
        f"  PoSIM get_info, 1-update lag: {rate(posim_lagged):4.1f} %"
        f"  ({posim_lagged[0]}/{posim_lagged[1]})",
        "",
        "(b) Location-Stack position-format extension",
        f"  unmodified stack accepts satellite field : "
        f"{'NO (FormatError)' if rejected else 'yes'}",
        f"  extended stack dead-field rate            : "
        f"{100.0 * pollution:.1f} % of all measurements",
        "",
        "(c) power management: PoSIM two-rate policy vs EnTracked"
        " (30 min pedestrian)",
        f"  PoSIM policy   : {posim_power.energy_j:6.0f} J,"
        f" mean err {posim_power.mean_error_m:5.1f} m,"
        f" gps on {posim_power.gps_on_fraction:5.1%},"
        f" tx {posim_power.transmissions}",
        f"  EnTracked (10m): {entracked_power.energy_j:6.0f} J,"
        f" mean err {entracked_power.mean_error_m:5.1f} m,"
        f" gps on {entracked_power.gps_on_fraction:5.1%},"
        f" tx {entracked_power.transmissions}",
    ]
    results_writer("E7_sec34_comparison", "\n".join(lines))

    # Shape: PerPos attributes perfectly; lagged PoSIM is much worse
    # (it is only "right" when consecutive epochs happen to share an
    # HDOP value, which slow geometry changes make fairly common).
    assert perpos[1] > 0 and perpos[0] == perpos[1]
    assert posim_lagged[0] < posim_lagged[1] * 0.7
    # The closed format rejects the extension; the extension pollutes.
    assert rejected
    assert pollution > 0.3
    # Dynamic sleep scheduling beats the two-rate policy on energy while
    # staying in a comparable error regime.
    assert entracked_power.energy_j < posim_power.energy_j * 0.75
    assert entracked_power.mean_error_m < 3.0 * max(
        posim_power.mean_error_m, 5.0
    )
