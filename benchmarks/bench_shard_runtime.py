"""E13 -- sharded multi-worker engine (breaking the interpreter ceiling).

E12 showed batched dispatch saturating one ``PositioningEngine``; this
benchmark measures the next rung: partitioning the tracked-target
population across N engine shards (``repro.runtime.sharding``).  Two
claims are pinned:

* **Equivalence** (in-process executor): draining a workload through a
  4-shard ``ShardedEngine`` delivers exactly the same multiset of sink
  outputs as draining it through one ``PositioningEngine`` -- sharding
  redistributes work, it must not change results.  This is the
  within-run twin of the Hypothesis property in
  ``tests/test_property_sharding.py``.
* **Speedup** (multiprocessing executor): with real cores available, a
  4-shard drain sustains at least ``SPEEDUP_FLOOR``x the single-shard
  throughput.  The floor is hardware-conditional -- a run recorded on a
  single core cannot exhibit parallel speedup, so the artefact records
  ``cpu_count`` and both this test and ``check_regression.py`` skip the
  absolute floor below ``MIN_CPUS`` cores (the relative ratio gate in CI
  still applies everywhere).

Regenerated series: datums/s per (executor, shards) cell and the speedup
over that executor's single-shard run, machine-readable in
``benchmarks/results/BENCH_shard.json`` (gated by ``check_regression.py``
in CI).
"""

import os
import time
from collections import Counter

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.runtime import PositioningEngine, ShardedEngine

# Scaled up by the nightly workflow via E13_* environment overrides
# (PR CI runs the committed defaults).
N_DATUMS_PER_TARGET = int(os.environ.get("E13_DATUMS", "50"))
N_TARGETS = int(os.environ.get("E13_TARGETS", "64"))
SHARD_COUNTS = tuple(
    int(part) for part in os.environ.get("E13_SHARDS", "1,2,4").split(",")
)
QUANTUM = 32
SPEEDUP_FLOOR = 1.5
MIN_CPUS = 2
GATED_WORKLOAD = f"multiprocessing_shards{max(SHARD_COUNTS)}"


def recipe():
    """One shard's pipeline: src -> stage1 -> stage2 -> app.

    Module-level so the multiprocessing executor can pickle it; the
    stages burn a little CPU per datum so the parallel sweep measures
    compute spread, not pure queue overhead.
    """
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(FunctionComponent("stage1", ("x",), ("x",), fn=_work))
    graph.add(FunctionComponent("stage2", ("x",), ("x",), fn=_work))
    graph.add(ApplicationSink("app", ("x",), keep_last=100_000))
    graph.connect("src", "stage1")
    graph.connect("stage1", "stage2")
    graph.connect("stage2", "app")
    return graph


def _work(d):
    # ~1us of arithmetic: enough per-datum compute that fan-out across
    # cores shows, small enough that the sweep stays fast.
    acc = d.payload
    for _ in range(20):
        acc = (acc * 31 + 7) % 1_000_003
    return d.annotated(acc=acc)


def workload():
    return [
        (f"t{t}", Datum("x", i, float(i)))
        for i in range(N_DATUMS_PER_TARGET)
        for t in range(N_TARGETS)
    ]


def sharded_rate(shards, executor, rounds=2):
    """Best-of-``rounds`` datums/s for one (executor, shards) cell."""
    n = N_TARGETS * N_DATUMS_PER_TARGET
    best = 0.0
    for _ in range(rounds):
        with ShardedEngine(
            recipe,
            shards,
            executor=executor,
            scheduler=("round_robin", QUANTUM),
            stamp_targets=False,
        ) as engine:
            for t in range(N_TARGETS):
                engine.track(f"t{t}", "src", capacity=N_DATUMS_PER_TARGET)
            engine.submit_batch(workload())
            start = time.perf_counter()
            drained = engine.drain_all(max_rounds=n + 1)
            elapsed = time.perf_counter() - start
            assert drained == n
        best = max(best, n / elapsed)
    return best


def equivalence_check():
    """Sharded in-process drain == single-engine drain, as multisets."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(FunctionComponent("stage1", ("x",), ("x",), fn=_work))
    graph.add(FunctionComponent("stage2", ("x",), ("x",), fn=_work))
    sink = ApplicationSink("app", ("x",), keep_last=100_000)
    graph.add(sink)
    graph.connect("src", "stage1")
    graph.connect("stage1", "stage2")
    graph.connect("stage2", "app")
    single = PositioningEngine(graph)
    for t in range(N_TARGETS):
        single.track(f"t{t}", "src", capacity=N_DATUMS_PER_TARGET)
    for target_id, datum in workload():
        single.submit(target_id, datum)
    single.drain_all()
    single_outputs = Counter(
        (d.kind, d.payload, d.attributes.get("target"))
        for d in sink.received
    )

    with ShardedEngine(recipe, 4) as engine:
        for t in range(N_TARGETS):
            engine.track(f"t{t}", "src", capacity=N_DATUMS_PER_TARGET)
        engine.submit_batch(workload())
        engine.drain_all()
        sharded_outputs = Counter(
            (kind, payload, target)
            for _sink, kind, payload, target in engine.sink_outputs()
        )
    return single_outputs, sharded_outputs


@pytest.mark.multiproc
def test_e13_shard_runtime(benchmark, results_writer, bench_json_writer):
    single_outputs, sharded_outputs = equivalence_check()
    assert sharded_outputs == single_outputs, (
        "4-shard in-process drain delivered a different output multiset"
        " than the single engine"
    )

    def sweep():
        workloads = {}
        for executor in ("inprocess", "multiprocessing"):
            single_rate = None
            for shards in SHARD_COUNTS:
                rate = sharded_rate(shards, executor)
                if shards == 1:
                    single_rate = rate
                workloads[f"{executor}_shards{shards}"] = {
                    "executor": executor,
                    "shards": shards,
                    "targets": N_TARGETS,
                    "rate": round(rate, 1),
                    "speedup": round(rate / single_rate, 3),
                }
        return workloads

    workloads = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cpu_count = os.cpu_count() or 1

    lines = [
        "Sharded engine: 4-component pipeline per shard,"
        f" {N_TARGETS} targets x {N_DATUMS_PER_TARGET} datums,"
        f" consistent-hash placement, quantum {QUANTUM}"
        f" (cpu_count={cpu_count})",
        f"equivalence: 4-shard in-process == single engine"
        f" ({sum(single_outputs.values())} sink outputs)",
    ]
    for key, row in workloads.items():
        lines.append(
            f"{key}: {row['rate']:,.0f} datums/s"
            f" ({row['speedup']:.2f}x vs 1 shard)"
        )
    results_writer("E13_shard_runtime", "\n".join(lines))
    bench_json_writer(
        "shard",
        {
            "n_targets": N_TARGETS,
            "n_datums_per_target": N_DATUMS_PER_TARGET,
            "cpu_count": cpu_count,
            "min_cpus": MIN_CPUS,
            "speedup_floor": SPEEDUP_FLOOR,
            "gated_workload": GATED_WORKLOAD,
            "equivalence_outputs": sum(single_outputs.values()),
            "workloads": workloads,
        },
        filename="BENCH_shard.json",
    )

    gated = workloads[GATED_WORKLOAD]
    if cpu_count >= MIN_CPUS:
        assert gated["speedup"] >= SPEEDUP_FLOOR, (
            f"multiprocessing 4-shard speedup {gated['speedup']:.2f}x"
            f" below the {SPEEDUP_FLOOR}x floor on {cpu_count} cores"
        )
    # The in-process executor is a coordination layer, not a parallel
    # one: it must not collapse under sharding.
    for key, row in workloads.items():
        if row["executor"] == "inprocess":
            assert row["speedup"] >= 0.5, f"{key} collapsed vs 1 shard"
