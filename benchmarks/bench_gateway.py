"""E15 -- ingestion gateway overhead under mixed external traffic.

The gateway (PR "Ingestion gateway") puts schema validation, crosswalk
normalisation, device-policy admission and DLQ accounting between raw
wire payloads and ``engine.submit``.  Two claims are pinned:

* **Clean-traffic overhead**: for well-formed ``phone_tracker_v1``
  payloads the whole gateway pipeline costs at most
  ``OVERHEAD_CEILING``x the direct ``engine.submit`` path over the same
  src -> stage1 -> stage2 -> app pipeline (the E13 recipe shape).  The
  overhead estimate must survive noisy container CPUs, so rounds run as
  alternating direct/gateway pairs and the figure is the *smaller* of
  two independently robust estimators -- ratio-of-best-rates and
  median-of-paired-ratios.  A single fast direct round inflates the
  first, sustained frequency drift inflates the second; a genuine
  regression shifts both, so taking the min suppresses noise without
  hiding real slowdowns (the cross-run ratio gate in
  ``check_regression.py`` watches the same figure).
* **Graceful degradation**: malformed-heavy, unknown-device and burst
  traffic keep the gateway throughput within the same order of
  magnitude (each degraded workload records its rate *relative to the
  same run's clean rate* -- runner-independent, gated in CI), the DLQ
  ring stays bounded at its capacity, and the accounting invariant
  ``submitted == accepted + rejected + shed + pending`` holds exactly.

Regenerated series: datums/s per traffic mix plus the clean-path
overhead factor, machine-readable in
``benchmarks/results/BENCH_gateway.json`` (gated by
``check_regression.py`` in CI).
"""

import statistics
import time

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.gateway import AutoTrackPolicy, IngestionGateway
from repro.runtime import PositioningEngine

POS = Kind.POSITION_WGS84
N_PAYLOADS = 2000
N_DEVICES = 32
PAIRS = 12
OVERHEAD_CEILING = 1.15
DLQ_CAPACITY = 256
BURST_ADMISSION_CAPACITY = 256
GATED_WORKLOAD = "clean"


def _work(d):
    # ~1us of arithmetic per stage (the E13 recipe's per-datum compute).
    acc = int(d.payload["lat"] * 1000) if isinstance(d.payload, dict) else 0
    for _ in range(20):
        acc = (acc * 31 + 7) % 1_000_003
    return d.annotated(acc=acc)


def build():
    """The E13 recipe shape: src -> stage1 -> stage2 -> app."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", (POS,)))
    graph.add(FunctionComponent("stage1", (POS,), (POS,), fn=_work))
    graph.add(FunctionComponent("stage2", (POS,), (POS,), fn=_work))
    graph.add(ApplicationSink("app", (POS,), keep_last=100_000))
    graph.connect("src", "stage1")
    graph.connect("stage1", "stage2")
    graph.connect("stage2", "app")
    return graph


class _Clock:
    now = 0.0


def clean_payloads(n=N_PAYLOADS, devices=N_DEVICES):
    return [
        {
            "source_format": "phone_tracker_v1",
            "device_id": f"d{i % devices}",
            "timestamp": 1000.0 + i,
            "lat": 55.0,
            "lon": 12.0,
            "accuracy_m": 5.0,
            "battery_pct": 0.8,
        }
        for i in range(n)
    ]


def fresh_gateway(
    engine,
    *,
    admission_capacity=N_PAYLOADS,
    admission_policy="block",
    max_devices=None,
):
    return IngestionGateway(
        engine,
        "src",
        device_policy=AutoTrackPolicy(
            capacity=N_PAYLOADS, max_devices=max_devices
        ),
        admission_capacity=admission_capacity,
        admission_policy=admission_policy,
        dlq_capacity=DLQ_CAPACITY,
        clock=_Clock(),
    )


def direct_round(raws):
    """Baseline: hand-built datums straight into engine lanes."""
    engine = PositioningEngine(build())
    for i in range(N_DEVICES):
        engine.track(f"d{i}", "src", capacity=N_PAYLOADS)
    submit = engine.submit
    start = time.perf_counter()
    for raw in raws:
        datum = Datum(
            POS,
            raw,
            raw["timestamp"],
            producer="direct",
            attributes={"device": raw["device_id"]},
        )
        submit(raw["device_id"], datum)
    engine.drain_all()
    return len(raws) / (time.perf_counter() - start)


def gateway_round(raws, **gateway_kwargs):
    """The same traffic through the full gateway pipeline."""
    engine = PositioningEngine(build())
    gateway = fresh_gateway(engine, **gateway_kwargs)
    submit = gateway.submit
    start = time.perf_counter()
    for raw in raws:
        submit(raw)
    gateway.forward()
    engine.drain_all()
    rate = len(raws) / (time.perf_counter() - start)
    return rate, gateway


def clean_overhead(raws):
    """Noise-robust clean-traffic overhead over alternating pairs."""
    ratios = []
    best_direct = best_gateway = 0.0
    for pair in range(PAIRS):
        if pair % 2 == 0:
            direct = direct_round(raws)
            gw, gateway = gateway_round(raws)
        else:
            gw, gateway = gateway_round(raws)
            direct = direct_round(raws)
        assert gateway.accepted == len(raws)
        assert gateway.rejected == 0 and gateway.shed == 0
        ratios.append(direct / gw)
        best_direct = max(best_direct, direct)
        best_gateway = max(best_gateway, gw)
    best_ratio = best_direct / best_gateway
    median_ratio = statistics.median(ratios)
    return {
        "rate": round(best_gateway, 1),
        "direct_rate": round(best_direct, 1),
        "best_ratio": round(best_ratio, 3),
        "median_ratio": round(median_ratio, 3),
        "overhead": round(min(best_ratio, median_ratio), 3),
    }


def malformed_payloads(n=N_PAYLOADS):
    """50% clean, 50% rejected across every early pipeline stage."""
    raws = []
    for i, raw in enumerate(clean_payloads(n)):
        if i % 2 == 0:
            raws.append(raw)
        elif i % 8 == 1:
            raws.append({**raw, "source_format": "mystery_v9"})  # format
        elif i % 8 == 3:
            raws.append({k: v for k, v in raw.items() if k != "lat"})  # schema
        elif i % 8 == 5:
            raws.append({**raw, "lat": "north"})  # schema (type)
        else:
            raws.append({**raw, "lon": 999.0})  # schema (range)
    return raws


def degraded_workloads(clean_rate):
    """Rates + accounting for the malformed / unknown / burst mixes."""
    workloads = {}

    raws = malformed_payloads()
    n_bad = sum(
        1
        for raw in raws
        if raw.get("source_format") != "phone_tracker_v1"
        or "lat" not in raw
        or raw["lat"] == "north"
        or raw.get("lon") == 999.0
    )
    rate, gateway = best_of_rounds(raws)
    assert gateway.rejected == n_bad
    assert gateway.accepted == len(raws) - n_bad
    assert len(gateway.dlq) <= DLQ_CAPACITY, "DLQ ring must stay bounded"
    workloads["malformed_heavy"] = {
        "rate": round(rate, 1),
        "rejected": gateway.rejected,
        "accepted": gateway.accepted,
        "dlq_depth": len(gateway.dlq),
        "relative_rate": round(rate / clean_rate, 3),
    }

    # Every payload past the first 8 devices is turned away by policy.
    raws = clean_payloads()
    rate, gateway = best_of_rounds(raws, max_devices=8)
    assert gateway.accepted + gateway.rejected == len(raws)
    assert gateway.rejected > 0
    workloads["unknown_flood"] = {
        "rate": round(rate, 1),
        "rejected": gateway.rejected,
        "accepted": gateway.accepted,
        "relative_rate": round(rate / clean_rate, 3),
    }

    # A burst against a small drop_oldest admission queue: evictees are
    # shed to the DLQ, the freshest window survives.
    raws = clean_payloads()
    rate, gateway = best_of_rounds(
        raws,
        admission_capacity=BURST_ADMISSION_CAPACITY,
        admission_policy="drop_oldest",
    )
    assert gateway.shed == len(raws) - BURST_ADMISSION_CAPACITY
    assert gateway.accepted == BURST_ADMISSION_CAPACITY
    assert len(gateway.dlq) <= DLQ_CAPACITY, "DLQ ring must stay bounded"
    workloads["burst_shed"] = {
        "rate": round(rate, 1),
        "shed": gateway.shed,
        "accepted": gateway.accepted,
        "dlq_depth": len(gateway.dlq),
        "relative_rate": round(rate / clean_rate, 3),
    }

    for row in workloads.values():
        assert row["rate"] > 0
    return workloads


def best_of_rounds(raws, rounds=3, **gateway_kwargs):
    """Best-of-``rounds`` gateway rate; returns (rate, last gateway)."""
    best = 0.0
    gateway = None
    for _ in range(rounds):
        rate, gateway = gateway_round(raws, **gateway_kwargs)
        assert gateway.pending == 0
        assert (
            gateway.submitted
            == gateway.accepted + gateway.rejected + gateway.shed
        )
        best = max(best, rate)
    return best, gateway


def test_e15_gateway_overhead(benchmark, results_writer, bench_json_writer):
    raws = clean_payloads()

    def sweep():
        workloads = {"clean": clean_overhead(raws)}
        workloads.update(degraded_workloads(workloads["clean"]["rate"]))
        return workloads

    workloads = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"Ingestion gateway: {N_PAYLOADS} phone_tracker_v1 payloads x"
        f" {N_DEVICES} devices through src -> stage1 -> stage2 -> app,"
        f" {PAIRS} alternating direct/gateway pairs,"
        f" dlq_capacity={DLQ_CAPACITY}",
        f"clean: {workloads['clean']['rate']:,.0f} datums/s"
        f" = {workloads['clean']['overhead']:.3f}x direct engine.submit"
        f" (best-ratio {workloads['clean']['best_ratio']:.3f},"
        f" median {workloads['clean']['median_ratio']:.3f},"
        f" ceiling {OVERHEAD_CEILING}x)",
    ]
    for key in ("malformed_heavy", "unknown_flood", "burst_shed"):
        row = workloads[key]
        extra = ", ".join(
            f"{field}={row[field]}"
            for field in ("rejected", "accepted", "shed", "dlq_depth")
            if field in row
        )
        lines.append(
            f"{key}: {row['rate']:,.0f} datums/s"
            f" ({row['relative_rate']:.2f}x clean; {extra})"
        )
    results_writer("E15_gateway", "\n".join(lines))
    bench_json_writer(
        "gateway",
        {
            "n_payloads": N_PAYLOADS,
            "n_devices": N_DEVICES,
            "pairs": PAIRS,
            "dlq_capacity": DLQ_CAPACITY,
            "gated_workload": GATED_WORKLOAD,
            "overhead_ceiling": OVERHEAD_CEILING,
            "workloads": workloads,
        },
        filename="BENCH_gateway.json",
    )

    # The E15 gate: the clean path may cost at most OVERHEAD_CEILING x
    # the direct submit path, and degraded traffic stays bounded.
    assert workloads["clean"]["overhead"] <= OVERHEAD_CEILING, (
        f"gateway clean-traffic overhead"
        f" {workloads['clean']['overhead']:.3f}x exceeds the"
        f" {OVERHEAD_CEILING}x ceiling"
    )
