"""E12 -- multi-target scale-out (the issue's multi-target load benchmark).

The paper defers "scalability" to future work; the scale-out runtime
(``repro.runtime``) is this reproduction's answer, and this benchmark
measures its central claim: batched dispatch amortises routing-table
resolution and per-datum interpreter overhead, so draining many tracked
targets through a shared pipeline in batches beats draining the same
workload datum-by-datum.

Workload: T targets share one src -> stage1 -> stage2 -> app pipeline,
each behind its own ingestion lane.  Every lane is pre-filled with the
same number of datums, then a round-robin scheduler with quantum B
drains everything through ``inject_batch``.  B = 1 *is* the single-datum
path (every batch degenerates to one datum), so the sweep's B = 1 row is
the baseline each speedup is computed against -- within one run, on one
machine, which keeps the figure runner-independent.

Regenerated series: datums/s per (targets, batch) cell plus the batch
speedup over single-datum, machine-readable in
``benchmarks/results/BENCH_scale.json`` (gated by
``check_regression.py`` in CI).

Shape assertions: the 64-target batched drain is at least 2x the
single-datum drain, and batching never loses throughput on the small
workload either.
"""

import time

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.runtime import PositioningEngine, RoundRobinScheduler

N_DATUMS_PER_TARGET = 100
TARGET_COUNTS = (8, 64)
BATCH_SIZES = (1, 8, 32)
SPEEDUP_FLOOR = 2.0
GATED_WORKLOAD = "targets64_batch32"


def build_pipeline():
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    stage1 = FunctionComponent("stage1", ("x",), ("x",), fn=lambda d: d)
    stage2 = FunctionComponent("stage2", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("app", ("x",), keep_last=8)
    for component in (source, stage1, stage2, sink):
        graph.add(component)
    graph.connect("src", "stage1")
    graph.connect("stage1", "stage2")
    graph.connect("stage2", "app")
    return graph


def drain_rate(targets, batch, rounds=3):
    """Best-of-``rounds`` datums/s for one (targets, batch) cell."""
    best = 0.0
    for _ in range(rounds):
        graph = build_pipeline()
        engine = PositioningEngine(
            graph,
            scheduler=RoundRobinScheduler(quantum=batch),
            stamp_targets=False,
        )
        for t in range(targets):
            engine.track(f"t{t}", "src", capacity=N_DATUMS_PER_TARGET)
        for i in range(N_DATUMS_PER_TARGET):
            for t in range(targets):
                engine.submit(f"t{t}", Datum("x", i, float(i)))
        n = targets * N_DATUMS_PER_TARGET
        start = time.perf_counter()
        drained = engine.drain_all(max_rounds=n + 1)
        elapsed = time.perf_counter() - start
        assert drained == n
        best = max(best, n / elapsed)
    return best


def test_e12_scale_runtime(benchmark, results_writer, bench_json_writer):
    def sweep():
        workloads = {}
        for targets in TARGET_COUNTS:
            single_rate = drain_rate(targets, 1)
            for batch in BATCH_SIZES:
                rate = single_rate if batch == 1 else drain_rate(targets, batch)
                workloads[f"targets{targets}_batch{batch}"] = {
                    "targets": targets,
                    "batch": batch,
                    "single_rate": round(single_rate, 1),
                    "batch_rate": round(rate, 1),
                    "speedup": round(rate / single_rate, 3),
                }
        return workloads

    workloads = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Multi-target scale-out: shared 4-component pipeline,"
        f" {N_DATUMS_PER_TARGET} datums/target,"
        " round-robin drain (batch = scheduler quantum)",
    ]
    for key, row in workloads.items():
        lines.append(
            f"{key}: {row['batch_rate']:,.0f} datums/s"
            f" ({row['speedup']:.2f}x vs single-datum)"
        )
    results_writer("E12_scale_runtime", "\n".join(lines))
    bench_json_writer(
        "scale",
        {
            "n_datums_per_target": N_DATUMS_PER_TARGET,
            "speedup_floor": SPEEDUP_FLOOR,
            "gated_workload": GATED_WORKLOAD,
            "workloads": workloads,
        },
        filename="BENCH_scale.json",
    )

    gated = workloads[GATED_WORKLOAD]
    assert gated["speedup"] >= SPEEDUP_FLOOR, (
        f"batched dispatch speedup {gated['speedup']:.2f}x below"
        f" the {SPEEDUP_FLOOR}x floor on the 64-target workload"
    )
    # Batching must not *lose* throughput anywhere in the sweep.
    for key, row in workloads.items():
        assert row["speedup"] >= 0.9, f"{key} slower than single-datum"
