"""E6 -- Fig. 7 / §3.3: EnTracked on PerPos, energy vs error.

Runs the two-host Fig. 7 configuration (GPS + Sensor Wrapper + Power
Strategy on the mobile; Parser, Interpreter and the EnTracked Channel
Feature server-side, controlling the strategy through a counted remote
proxy) against the periodic always-on baseline, sweeping the error
threshold and two movement profiles.

Regenerated series: energy (J/h), GPS duty cycle, transmissions and
error per (mode, threshold, profile).

Shape assertions: EnTracked spends a small fraction of the baseline's
energy; energy decreases and error increases with the threshold; a
stationary target is nearly free.
"""

from repro.energy.entracked import EnTrackedSystem
from repro.geo.wgs84 import Wgs84Position
from repro.sensors.trajectory import (
    RandomWalkTrajectory,
    StationaryTrajectory,
)

START = Wgs84Position(56.1718, 10.1903)
DURATION_S = 1800.0
THRESHOLDS = (10.0, 25.0, 50.0, 100.0)


def profiles():
    return {
        "pedestrian": RandomWalkTrajectory(
            START, DURATION_S, seed=4, pause_probability=0.3, pause_s=60.0
        ),
        "stationary": StationaryTrajectory(START, DURATION_S),
    }


def run_all():
    rows = []
    for profile_name, trajectory in profiles().items():
        periodic = EnTrackedSystem(
            trajectory, threshold_m=50.0, mode="periodic", seed=1
        ).run(DURATION_S)
        rows.append((profile_name, "periodic", None, periodic))
        for threshold in THRESHOLDS:
            result = EnTrackedSystem(
                trajectory, threshold_m=threshold, mode="entracked", seed=1
            ).run(DURATION_S)
            rows.append((profile_name, "entracked", threshold, result))
    return rows


def test_e6_entracked_energy(benchmark, results_writer):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Fig. 7 / §3.3 -- EnTracked vs periodic reporting"
        f" ({DURATION_S / 60:.0f} min runs)",
        "",
        f"{'profile':<11} {'mode':<10} {'thr':>5} {'J/h':>7} {'avg W':>7}"
        f" {'gps%':>6} {'tx':>5} {'mean err':>9} {'p95 err':>8}",
    ]
    table = {}
    for profile, mode, threshold, r in rows:
        table[(profile, mode, threshold)] = r
        jph = r.energy_j * 3600.0 / r.duration_s
        thr = f"{threshold:.0f}" if threshold else "-"
        lines.append(
            f"{profile:<11} {mode:<10} {thr:>5} {jph:>7.0f}"
            f" {r.average_power_w:>7.3f} {r.gps_on_fraction * 100:>5.1f}%"
            f" {r.transmissions:>5} {r.mean_error_m:>8.1f}m"
            f" {r.p95_error_m:>7.1f}m"
        )
    results_writer("E6_fig7_entracked", "\n".join(lines))

    for profile in ("pedestrian", "stationary"):
        periodic = table[(profile, "periodic", None)]
        for threshold in THRESHOLDS:
            entracked = table[(profile, "entracked", threshold)]
            # Headline claim: large energy savings.
            assert entracked.energy_j < 0.5 * periodic.energy_j
            assert entracked.transmissions < periodic.transmissions

    # Threshold sweep shape on the moving profile: tighter threshold ->
    # more energy and lower (or equal) error.
    pedestrian = [
        table[("pedestrian", "entracked", t)] for t in THRESHOLDS
    ]
    energies = [r.energy_j for r in pedestrian]
    assert energies[0] > energies[-1], "tightest threshold must cost most"
    errors = [r.mean_error_m for r in pedestrian]
    assert errors[0] < errors[-1], "tightest threshold must track best"

    # A stationary target costs almost nothing once acquired.
    stationary = table[("stationary", "entracked", 50.0)]
    assert stationary.gps_on_fraction < 0.1
