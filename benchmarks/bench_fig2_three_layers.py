"""E2 -- Fig. 2: one configuration seen at all three abstraction levels.

Builds the figure's particle-filter configuration (GPS and WiFi strands
merging in the particle filter) and renders the Positioning Layer, the
Process Channel Layer and the Process Structure Layer views of the same
process.

Shape assertions: the PCL shows exactly the figure's channels (two
sensor channels into the filter, one filter channel to the application);
the positioning layer surfaces the channel features; the PSL shows every
discrete step.
"""

from repro.core import Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.gps_features import HdopFeature
from repro.processing.pipelines import build_gps_pipeline, build_wifi_pipeline
from repro.sensors.gps import GpsReceiver, SUBURBAN, constant_environment
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner
from repro.tracking.likelihood import LikelihoodFeature
from repro.tracking.particle_filter import ParticleFilterComponent


def build():
    building = demo_building()
    grid = building.grid
    trajectory = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(2.0, 7.5))),
            Waypoint(60.0, grid.to_wgs84(GridPosition(35.0, 7.5))),
        ]
    )
    middleware = PerPos()
    gps = GpsReceiver(
        "gps", trajectory, constant_environment(SUBURBAN), seed=3
    )
    wifi = WifiScanner(
        "wifi", trajectory, demo_radio_environment(building), grid, seed=4
    )
    gps_pipe = build_gps_pipeline(middleware, gps, prefix="gps")
    wifi_pipe = build_wifi_pipeline(middleware, wifi, building, prefix="wifi")
    middleware.graph.component(gps_pipe.parser).attach_feature(HdopFeature())

    pf = ParticleFilterComponent(
        building, pcl=middleware.pcl, num_particles=300, seed=5
    )
    middleware.graph.add(pf)
    middleware.graph.connect(gps_pipe.interpreter, pf.name)
    middleware.graph.connect(wifi_pipe.engine, pf.name)
    provider = middleware.create_provider(
        "application", accepts=(Kind.POSITION_WGS84,)
    )
    middleware.graph.connect(pf.name, provider.sink.name)

    channel = middleware.pcl.channel_delivering(
        pf.name, gps_pipe.interpreter
    )
    channel.attach_feature(LikelihoodFeature())
    return middleware, provider


def test_e2_three_layer_views(benchmark, results_writer):
    middleware, provider = benchmark.pedantic(build, rounds=1, iterations=1)

    positioning_view = [
        f"provider {p.describe()}" for p in middleware.positioning.providers()
    ]
    lines = [
        "Fig. 2 -- three levels of abstraction on one positioning process",
        "",
        "[Positioning Layer]",
        *positioning_view,
        "",
        "[Process Channel Layer]",
        middleware.pcl.render(),
        "",
        "[Process Structure Layer]",
        middleware.psl.structure(),
    ]
    results_writer("E2_fig2_three_layers", "\n".join(lines))

    channel_ids = [c.id for c in middleware.pcl.channels()]
    assert "gps->particle-filter" in channel_ids
    assert "wifi->particle-filter" in channel_ids
    assert "particle-filter->application" in channel_ids
    # The adaptation (Likelihood) is visible from the top layer.
    assert "Likelihood" in provider.available_features()
    assert provider.get_feature("Likelihood") is not None
    structure = middleware.psl.structure()
    for step in ("gps-parser", "gps-interpreter", "wifi-positioning",
                 "particle-filter"):
        assert step in structure
