"""E5 -- Fig. 6 / §3.2: particle-filter refinement of a recorded trace.

Follows the paper's method to the letter: sensor data is recorded first,
then replayed through the emulator component "taking the place of the
sensors".  Two configurations consume the identical trace -- raw GPS
(Interpreter straight to the application) and the particle filter with
the HDOP-driven Likelihood Channel Feature plus the wall constraint.

Regenerated artefact: the Fig. 6 map (walls, true path, refined trace,
particle cloud) and the error table, swept over particle counts.

Shape assertions: the refined trace beats raw GPS on mean and maximum
error, and the improvement holds across particle counts.
"""

import statistics

from repro.core import Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building
from repro.processing.gps_features import HdopFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.emulator import EmulatorSensor
from repro.sensors.gps import GpsReceiver, SkyEnvironment, constant_environment
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.tracking.likelihood import LikelihoodFeature
from repro.tracking.particle_filter import ParticleFilterComponent

DEGRADED = SkyEnvironment("indoor-corridor", 12.0, 0.25, 8.0, 2.5)
DURATION_S = 100.0


def corridor_walk(building):
    grid = building.grid
    waypoints = [
        (0.0, 1.0, 7.5),
        (60.0, 34.0, 7.5),
        (80.0, 35.0, 12.0),
        (DURATION_S, 35.0, 12.0),
    ]
    return WaypointTrajectory(
        [
            Waypoint(t, grid.to_wgs84(GridPosition(x, y)))
            for t, x, y in waypoints
        ]
    )


def record(trajectory):
    gps = GpsReceiver(
        "gps-live", trajectory, constant_environment(DEGRADED), seed=33
    )
    return gps.sample(trajectory.duration())


def replay(building, readings, particles):
    middleware = PerPos()
    emulator = EmulatorSensor(list(readings), sensor_id="gps-replay")
    emulator.rewind()
    pipeline = build_gps_pipeline(middleware, emulator, prefix="gps-replay")
    middleware.graph.component(pipeline.parser).attach_feature(HdopFeature())
    provider = middleware.create_provider(
        "app", accepts=(Kind.POSITION_WGS84,)
    )
    pf = None
    if particles:
        pf = ParticleFilterComponent(
            building, pcl=middleware.pcl, num_particles=particles, seed=7
        )
        middleware.graph.add(pf)
        middleware.graph.connect(pipeline.interpreter, pf.name)
        middleware.graph.connect(pf.name, provider.sink.name)
        middleware.pcl.channel_delivering(
            pf.name, pipeline.interpreter
        ).attach_feature(LikelihoodFeature())
    else:
        middleware.graph.connect(pipeline.interpreter, provider.sink.name)
    track = []
    provider.add_listener(
        lambda d: track.append((d.timestamp, d.payload)),
        kind=Kind.POSITION_WGS84,
    )
    middleware.run_until(DURATION_S)
    return track, pf


def error_stats(trajectory, track):
    errors = sorted(
        trajectory.position_at(t).distance_to(p) for t, p in track
    )
    return {
        "n": len(errors),
        "mean": statistics.mean(errors),
        "median": errors[len(errors) // 2],
        "p95": errors[int(0.95 * (len(errors) - 1))],
        "max": errors[-1],
    }


def render_map(building, trajectory, track, particles):
    width, depth = 40, 15
    cells = [[" "] * (width + 1) for _ in range(depth + 1)]
    for wall in building.floor(0).walls:
        steps = int(
            max(abs(wall.x2 - wall.x1), abs(wall.y2 - wall.y1)) / 0.5
        ) + 1
        for i in range(steps + 1):
            x = wall.x1 + (wall.x2 - wall.x1) * i / steps
            y = wall.y1 + (wall.y2 - wall.y1) * i / steps
            if 0 <= x <= width and 0 <= y <= depth:
                cells[int(y)][int(x)] = "#"
    for p in particles or []:
        x, y = int(p.position.x_m), int(p.position.y_m)
        if 0 <= x <= width and 0 <= y <= depth and cells[y][x] == " ":
            cells[y][x] = ","
    for t in range(0, int(DURATION_S) + 1, 2):
        g = building.grid.to_grid(trajectory.position_at(float(t)))
        x, y = int(g.x_m), int(g.y_m)
        if 0 <= x <= width and 0 <= y <= depth and cells[y][x] in " ,":
            cells[y][x] = "."
    for _t, pos in track:
        g = building.grid.to_grid(pos)
        x, y = int(g.x_m), int(g.y_m)
        if 0 <= x <= width and 0 <= y <= depth and cells[y][x] != "#":
            cells[y][x] = "o"
    lines = ["".join(row) for row in reversed(cells)]
    lines.append("legend: # wall  . true path  o refined trace  , particles")
    return "\n".join(lines)


def test_e5_particle_filter_refinement(benchmark, results_writer):
    building = demo_building()
    trajectory = corridor_walk(building)
    readings = record(trajectory)

    def workload():
        raw_track, _ = replay(building, readings, particles=0)
        sweeps = {}
        for count in (200, 500, 1000):
            sweeps[count] = replay(building, readings, particles=count)
        return raw_track, sweeps

    raw_track, sweeps = benchmark.pedantic(workload, rounds=1, iterations=1)

    raw = error_stats(trajectory, raw_track)
    lines = [
        "Fig. 6 / §3.2 -- particle filter over a replayed GPS trace",
        "",
        f"{'variant':<22} {'fixes':>6} {'mean':>7} {'median':>7}"
        f" {'p95':>7} {'max':>7}",
        f"{'raw GPS':<22} {raw['n']:>6} {raw['mean']:>6.1f}m"
        f" {raw['median']:>6.1f}m {raw['p95']:>6.1f}m {raw['max']:>6.1f}m",
    ]
    refined_stats = {}
    for count, (track, _pf) in sorted(sweeps.items()):
        s = error_stats(trajectory, track)
        refined_stats[count] = s
        lines.append(
            f"{f'particle filter n={count}':<22} {s['n']:>6}"
            f" {s['mean']:>6.1f}m {s['median']:>6.1f}m"
            f" {s['p95']:>6.1f}m {s['max']:>6.1f}m"
        )
    big_track, big_pf = sweeps[1000]
    lines += ["", render_map(building, trajectory, big_track, big_pf.particles)]
    lines += ["", f"filter statistics (n=1000): {big_pf.statistics()}"]
    results_writer("E5_fig6_particle_filter", "\n".join(lines))

    # Shape: the refined trace wins on average and in the tail, at every
    # particle count.
    for count, s in refined_stats.items():
        assert s["mean"] < raw["mean"], f"mean not improved at n={count}"
        assert s["max"] < raw["max"], f"tail not improved at n={count}"
    # Wall constraint engaged.
    assert big_pf.wall_vetoes > 0
