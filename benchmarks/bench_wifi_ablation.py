"""E10 (ablation) -- indoor positioning algorithm choices.

DESIGN.md §6 calls for ablating the reproduction's design choices.  The
WiFi subsystem has the most consequential one: fingerprinting (offline
survey + weighted kNN, what the paper's campus deployment used) versus
survey-free weighted centroid, and within fingerprinting the choice of
k and of survey density.

Regenerated series: mean/p95 error per algorithm configuration under two
shadowing levels, over a fixed indoor walk.

Shape assertions: fingerprinting beats centroid; extreme k values do not
beat the moderate default; accuracy degrades with shadowing.
"""

import random
import statistics

from repro.geo.grid import GridPosition
from repro.model.demo import (
    demo_access_points,
    demo_building,
    demo_survey_positions,
)
from repro.processing.wifi_centroid import CentroidPositioningComponent
from repro.processing.wifi_positioning import FingerprintPositioningComponent
from repro.sensors.wifi import RadioEnvironment, WifiScan, build_radio_map

WALK = [
    GridPosition(2.0 + 0.76 * i, 7.5 if i % 10 < 7 else 11.5)
    for i in range(50)
]


def make_environment(building, shadowing):
    return RadioEnvironment(
        access_points=demo_access_points(),
        shadowing_sigma_db=shadowing,
        wall_counter=building.walls_between,
    )


def scans_for(environment, seed):
    rng = random.Random(seed)
    return [
        WifiScan(float(i), tuple(environment.observe(pos, rng)))
        for i, pos in enumerate(WALK)
    ]


def fingerprint_errors(building, environment, scans, k, spacing):
    radio_map = build_radio_map(
        environment, demo_survey_positions(spacing)
    )
    engine = FingerprintPositioningComponent(
        radio_map, building.grid, k=k
    )
    errors = []
    for truth, scan in zip(WALK, scans):
        if not scan.observations:
            continue
        estimate, _spread = engine.estimate(scan)
        errors.append(truth.distance_to(estimate))
    return errors


def centroid_errors(building, scans):
    engine = CentroidPositioningComponent(
        demo_access_points(), building.grid
    )
    errors = []
    for truth, scan in zip(WALK, scans):
        result = engine.estimate(scan)
        if result is None:
            continue
        estimate, _spread = result
        errors.append(truth.distance_to(estimate))
    return errors


def summarise(errors):
    ordered = sorted(errors)
    return (
        statistics.mean(ordered),
        ordered[int(0.95 * (len(ordered) - 1))],
    )


def test_e10_wifi_algorithm_ablation(benchmark, results_writer):
    building = demo_building()

    def workload():
        table = {}
        for shadowing in (2.0, 6.0):
            environment = make_environment(building, shadowing)
            scans = scans_for(environment, seed=13)
            rows = {}
            for k in (1, 3, 8):
                rows[f"fingerprint k={k}"] = summarise(
                    fingerprint_errors(
                        building, environment, scans, k, spacing=2.0
                    )
                )
            rows["fingerprint k=3 sparse(4m)"] = summarise(
                fingerprint_errors(
                    building, environment, scans, 3, spacing=4.0
                )
            )
            rows["weighted centroid"] = summarise(
                centroid_errors(building, scans)
            )
            table[shadowing] = rows
        return table

    table = benchmark.pedantic(workload, rounds=1, iterations=1)

    lines = [
        "WiFi positioning ablation (50-point corridor/office walk)",
        "",
        f"{'configuration':<28} {'shadow 2dB':>16} {'shadow 6dB':>16}",
        f"{'':<28} {'mean/p95 (m)':>16} {'mean/p95 (m)':>16}",
    ]
    for config in table[2.0]:
        low = table[2.0][config]
        high = table[6.0][config]
        lines.append(
            f"{config:<28} {low[0]:>7.1f}/{low[1]:>6.1f}"
            f" {high[0]:>8.1f}/{high[1]:>6.1f}"
        )
    results_writer("E10_wifi_ablation", "\n".join(lines))

    for shadowing in (2.0, 6.0):
        rows = table[shadowing]
        # Survey-based fingerprinting beats the survey-free baseline.
        assert rows["fingerprint k=3"][0] < rows["weighted centroid"][0]
    # Noise hurts: same configuration, more shadowing, worse mean.
    assert (
        table[6.0]["fingerprint k=3"][0]
        > table[2.0]["fingerprint k=3"][0] * 0.8
    )
    # k=3 is not dominated by the extremes on clean data.
    clean = table[2.0]
    assert clean["fingerprint k=3"][0] <= clean["fingerprint k=8"][0] * 1.2
