"""E8 -- the cost of translucency (paper §4 / future-work concerns).

The paper defers "traditional software qualities ... reliability,
scalability and performance" to future work; this ablation measures what
the reproduction's reflection machinery costs:

* baseline: a three-component pipeline with no observation;
* + PCL channel maintenance (logical time recording);
* + an attached Channel Feature receiving data trees per output;
* + 1/4/8 Component Features in the interception chain;
* + the observability hub: per-component metrics, then metrics + flow
  tracing (``repro.observability``);
* + a graph supervisor in ``quarantine`` mode on an all-healthy
  pipeline (``repro.robustness``): the cost of the supervised
  delivery boundary when nothing fails;
* PSL manipulation cost: splice + remove a component on a live graph.

With observability *disabled* (the default), the graph pays one ``is
None`` check per event; the summary asserts the bare pipeline stays
within 5% of a pipeline measured before the hub hook existed by
comparing two interleaved bare runs -- i.e. the disabled path *is* the
baseline.

Regenerated series: throughput (datums/s) for each configuration, i.e.
the overhead curve a middleware deployer would want.

Shape assertions: every configuration stays within an order of magnitude
of the bare pipeline, and overhead grows monotonically-ish with the
feature chain length (allowing measurement noise).
"""

import pytest

from repro.core.channel import ChannelFeature
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer

N_DATUMS = 2000


class NoopComponentFeature(ComponentFeature):
    def __init__(self, index):
        self.name = f"Noop{index}"
        super().__init__()

    def produce(self, datum):
        return datum


class NoopChannelFeature(ChannelFeature):
    name = "NoopChannel"

    def __init__(self):
        super().__init__()
        self.applications = 0

    def apply(self, tree):
        self.applications += 1


def build_pipeline(
    with_pcl=False,
    channel_feature=False,
    features=0,
    observability=None,
    supervision=None,
):
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    stage1 = FunctionComponent("stage1", ("x",), ("x",), fn=lambda d: d)
    stage2 = FunctionComponent("stage2", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("app", ("x",), keep_last=8)
    for c in (source, stage1, stage2, sink):
        graph.add(c)
    graph.connect("src", "stage1")
    graph.connect("stage1", "stage2")
    graph.connect("stage2", "app")
    for i in range(features):
        stage1.attach_feature(NoopComponentFeature(i))
    pcl = None
    if with_pcl or channel_feature:
        pcl = ProcessChannelLayer(graph)
        if channel_feature:
            pcl.attach_feature("src->app", NoopChannelFeature())
    if observability:
        from repro.observability import ObservabilityHub

        graph.set_instrumentation(
            ObservabilityHub(tracing=(observability == "tracing"))
        )
    if supervision:
        from repro.robustness import SupervisionPolicy, Supervisor

        graph.set_supervisor(
            Supervisor(SupervisionPolicy(mode=supervision))
        )
    return graph, source


def drive(source):
    for i in range(N_DATUMS):
        source.inject(Datum("x", i, float(i)))


CONFIGS = [
    ("bare pipeline", dict()),
    ("bare pipeline (re-run)", dict()),
    ("+ channel maintenance", dict(with_pcl=True)),
    ("+ channel feature (data trees)", dict(channel_feature=True)),
    ("+ 1 component feature", dict(channel_feature=True, features=1)),
    ("+ 4 component features", dict(channel_feature=True, features=4)),
    ("+ 8 component features", dict(channel_feature=True, features=8)),
    ("+ observability metrics", dict(observability="metrics")),
    ("+ observability metrics+tracing", dict(observability="tracing")),
    ("+ supervision (quarantine)", dict(supervision="quarantine")),
]


@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_e8_overhead(benchmark, label, config):
    def run():
        _graph, source = build_pipeline(**config)
        drive(source)

    benchmark(run)


def test_e8_overhead_summary(benchmark, results_writer, bench_json_writer):
    """One comparable sweep in a single process, plus PSL manipulation."""
    import time

    def measure_once(config):
        _graph, source = build_pipeline(**config)
        start = time.perf_counter()
        drive(source)
        elapsed = time.perf_counter() - start
        return N_DATUMS / elapsed

    def workload(rounds=7):
        # Interleaved best-of-N: rounds alternate across configs so
        # thermal/scheduler drift hits them all equally, and the best
        # observed rate converges on the true cost of each config (the
        # disabled-overhead assertion below needs ~5% resolution).
        for _label, config in CONFIGS:
            measure_once(config)  # warm-up
        rates = {label: 0.0 for label, _config in CONFIGS}
        for _ in range(rounds):
            for label, config in CONFIGS:
                rates[label] = max(rates[label], measure_once(config))
        return rates

    def disabled_ratio(attempts=4, rounds=9):
        # The "disabled observability" path IS the bare pipeline (the
        # hook is one `is None` check), so this measures that two
        # identical configurations agree -- i.e. it bounds measurement
        # noise plus the check itself.  Tight alternation with best-of
        # converges on the true ratio; retry absorbs bursty scheduler
        # noise rather than failing on one unlucky sweep.
        best = None
        for _ in range(attempts):
            a = b = 0.0
            for _ in range(rounds):
                a = max(a, measure_once({}))
                b = max(b, measure_once({}))
            ratio = a / b
            if best is None or abs(ratio - 1.0) < abs(best - 1.0):
                best = ratio
            if 1 / 1.05 < ratio < 1.05:
                return ratio
        return best

    rates = benchmark.pedantic(workload, rounds=1, iterations=1)
    rerun_ratio = disabled_ratio()

    # PSL manipulation on a live graph, for the record.
    graph, source = build_pipeline(with_pcl=True)
    import time as _t

    start = _t.perf_counter()
    splices = 200
    for i in range(splices):
        extra = FunctionComponent(
            f"extra{i}", ("x",), ("x",), fn=lambda d: d
        )
        graph.insert_between("stage1", "stage2", extra)
        graph.remove(f"extra{i}", reconnect=True)
    splice_ms = (_t.perf_counter() - start) / splices * 1000.0

    base = rates["bare pipeline"]
    lines = [
        "Translucency overhead ablation (2000 datums through a"
        " 3-component pipeline)",
        "",
        f"{'configuration':<34} {'datums/s':>10} {'vs bare':>8}",
    ]
    for label, _config in CONFIGS:
        rate = rates[label]
        lines.append(
            f"{label:<34} {rate:>10.0f} {base / rate:>7.2f}x"
        )
    lines += [
        "",
        f"PSL splice+remove on live graph: {splice_ms:.2f} ms/operation",
        "",
        "observability disabled by default: the bare pipeline IS the"
        " disabled path",
        f"  bare vs bare re-run ratio: {rerun_ratio:.3f}x"
        " (must stay within 1.05x)",
    ]
    results_writer("E8_overhead_ablation", "\n".join(lines))
    bench_json_writer(
        "configs",
        {
            "n_datums": N_DATUMS,
            "datums_per_s": {
                label: round(rates[label], 1) for label, _cfg in CONFIGS
            },
            "psl_splice_ms": round(splice_ms, 4),
            "bare_rerun_ratio": round(rerun_ratio, 4),
        },
    )

    # Shape: reflection costs, but within an order of magnitude.
    for label, _config in CONFIGS:
        assert base / rates[label] < 10.0, f"{label} slower than 10x base"
    assert rates["+ 8 component features"] < rates["bare pipeline"]
    # Disabled observability must be free: two bare measurements agree
    # to within 5% (the hub hook is one `is None` check per event).
    assert 1 / 1.05 < rerun_ratio < 1.05, (
        f"bare pipeline not reproducible within 5%: {rerun_ratio:.3f}x"
    )


def build_wide_graph(strands, depth):
    """``strands`` parallel chains of ``depth`` stages into one merge."""
    graph = ProcessingGraph()
    sources = []
    merge = FunctionComponent("merge", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("app", ("x",), keep_last=8)
    graph.add(merge)
    graph.add(sink)
    graph.connect("merge", "app")
    for s in range(strands):
        source = SourceComponent(f"src{s}", ("x",))
        graph.add(source)
        previous = source.name
        for d in range(depth):
            stage = FunctionComponent(
                f"s{s}d{d}", ("x",), ("x",), fn=lambda datum: datum
            )
            graph.add(stage)
            graph.connect(previous, stage.name)
            previous = stage.name
        graph.connect(previous, "merge")
        sources.append(source)
    return graph, sources


#: (strands, depth) sweep for E8b; the last entry is the paper-sized
#: configuration the shape assertions and the CI regression gate key on.
SCALABILITY_SIZES = [(5, 2), (10, 5), (20, 5)]


def test_e8_scalability(benchmark, results_writer, bench_json_writer):
    """Paper future work: 'scalability'.  PCL derivation and delivery on
    wide graphs up to 20 strands x 5 stages = 122 components."""
    import time

    def measure(strands, depth, rounds=3):
        start = time.perf_counter()
        graph, sources = build_wide_graph(strands=strands, depth=depth)
        build_s = time.perf_counter() - start

        start = time.perf_counter()
        pcl = ProcessChannelLayer(graph)
        derive_s = time.perf_counter() - start
        channels = len(pcl.channels())

        n = 200
        throughput = 0.0
        for _ in range(rounds):  # best-of: absorb scheduler noise
            start = time.perf_counter()
            for i in range(n):
                for source in sources:
                    source.inject(Datum("x", i, float(i)))
            throughput = max(
                throughput,
                (n * len(sources)) / (time.perf_counter() - start),
            )
        return {
            "components": len(graph.components()),
            "channels": channels,
            "build_ms": round(build_s * 1000, 2),
            "derive_ms": round(derive_s * 1000, 2),
            "throughput": round(throughput, 1),
        }

    def workload():
        return {
            f"{strands}x{depth}": measure(strands, depth)
            for strands, depth in SCALABILITY_SIZES
        }

    sweep = benchmark.pedantic(workload, rounds=1, iterations=1)
    lines = ["Scalability: strands x stages sweep, merge into one app"]
    for key, row in sweep.items():
        lines += [
            f"{key} ({row['components']} components)",
            f"  graph construction : {row['build_ms']:.1f} ms",
            f"  channel derivation : {row['derive_ms']:.1f} ms"
            f" ({row['channels']} channels)",
            f"  delivery throughput: {row['throughput']:,.0f} datums/s",
        ]
    results_writer("E8b_scalability", "\n".join(lines))
    bench_json_writer("scalability", sweep)

    largest = sweep["20x5"]
    assert largest["channels"] == 21  # 20 sensor strands + merge->app
    assert largest["derive_ms"] < 2000.0
    assert largest["throughput"] > 5_000


# --------------------------------------------------------------------------
# E14 -- plan compilation on deep linear chains (DESIGN.md section 12).


def build_deep_chain(depth):
    """src -> s0 -> ... -> s{depth-1} -> app, all stages identity."""
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    sink = ApplicationSink("app", ("x",), keep_last=8)
    graph.add(source)
    graph.add(sink)
    previous = "src"
    for i in range(depth):
        stage = FunctionComponent(f"s{i}", ("x",), ("x",), fn=lambda d: d)
        graph.add(stage)
        graph.connect(previous, stage.name)
        previous = stage.name
    graph.connect(previous, "app")
    return graph, source


#: Chain depths for E14; the middle entry is what the CI gate keys on.
COMPILE_DEPTHS = [8, 32, 128]
COMPILE_BATCH = 32
#: Absolute floor the gated depth must clear (ISSUE acceptance: >=2x at
#: depth >= 32), re-checked by ``check_regression.py`` on the artefact.
COMPILE_SPEEDUP_FLOOR = 2.0
COMPILE_GATED = "depth32"


def test_e14_compile_sweep(benchmark, results_writer, bench_json_writer):
    """Compiled (fused chains) vs interpreted dispatch on deep chains."""
    import time

    def measure_once(depth, compiled, n_batches=40):
        graph, source = build_deep_chain(depth)
        graph.set_compilation(compiled)
        batches = [
            [
                Datum("x", b * COMPILE_BATCH + i, float(i))
                for i in range(COMPILE_BATCH)
            ]
            for b in range(n_batches)
        ]
        source.inject_batch(batches[0])  # warm-up: compile + memoise
        start = time.perf_counter()
        for batch in batches:
            source.inject_batch(batch)
        elapsed = time.perf_counter() - start
        return (n_batches * COMPILE_BATCH) / elapsed

    def workload(rounds=9):
        # Interleaved best-of-N, same discipline as E8: compiled and
        # interpreted alternate per round so drift hits both equally.
        sweep = {}
        for depth in COMPILE_DEPTHS:
            compiled = interpreted = 0.0
            for _ in range(rounds):
                compiled = max(compiled, measure_once(depth, True))
                interpreted = max(interpreted, measure_once(depth, False))
            sweep[f"depth{depth}"] = {
                "compiled": round(compiled, 1),
                "interpreted": round(interpreted, 1),
                "speedup": round(compiled / interpreted, 3),
            }
        return sweep

    sweep = benchmark.pedantic(workload, rounds=1, iterations=1)

    lines = [
        "Plan compilation: deep identity chains, compiled vs interpreted"
        f" (batches of {COMPILE_BATCH} datums)",
        "",
        f"{'depth':<10} {'compiled/s':>12} {'interpreted/s':>14}"
        f" {'speedup':>8}",
    ]
    for depth in COMPILE_DEPTHS:
        row = sweep[f"depth{depth}"]
        lines.append(
            f"{depth:<10} {row['compiled']:>12.0f}"
            f" {row['interpreted']:>14.0f} {row['speedup']:>7.2f}x"
        )
    lines += [
        "",
        f"gate: {COMPILE_GATED} speedup must hold"
        f" >= {COMPILE_SPEEDUP_FLOOR}x (checked again in CI)",
    ]
    results_writer("E14_compile_sweep", "\n".join(lines))
    bench_json_writer(
        "compile",
        {
            "batch": COMPILE_BATCH,
            "depths": sweep,
            "speedup_floor": COMPILE_SPEEDUP_FLOOR,
            "gated_workload": COMPILE_GATED,
        },
        filename="BENCH_compile.json",
    )

    # Shape: fusion must pay at the ISSUE's floor on the gated depth and
    # keep paying (not regress to parity) as the chain deepens.
    gated = sweep[COMPILE_GATED]
    assert gated["speedup"] >= COMPILE_SPEEDUP_FLOOR, (
        f"depth-32 compiled speedup {gated['speedup']:.2f}x below"
        f" {COMPILE_SPEEDUP_FLOOR}x floor"
    )
    assert sweep["depth128"]["speedup"] >= sweep["depth8"]["speedup"] * 0.9
