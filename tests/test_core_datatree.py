"""Tests for the data tree structure, including the Fig. 4 scenario."""

import pytest

from repro.core.data import Datum, Kind
from repro.core.datatree import DataTree, DataTreeElement
from repro.core.graph import ProcessingGraph
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.pcl import ProcessChannelLayer
from repro.core.channel import ChannelFeature
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.parser import NmeaParserComponent
from repro.sensors.nmea import GgaSentence


def element(kind, lt, time_range, layer, producer="p"):
    return DataTreeElement(
        Datum(kind, f"{kind}{lt}", float(lt)), lt, time_range, layer, producer
    )


class TestDataTreeStructure:
    def make_fig4_tree(self):
        """The exact Fig. 4 shape: one WGS84 over two NMEA over five strings."""
        strings = [element("str", i, None, 0, "gps") for i in range(1, 6)]
        nmea = [
            element("nmea", 1, (1, 2), 1, "parser"),
            element("nmea", 2, (3, 5), 1, "parser"),
        ]
        wgs = [element("wgs84", 1, (1, 2), 2, "interpreter")]
        return DataTree([strings, nmea, wgs], ["gps", "parser", "interpreter"])

    def test_root_is_output(self):
        tree = self.make_fig4_tree()
        assert tree.root.datum.kind == "wgs84"
        assert tree.depth == 3

    def test_elements_ordering(self):
        tree = self.make_fig4_tree()
        kinds = [e.datum.kind for e in tree.elements()]
        assert kinds == ["str"] * 5 + ["nmea"] * 2 + ["wgs84"]

    def test_get_data_filters_by_kind(self):
        tree = self.make_fig4_tree()
        nmea = tree.get_data("nmea")
        assert [producer for producer, _ in nmea] == ["parser", "parser"]

    def test_contributors_follow_time_range(self):
        tree = self.make_fig4_tree()
        root_contribs = tree.contributors(tree.root)
        assert [e.logical_time for e in root_contribs] == [1, 2]
        nmea2 = tree.layer(1)[1]
        assert [e.logical_time for e in tree.contributors(nmea2)] == [3, 4, 5]

    def test_contributors_of_source_layer_empty(self):
        tree = self.make_fig4_tree()
        assert tree.contributors(tree.layer(0)[0]) == []

    def test_render_shows_all_layers(self):
        tree = self.make_fig4_tree()
        text = tree.render()
        lines = text.splitlines()
        assert lines[0].startswith("L2 interpreter")
        assert "N/A" in lines[-1]  # source layer renders N/A ranges
        assert "(nmea, 2, 3-5)" in text

    def test_describe_format(self):
        assert element("x", 3, (1, 2), 1).describe() == "(x, 3, 1-2)"

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            DataTree([[]], ["only"])

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError):
            DataTree([[element("x", 1, None, 0)]], ["a", "b"])


class CaptureFeature(ChannelFeature):
    name = "Capture"

    def __init__(self):
        super().__init__()
        self.trees = []

    def apply(self, tree):
        self.trees.append(tree)


class TestFigure4EndToEnd:
    """Reproduce Fig. 4 with the real GPS channel components.

    Several raw strings make one NMEA sentence; the first GGA carries no
    valid position, so the first WGS84 output's tree spans two sentences.
    """

    def build(self):
        graph = ProcessingGraph()
        source = SourceComponent("gps", (Kind.NMEA_RAW,))
        parser = NmeaParserComponent(name="parser")
        interpreter = NmeaInterpreterComponent(name="interpreter")
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        for c in (source, parser, interpreter, sink):
            graph.add(c)
        graph.connect("gps", "parser")
        graph.connect("parser", "interpreter")
        graph.connect("interpreter", "app")
        pcl = ProcessChannelLayer(graph)
        feature = CaptureFeature()
        pcl.attach_feature("gps->app", feature)
        return source, feature

    def inject_fragmented(self, source, sentence, t, chunk=12):
        stream = sentence + "\r\n"
        for i in range(0, len(stream), chunk):
            source.inject(
                Datum(Kind.NMEA_RAW, stream[i : i + chunk], t, "gps")
            )

    def test_invalid_first_sentence_spans_tree(self):
        source, feature = self.build()
        no_fix = GgaSentence(0.0, None, None, 0, 2, None, None).encode()
        fix = GgaSentence(1.0, 56.17, 10.19, 1, 8, 1.1, 40.0).encode()
        self.inject_fragmented(source, no_fix, 0.0)
        self.inject_fragmented(source, fix, 1.0)
        assert len(feature.trees) == 1
        tree = feature.trees[0]
        # The output is the first WGS84 position...
        assert tree.root.logical_time == 1
        # ...built from BOTH sentences (the invalid one contributed).
        assert tree.root.time_range == (1, 2)
        sentences = tree.get_data(Kind.NMEA_SENTENCE)
        assert len(sentences) == 2
        # And each sentence groups several raw string fragments.
        raw = tree.get_data(Kind.NMEA_RAW)
        assert len(raw) > 2

    def test_second_position_tree_starts_fresh(self):
        source, feature = self.build()
        fix1 = GgaSentence(0.0, 56.17, 10.19, 1, 8, 1.1, 40.0).encode()
        fix2 = GgaSentence(1.0, 56.18, 10.20, 1, 8, 1.1, 40.0).encode()
        self.inject_fragmented(source, fix1, 0.0)
        self.inject_fragmented(source, fix2, 1.0)
        assert len(feature.trees) == 2
        second = feature.trees[1]
        assert second.root.logical_time == 2
        assert second.root.time_range == (2, 2)
        assert len(second.get_data(Kind.NMEA_SENTENCE)) == 1
